//! Section 7 scalability: decompose a large adaptive system into
//! collaborative sets and plan within the touched set only, comparing the
//! work done by full enumeration vs. scoped enumeration vs. lazy search.
//!
//! Run with: `cargo run --example collaborative_sets`

use sada_repro::expr::{enumerate, InvariantSet, Universe};
use sada_repro::plan::{collab, lazy, Action, Sag};

fn main() {
    // A system of K independent codec pairs, like K MetaSocket streams each
    // with its own old/new encoder. Only stream 0 is being adapted.
    const K: usize = 8;
    let mut u = Universe::new();
    let mut sources = Vec::new();
    for k in 0..K {
        u.intern(&format!("Old{k}"));
        u.intern(&format!("New{k}"));
    }
    let inv_src: Vec<String> = (0..K).map(|k| format!("one_of(Old{k}, New{k})")).collect();
    let inv_refs: Vec<&str> = inv_src.iter().map(String::as_str).collect();
    let invariants = InvariantSet::parse(&inv_refs, &mut u).unwrap();

    let mut actions = Vec::new();
    for k in 0..K {
        let old = u.config_of(&[&format!("Old{k}")]);
        let new = u.config_of(&[&format!("New{k}")]);
        actions.push(Action::replace(k as u32, &format!("Old{k}->New{k}"), &old, &new, 10));
        sources.push(old);
    }

    // Source: everything old. Target: stream 0 upgraded.
    let mut source = u.empty_config();
    let mut target = u.empty_config();
    for k in 0..K {
        let old = u.id(&format!("Old{k}")).unwrap();
        source.insert(old);
        if k == 0 {
            target.insert(u.id("New0").unwrap());
        } else {
            target.insert(old);
        }
    }

    // Collaborative sets: K independent pairs.
    let sets = collab::collaborative_sets(&u, &invariants, &actions);
    println!("{} components partition into {} collaborative sets", u.len(), sets.len());
    assert_eq!(sets.len(), K);

    // Full enumeration: 2^K safe configurations.
    let all_safe = enumerate::safe_configs(&u, &invariants);
    println!("full safe-configuration set: {} configurations", all_safe.len());

    // Scoped enumeration: only the touched set matters -> 2 configurations.
    let scope = collab::scope_for(&u, &invariants, &actions, &source, &target);
    println!(
        "adaptation touches {} components: {:?}",
        scope.len(),
        scope.iter().map(|&c| u.name(c)).collect::<Vec<_>>()
    );
    let scoped_safe = enumerate::safe_configs_scoped(&u, &invariants, &scope, &source);
    println!("scoped safe-configuration set: {} configurations", scoped_safe.len());
    assert_eq!(scoped_safe.len(), 2);

    // Both plans agree; the scoped SAG is tiny.
    let full_sag = Sag::build(all_safe, &actions);
    let scoped_sag = Sag::build(scoped_safe, &actions);
    let full_path = full_sag.shortest_path(&source, &target).unwrap();
    let scoped_path = scoped_sag.shortest_path(&source, &target).unwrap();
    assert_eq!(full_path.cost, scoped_path.cost);
    println!(
        "full SAG {} nodes / {} arcs   vs   scoped SAG {} nodes / {} arcs — same MAP cost {}",
        full_sag.node_count(),
        full_sag.edge_count(),
        scoped_sag.node_count(),
        scoped_sag.edge_count(),
        full_path.cost
    );

    // The lazy planner explores even less without any SAG at all.
    let (lazy_path, stats) = lazy::plan_with_stats(&invariants, &actions, &source, &target);
    assert_eq!(lazy_path.unwrap().cost, full_path.cost);
    println!(
        "lazy planner: {} nodes expanded, {} safety checks (vs {} configs enumerated eagerly)",
        stats.expanded,
        stats.safety_checks,
        full_sag.node_count()
    );
}
