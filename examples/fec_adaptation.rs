//! Closed-loop adaptation: the decision-making monitor detects rising
//! packet loss in client telemetry and asks the adaptation manager to
//! insert forward-error-correction filters — safely, decoders before the
//! parity encoder, while the stream keeps playing.
//!
//! Run with: `cargo run --example fec_adaptation`

use sada_repro::video::{fec_spec, run_fec_scenario, FecScenarioConfig};

fn main() {
    // The planning view first: the FEC invariant forces decoders-first.
    let (spec, source, target) = fec_spec();
    let u = spec.universe();
    println!("== FEC insertion plan ==");
    println!("source: {}", source.to_names(u));
    println!("target: {}", target.to_names(u));
    let map = spec.minimum_adaptation_path(&source, &target).expect("plan");
    for step in &map.steps {
        println!("  {}: {}", step.action, spec.actions()[step.action.index()].name());
    }
    println!("(the invariant FE => FDH & FDL forbids inserting the parity encoder first)\n");

    // Now the closed loop.
    let cfg = FecScenarioConfig::default();
    println!("== Live run ==");
    println!(
        "streaming at ~30 fps; link degrades to {:.0}% loss at {}; monitor threshold {:.0}%",
        cfg.loss * 100.0,
        cfg.loss_starts,
        cfg.threshold * 100.0
    );
    let report = run_fec_scenario(&cfg);
    match report.triggered_at {
        Some(at) => println!("monitor requested adaptation at {at}"),
        None => println!("monitor never fired"),
    }
    match &report.outcome {
        Some(o) => println!(
            "adaptation outcome: success={} ({} steps committed)",
            o.success, o.steps_committed
        ),
        None => println!("no adaptation ran"),
    }
    println!(
        "frame delivery on the degraded link: {:.1}% before FEC -> {:.1}% after FEC",
        report.lossy_ratio_before * 100.0,
        report.lossy_ratio_after * 100.0
    );
    println!("packets reconstructed by FEC decoders: {}", report.recovered_packets);
    assert!(report.outcome.map(|o| o.success).unwrap_or(false));
    assert!(report.lossy_ratio_after > report.lossy_ratio_before);
}
