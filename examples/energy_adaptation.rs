//! Energy adaptation — the paper's intro motivates adapting to "energy
//! consumption" at the wireless edge. Here the hand-held's battery runs low
//! and the system *downgrades* from DES-128 back to DES-64 (cheaper
//! decryption), the mirror image of the security-hardening case study,
//! using a reverse action table and the same safe adaptation machinery.
//!
//! Run with: `cargo run --example energy_adaptation`

use std::collections::HashSet;

use sada_repro::core::{run_adaptation, AdaptationSpec, RunConfig};
use sada_repro::expr::{InvariantSet, Universe};
use sada_repro::model::SystemModel;
use sada_repro::plan::{Action, ActionId};

fn main() {
    // Same components and invariants as the case study…
    let mut u = Universe::new();
    for n in ["E1", "E2", "D1", "D2", "D3", "D4", "D5"] {
        u.intern(n);
    }
    let invariants = InvariantSet::parse(
        &["one_of(D1, D2, D3)", "one_of(E1, E2)", "E1 => (D1 | D2) & D4", "E2 => (D3 | D2) & D5"],
        &mut u,
    )
    .unwrap();
    // …but the *reverse* action table: the operations needed to soften
    // security for battery life. Decoder downgrades on the hand-held are
    // cheap; compound encoder/decoder swaps again cost more and need
    // draining.
    let c = |names: &[&str]| u.config_of(names);
    let actions = vec![
        Action::replace(0, "E2 -> E1", &c(&["E2"]), &c(&["E1"]), 10),
        Action::replace(1, "D3 -> D2", &c(&["D3"]), &c(&["D2"]), 10),
        Action::replace(2, "D2 -> D1", &c(&["D2"]), &c(&["D1"]), 10),
        Action::replace(3, "D5 -> D4", &c(&["D5"]), &c(&["D4"]), 10),
        Action::insert(4, "+D4", &c(&["D4"]), 10),
        Action::remove(5, "-D5", &c(&["D5"]), 10),
        Action::replace(6, "(D3,E2) -> (D2,E1)", &c(&["D3", "E2"]), &c(&["D2", "E1"]), 100),
        Action::replace(7, "(D5,E2) -> (D4,E1)", &c(&["D5", "E2"]), &c(&["D4", "E1"]), 100),
    ];
    let mut model = SystemModel::new();
    let server = model.add_process("video-server");
    let handheld = model.add_process("handheld-client");
    let laptop = model.add_process("laptop-client");
    model.place_all(
        &u,
        &[
            ("E1", server),
            ("E2", server),
            ("D1", handheld),
            ("D2", handheld),
            ("D3", handheld),
            ("D4", laptop),
            ("D5", laptop),
        ],
    );
    let drain: HashSet<ActionId> = [ActionId(6), ActionId(7)].into();
    let spec = AdaptationSpec::new(u, invariants, actions, model, vec![0, 1, 2], drain);
    let u = spec.universe();

    // Battery-low trigger: go from hardened 1010010 back to thrifty 0100101.
    let source = u.config_from_bits("1010010"); // {D5, D3, E2}
    let target = u.config_from_bits("0100101"); // {D4, D1, E1}

    println!("== energy downgrade plan ==");
    let sag = spec.build_sag();
    println!("SAG: {} nodes, {} arcs", sag.node_count(), sag.edge_count());
    let map = spec.minimum_adaptation_path(&source, &target).expect("reverse path exists");
    println!("MAP: {map}");
    for step in &map.steps {
        println!(
            "  {}: {:<22} {} -> {}",
            step.action,
            spec.actions()[step.action.index()].name(),
            step.from.to_names(u),
            step.to.to_names(u)
        );
    }
    // The downgrade mirrors the paper's hardening: via the compatible D2 and
    // a temporary D4/D5 coexistence, all in cheap solo steps.
    assert!(map.cost <= 50, "cheap fine-grained route exists (cost {})", map.cost);

    println!("\n== executing over the simulated network ==");
    let report = run_adaptation(&spec, &source, &target, &RunConfig::default());
    println!(
        "outcome: success={} steps={} in {} ({} msgs)",
        report.outcome.success,
        report.outcome.steps_committed,
        report.finished_at,
        report.messages_sent
    );
    assert!(report.outcome.success);
    assert_eq!(report.outcome.final_config, target);

    // And the alternatives the failure ladder would try:
    for (i, p) in sag.k_shortest_paths(&source, &target, 3).iter().enumerate() {
        println!("  rank {}: {p}", i + 1);
    }
}
