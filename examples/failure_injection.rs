//! Section 4.4 in action: inject the paper's two failure classes —
//! loss-of-message and fail-to-reset — into the case-study adaptation and
//! watch the manager's recovery ladder (retry, next-cheapest path, return
//! to source, wait for user).
//!
//! Run with: `cargo run --example failure_injection`

use sada_repro::core::casestudy::case_study;
use sada_repro::core::{run_adaptation, RunConfig};
use sada_repro::simnet::{LinkConfig, SimDuration};

fn main() {
    let cs = case_study();

    println!("== 1. clean run (no failures) ==");
    let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &RunConfig::default());
    println!(
        "  outcome: success={} steps={} at {} ({} msgs)",
        report.outcome.success,
        report.outcome.steps_committed,
        report.finished_at,
        report.messages_sent
    );

    println!("\n== 2. loss-of-message: 20% loss on manager<->agent links ==");
    for seed in 0..5u64 {
        let cfg = RunConfig {
            seed,
            link: LinkConfig::lossy(SimDuration::from_millis(1), 0.2),
            ..RunConfig::default()
        };
        let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        println!(
            "  seed {seed}: success={} gave_up={} final={} dropped {} of {} msgs{}",
            report.outcome.success,
            report.outcome.gave_up,
            report.outcome.final_config.to_bit_string(),
            report.messages_dropped,
            report.messages_sent,
            if report.outcome.warnings.is_empty() {
                String::new()
            } else {
                format!(" warnings={:?}", report.outcome.warnings)
            },
        );
        assert!(cs.spec.is_safe(&report.outcome.final_config), "must always end safe");
    }

    println!("\n== 3. fail-to-reset on the hand-held (a long critical segment) ==");
    let cfg = RunConfig { fail_to_reset: vec![1], ..RunConfig::default() };
    let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
    println!(
        "  outcome: success={} gave_up={} final={}",
        report.outcome.success,
        report.outcome.gave_up,
        report.outcome.final_config.to_bit_string()
    );
    println!("  manager log:");
    for info in &report.infos {
        println!("    - {info}");
    }
    assert!(!report.outcome.success);
    assert!(cs.spec.is_safe(&report.outcome.final_config));

    println!("\n== 4. fail-to-reset on the laptop ==");
    let cfg = RunConfig { fail_to_reset: vec![2], ..RunConfig::default() };
    let report = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
    println!(
        "  outcome: success={} gave_up={} final={}",
        report.outcome.success,
        report.outcome.gave_up,
        report.outcome.final_config.to_bit_string()
    );
    assert!(cs.spec.is_safe(&report.outcome.final_config));

    println!("\nevery run ended in a safe configuration — the paper's guarantee held.");
}
