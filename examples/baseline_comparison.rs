//! Quantifies the paper's motivation: what happens to the video stream
//! under (a) the safe adaptation process, (b) a naive uncoordinated
//! hot-swap, and (c) coarse whole-system quiescence (Kramer–Magee style).
//!
//! Run with: `cargo run --example baseline_comparison`

use sada_repro::simnet::SimDuration;
use sada_repro::video::{run_video_scenario, ScenarioConfig, Strategy, VideoReport};

fn row(name: &str, r: &VideoReport) {
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8}",
        name,
        r.server.frames_sent,
        r.frames_displayed(),
        r.corrupted_packets(),
        format!("{}", r.server.blocked),
        format!("{}", r.handheld_blocked),
        if r.audit.is_safe() { "SAFE" } else { "UNSAFE" },
    );
}

fn main() {
    let cfg = ScenarioConfig::default();

    let none = run_video_scenario(&cfg, Strategy::None);
    let safe = run_video_scenario(&cfg, Strategy::Safe);
    let naive = run_video_scenario(&cfg, Strategy::Naive { skew: SimDuration::from_millis(60) });
    let quiesce =
        run_video_scenario(&cfg, Strategy::Quiescence { window: SimDuration::from_millis(100) });

    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "strategy", "frames", "displayed", "corrupted", "srv-blocked", "hh-blocked", "audit"
    );
    row("control", &none);
    row("safe", &safe);
    row("naive", &naive);
    row("quiescence", &quiesce);

    println!();
    if !naive.audit.is_safe() {
        println!("naive violations (first 3):");
        for v in naive.audit.violations.iter().take(3) {
            println!("  - {v}");
        }
    }

    // The shape the paper predicts:
    assert_eq!(safe.corrupted_packets(), 0, "safe adaptation never corrupts");
    assert!(naive.corrupted_packets() > 0, "naive swap corrupts the stream");
    assert!(!naive.audit.is_safe());
    assert_eq!(quiesce.corrupted_packets(), 0, "quiescence is safe too…");
    assert!(
        quiesce.server.blocked > safe.server.blocked,
        "…but blocks the whole system far longer than the targeted safe process"
    );
    println!("paper's qualitative claims hold: safe == quiescence on integrity, safe < quiescence on disruption, naive corrupts.");
}
