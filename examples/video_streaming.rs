//! The paper's Section 5 case study end to end: prints Table 1, Table 2,
//! the Figure 4 SAG and the minimum adaptation path, then actually runs the
//! video multicasting system through the DES-64 → DES-128 hardening while
//! streaming, and reports the stream-quality and safety-audit results.
//!
//! Run with: `cargo run --example video_streaming`

use sada_repro::core::casestudy::case_study;
use sada_repro::video::{run_video_scenario, ScenarioConfig, Strategy};

fn main() {
    let cs = case_study();
    let u = cs.spec.universe();

    println!("== Table 1: safe configuration set ==");
    println!("{:<10} configuration", "bit vector");
    for cfg in cs.spec.safe_configs() {
        println!("{:<10} {}", cfg.to_bit_string(), cfg.to_names(u));
    }

    println!("\n== Table 2: adaptive actions and costs ==");
    println!("{:<5} {:<28} {:>9}", "id", "operation", "cost (ms)");
    for a in cs.spec.actions() {
        println!("{:<5} {:<28} {:>9}", a.id().to_string(), a.name(), a.cost());
    }

    println!("\n== Figure 4: safe adaptation graph ==");
    let sag = cs.spec.build_sag();
    println!("{} safe configurations, {} adaptation arcs", sag.node_count(), sag.edge_count());
    for e in sag.edges() {
        println!(
            "  {} --{}--> {}",
            sag.configs()[e.from].to_bit_string(),
            e.action,
            sag.configs()[e.to].to_bit_string()
        );
    }

    println!("\n== Minimum adaptation path (Dijkstra) ==");
    let map = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).expect("MAP");
    println!("source {} -> target {}", cs.source.to_bit_string(), cs.target.to_bit_string());
    println!("MAP: {map}   (paper: [A2, A17, A1, A16, A4] cost=50)");
    for step in &map.steps {
        println!("  {}: {} -> {}", step.action, step.from.to_names(u), step.to.to_names(u));
    }

    println!("\n== Live run: safe adaptation during streaming ==");
    let cfg = ScenarioConfig::default();
    let report = run_video_scenario(&cfg, Strategy::Safe);
    let outcome = report.outcome.as_ref().expect("protocol outcome");
    println!("adaptation success: {}", outcome.success);
    println!("steps committed:    {}", outcome.steps_committed);
    println!("frames sent:        {}", report.server.frames_sent);
    println!(
        "frames displayed:   handheld={} laptop={}",
        report.handheld.frames_displayed, report.laptop.frames_displayed
    );
    println!("corrupted packets:  {}", report.corrupted_packets());
    println!("server blocked:     {}", report.server.blocked);
    println!(
        "safety audit:       {} ({} configs, {} segments checked)",
        if report.audit.is_safe() { "SAFE" } else { "UNSAFE" },
        report.audit.configs_checked,
        report.audit.segments_completed
    );
    assert!(outcome.success && report.audit.is_safe() && report.corrupted_packets() == 0);
}
