//! Quickstart: define a tiny adaptive system, plan a safe adaptation path,
//! and execute it with the manager/agent protocol on the simulated network.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::HashSet;

use sada_repro::core::{run_adaptation, AdaptationSpec, RunConfig};
use sada_repro::expr::{InvariantSet, Universe};
use sada_repro::model::SystemModel;
use sada_repro::plan::Action;

fn main() {
    // 1. Analysis phase — describe the system.
    //    Components: a TLS-1.2 stack and a TLS-1.3 stack on a gateway, plus
    //    a matching client library on an edge node.
    let mut universe = Universe::new();
    let invariants = InvariantSet::parse(
        &[
            "one_of(Tls12, Tls13)",       // the gateway runs exactly one stack
            "one_of(Client12, Client13)", // the edge runs exactly one client
            "Tls13 => Client13",          // the new stack needs the new client
            "Tls12 => Client12",          // and vice versa
        ],
        &mut universe,
    )
    .expect("invariants parse");

    let c = |names: &[&str]| universe.config_of(names);
    let actions = vec![
        Action::replace(0, "Client12 -> Client13", &c(&["Client12"]), &c(&["Client13"]), 20),
        Action::replace(
            1,
            "(Tls12,Client12) -> (Tls13,Client13)",
            &c(&["Tls12", "Client12"]),
            &c(&["Tls13", "Client13"]),
            45,
        ),
        Action::replace(2, "Tls12 -> Tls13", &c(&["Tls12"]), &c(&["Tls13"]), 20),
    ];

    let mut model = SystemModel::new();
    let gateway = model.add_process("gateway");
    let edge = model.add_process("edge");
    model.place_all(
        &universe,
        &[("Tls12", gateway), ("Tls13", gateway), ("Client12", edge), ("Client13", edge)],
    );

    let spec =
        AdaptationSpec::new(universe, invariants, actions, model, vec![0, 1], HashSet::new());

    // 2. Detection and setup phase — enumerate safe configurations, build
    //    the SAG, find the minimum adaptation path.
    let u = spec.universe();
    let source = u.config_of(&["Tls12", "Client12"]);
    let target = u.config_of(&["Tls13", "Client13"]);

    println!("safe configurations:");
    for cfg in spec.safe_configs() {
        println!("  {} = {}", cfg.to_bit_string(), cfg.to_names(u));
    }
    let sag = spec.build_sag();
    println!("SAG: {} nodes, {} arcs", sag.node_count(), sag.edge_count());

    let map = spec.minimum_adaptation_path(&source, &target).expect("a safe path exists");
    println!("minimum adaptation path: {map}");
    for step in &map.steps {
        println!("  {} : {} -> {}", step.action, step.from.to_names(u), step.to.to_names(u));
    }

    // Note: the invariants make the one-step-at-a-time route impossible
    // (neither stack can change without its client), so the MAP is the
    // single compound action despite its higher sticker price.
    assert_eq!(map.steps.len(), 1);

    // 3. Realization phase — execute it over the simulated network.
    let report = run_adaptation(&spec, &source, &target, &RunConfig::default());
    println!(
        "adaptation {} in {} using {} messages ({} steps committed)",
        if report.outcome.success { "succeeded" } else { "failed" },
        report.finished_at,
        report.messages_sent,
        report.outcome.steps_committed,
    );
    assert!(report.outcome.success);
    assert_eq!(report.outcome.final_config, target);
}
