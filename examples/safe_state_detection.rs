//! Section 7's future work, realized: automatically identify safe states
//! with a temporal-logic monitor instead of hand-coded agent logic.
//!
//! A live video run records its audit log (per-packet transmission
//! segments); the ptLTL obligation monitor then derives, for any component
//! set an action would touch, exactly the log positions where the action
//! could have run safely — and we cross-check a sample against the
//! independent safety auditor.
//!
//! Run with: `cargo run --example safe_state_detection`

use sada_repro::core::casestudy::case_study;
use sada_repro::model::AuditEvent;
use sada_repro::tl::{audit_bridge, parse_formula, Monitor};
use sada_repro::video::{run_video_scenario, ScenarioConfig, Strategy};

fn main() {
    // 1. Plain ptLTL monitoring, to show the machinery.
    let formula = parse_formula("historically (adapting => once planned)").unwrap();
    let mut monitor = Monitor::new(formula.clone());
    println!("== ptLTL monitor ==");
    println!("formula: {formula}");
    for (label, props) in
        [("idle", vec![]), ("planned", vec!["planned"]), ("adapting", vec!["adapting"])]
    {
        let props2 = props.clone();
        let verdict = monitor.step(&|p| props2.contains(&p));
        println!("  state {label:<9} -> {}", if verdict { "OK" } else { "VIOLATED" });
    }

    // 2. Automatic safe-state identification from a real run's audit log.
    println!("\n== deriving safe states from a live run ==");
    let cfg = ScenarioConfig {
        stream_end: sada_repro::simnet::SimTime::from_millis(300),
        adapt_at: sada_repro::simnet::SimDuration::from_millis(10_000), // never
        ..ScenarioConfig::default()
    };
    // Control run: no adaptation, just traffic; we ask afterwards *when* an
    // action touching the hand-held decoder D1 could have run.
    let report = run_video_scenario(&cfg, Strategy::None);
    assert!(report.audit.is_safe());

    // Re-run to collect the raw log (the scenario returns the audited
    // verdict; for the raw events we rebuild a tiny world inline).
    let cs = case_study();
    let u = cs.spec.universe();
    let d1 = u.id("D1").unwrap();
    let d4 = u.id("D4").unwrap();

    // Synthetic but structurally identical log: interleaved transmission
    // segments on D1 (hand-held) and D4 (laptop).
    let mut log = Vec::new();
    for seq in 0..5u64 {
        log.push(AuditEvent::SegmentStart { cid: seq, comp: d1 });
        log.push(AuditEvent::SegmentStart { cid: 1000 + seq, comp: d4 });
        log.push(AuditEvent::SegmentEnd { cid: seq, comp: d1 });
        log.push(AuditEvent::SegmentEnd { cid: 1000 + seq, comp: d4 });
    }
    let points_d1 = audit_bridge::safe_points(&log, &[d1]);
    let points_both = audit_bridge::safe_points(&log, &[d1, d4]);
    println!("log has {} events", log.len());
    println!("positions safe for an action touching D1:      {points_d1:?}");
    println!("positions safe for an action touching D1 & D4: {points_both:?}");
    assert!(points_both.len() < points_d1.len(), "more components, fewer safe points");
    assert!(!points_both.is_empty(), "between packet groups everything is drained");

    // 3. Cross-check: the detector's verdicts agree with the auditor.
    let auditor = sada_repro::model::SafetyAuditor::new(sada_repro::expr::InvariantSet::new());
    let mut checked = 0;
    for at in 0..log.len() {
        let mut with_action = log.clone();
        with_action
            .insert(at + 1, AuditEvent::InAction { label: "D1 -> D2".into(), comps: vec![d1] });
        let audit_ok = auditor.audit(&with_action).is_safe();
        let detector_ok = audit_bridge::is_safe_at(&log, &[d1], at);
        assert_eq!(audit_ok, detector_ok, "divergence at {at}");
        checked += 1;
    }
    println!("detector vs auditor: {checked}/{checked} positions agree");
}
