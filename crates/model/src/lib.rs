//! # sada-model — the paper's Section 3 system formalism
//!
//! *Enabling Safe Dynamic Component-Based Software Adaptation* (DSN 2004)
//! models a component-based system as communicating components spread over
//! processes, and defines a **safe** adaptation process as one that
//!
//! 1. never violates the dependency relationships among components, and
//! 2. never interrupts a **critical communication segment** (CCS).
//!
//! This crate provides that vocabulary:
//!
//! * [`SystemModel`] — components hosted on processes, connected by directed
//!   communication channels; queries for local vs. global communication and
//!   reachability.
//! * [`audit`] — an event-log checker that *independently* verifies both
//!   safety conditions over a recorded run. The protocol crate never checks
//!   itself; tests record what happened and let the auditor judge it, which
//!   is how the repository validates the paper's Section 3.3 theorem.

pub mod audit;
mod system;

pub use audit::{AuditEvent, AuditReport, SafetyAuditor, Violation, ViolationKind};
pub use system::{Channel, ProcessId, SystemModel};
