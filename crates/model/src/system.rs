//! Components, processes, and communication channels.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use sada_expr::{CompId, Config, Universe};

/// Identifies an operating-system process hosting components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Dense index of the process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// A directed communication channel between two components (Section 3: "a
/// two-way communication between two components is represented with two
/// channels with traffic traversing in opposite directions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// The sending component.
    pub from: CompId,
    /// The receiving component.
    pub to: CompId,
}

/// The static structure of a component-based system: which process hosts
/// each component and which directed channels connect components.
///
/// The adaptation runtime uses this to decide which *processes* must
/// participate in an adaptive action (those hosting a touched component)
/// and whether an action's communication is local or global.
#[derive(Debug, Clone, Default)]
pub struct SystemModel {
    process_names: Vec<String>,
    host: HashMap<CompId, ProcessId>,
    channels: Vec<Channel>,
}

impl SystemModel {
    /// An empty system.
    pub fn new() -> Self {
        SystemModel::default()
    }

    /// An empty system with its process and placement tables pre-sized —
    /// compiling a 100k-process world does one allocation per table instead
    /// of regrowing through every `add_process`/`place`.
    pub fn with_capacity(processes: usize, components: usize) -> Self {
        SystemModel {
            process_names: Vec::with_capacity(processes),
            host: HashMap::with_capacity(components),
            channels: Vec::new(),
        }
    }

    /// Registers a process and returns its id.
    pub fn add_process(&mut self, name: &str) -> ProcessId {
        let id = ProcessId(self.process_names.len() as u32);
        self.process_names.push(name.to_string());
        id
    }

    /// The registration name of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` was not created by this model.
    pub fn process_name(&self, p: ProcessId) -> &str {
        &self.process_names[p.index()]
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.process_names.len()
    }

    /// Assigns component `c` to process `p` (replacing any prior host).
    pub fn place(&mut self, c: CompId, p: ProcessId) {
        assert!(p.index() < self.process_names.len(), "unknown process {p}");
        self.host.insert(c, p);
    }

    /// The process hosting `c`, if placed.
    pub fn host_of(&self, c: CompId) -> Option<ProcessId> {
        self.host.get(&c).copied()
    }

    /// Adds a directed channel.
    pub fn connect(&mut self, from: CompId, to: CompId) {
        self.channels.push(Channel { from, to });
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// A channel is *local* when both endpoints live on the same process,
    /// *global* otherwise (Section 3's local vs. global communication).
    ///
    /// Returns `None` when either endpoint is unplaced.
    pub fn is_local(&self, ch: Channel) -> Option<bool> {
        Some(self.host_of(ch.from)? == self.host_of(ch.to)?)
    }

    /// "A component can communicate with another as long as there exists a
    /// path of one or more channels connecting these two components."
    pub fn can_communicate(&self, from: CompId, to: CompId) -> bool {
        if from == to {
            return false; // a path needs one or more channels; self-loops only if declared
        }
        let mut adj: HashMap<CompId, Vec<CompId>> = HashMap::new();
        for ch in &self.channels {
            adj.entry(ch.from).or_default().push(ch.to);
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(c) = queue.pop_front() {
            for &n in adj.get(&c).into_iter().flatten() {
                if n == to {
                    return true;
                }
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        false
    }

    /// The processes hosting any component of `comps` — the participant set
    /// of an adaptive action that touches `comps`.
    ///
    /// # Panics
    ///
    /// Panics if a touched component is unplaced: an adaptation cannot
    /// involve a component the deployment never assigned to a process.
    pub fn processes_hosting(&self, comps: &Config) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = comps
            .iter()
            .map(|c| {
                self.host_of(c).unwrap_or_else(|| {
                    panic!("component c{} is not placed on any process", c.index())
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// True when an action touching `comps` spans more than one process —
    /// i.e. it is a *distributed* adaptive action whose agents must be held
    /// blocked until all in-actions complete (Section 4.3).
    pub fn is_distributed(&self, comps: &Config) -> bool {
        self.processes_hosting(comps).len() > 1
    }

    /// Convenience used by examples: place every named component.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown to `u`.
    pub fn place_all(&mut self, u: &Universe, placements: &[(&str, ProcessId)]) {
        for (name, p) in placements {
            let c = u.id(name).unwrap_or_else(|| panic!("unknown component {name:?}"));
            self.place(c, *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Universe, SystemModel, ProcessId, ProcessId) {
        let mut u = Universe::new();
        for n in ["E1", "D1", "D4"] {
            u.intern(n);
        }
        let mut m = SystemModel::new();
        let server = m.add_process("server");
        let client = m.add_process("client");
        m.place_all(&u, &[("E1", server), ("D1", client), ("D4", client)]);
        (u, m, server, client)
    }

    #[test]
    fn placement_and_names() {
        let (u, m, server, client) = setup();
        assert_eq!(m.process_count(), 2);
        assert_eq!(m.process_name(server), "server");
        assert_eq!(m.host_of(u.id("E1").unwrap()), Some(server));
        assert_eq!(m.host_of(u.id("D1").unwrap()), Some(client));
    }

    #[test]
    fn local_vs_global_channels() {
        let (u, mut m, _server, _client) = setup();
        let e1 = u.id("E1").unwrap();
        let d1 = u.id("D1").unwrap();
        let d4 = u.id("D4").unwrap();
        m.connect(e1, d1); // cross-process: global
        m.connect(d1, d4); // same process: local
        assert_eq!(m.is_local(m.channels()[0]), Some(false));
        assert_eq!(m.is_local(m.channels()[1]), Some(true));
    }

    #[test]
    fn unplaced_endpoint_is_unknown_locality() {
        let (mut u, m, _s, _c) = setup();
        let ghost = u.intern("GHOST");
        let e1 = u.id("E1").unwrap();
        assert_eq!(m.is_local(Channel { from: e1, to: ghost }), None);
    }

    #[test]
    fn reachability_follows_channel_direction() {
        let (u, mut m, _s, _c) = setup();
        let e1 = u.id("E1").unwrap();
        let d1 = u.id("D1").unwrap();
        let d4 = u.id("D4").unwrap();
        m.connect(e1, d1);
        m.connect(d1, d4);
        assert!(m.can_communicate(e1, d4), "transitive path");
        assert!(!m.can_communicate(d4, e1), "channels are directed");
        assert!(!m.can_communicate(e1, e1), "no declared self-loop");
    }

    #[test]
    fn participant_processes_dedupe_and_sort() {
        let (u, m, server, client) = setup();
        let touched = u.config_of(&["E1", "D1", "D4"]);
        assert_eq!(m.processes_hosting(&touched), vec![server, client]);
        assert!(m.is_distributed(&touched));
        let local_only = u.config_of(&["D1", "D4"]);
        assert!(!m.is_distributed(&local_only));
    }

    #[test]
    #[should_panic(expected = "not placed")]
    fn unplaced_participant_panics() {
        let (mut u, m, _s, _c) = setup();
        let ghost = u.intern("GHOST");
        let mut cfg = sada_expr::Config::empty(u.len());
        cfg.insert(ghost);
        let _ = m.processes_hosting(&cfg);
    }
}
