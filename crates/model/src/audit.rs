//! Independent safety auditing of recorded adaptation runs.
//!
//! Section 3 defines a safe dynamic adaptation process by two conditions:
//! dependency relationships hold in every (quiescent) configuration, and no
//! critical communication segment (CCS) is interrupted. Section 3.3 proves
//! this equivalent to "executes along a safe adaptation path with every
//! adaptive action performed in its global safe state".
//!
//! The auditor consumes a flat [`AuditEvent`] log emitted by instrumented
//! runs — segment open/close brackets per critical-communication id, atomic
//! in-actions with the component set they touch, and configuration
//! snapshots — and reports every violation of either condition. Because the
//! log is produced by the *application* (packet codecs, filter chains) and
//! not by the adaptation protocol, a buggy or deliberately unsafe protocol
//! (the hot-swap baseline) cannot hide its violations.

use std::collections::HashMap;
use std::fmt;

use sada_expr::{CompId, Config, InvariantSet, Universe};

/// One entry in a run's audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// A critical communication segment with identifier `cid` began; it
    /// involves component `comp` (e.g. "decoder D1 started decoding packet
    /// 17").
    SegmentStart {
        /// Critical communication identifier (the paper's CID).
        cid: u64,
        /// The component performing the segment's atomic actions.
        comp: CompId,
    },
    /// The segment `cid` completed normally.
    SegmentEnd {
        /// Critical communication identifier.
        cid: u64,
        /// Must match the opening component.
        comp: CompId,
    },
    /// The segment `cid` was destroyed by an environmental fault (process
    /// crash, partition outage) rather than by an adaptive action. Closes
    /// the bracket without counting a completion. The paper's safety
    /// conditions constrain the *adaptation*, not the environment: an
    /// in-action cutting a segment is still a violation (checked in-line at
    /// the [`AuditEvent::InAction`] event), while a crash eating a packet
    /// mid-transmission is a fault the run merely has to survive.
    SegmentLost {
        /// Critical communication identifier.
        cid: u64,
        /// Must match the opening component.
        comp: CompId,
    },
    /// An adaptive in-action executed atomically, touching `comps`.
    InAction {
        /// Human-readable action label (for reporting).
        label: String,
        /// Components removed or added by the in-action.
        comps: Vec<CompId>,
    },
    /// The system observed configuration `config` at a quiescent point
    /// (before the adaptation, between steps, after completion or rollback).
    ConfigSnapshot {
        /// The observed component set.
        config: Config,
    },
}

/// Why an audited run is unsafe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A quiescent configuration violated the dependency invariants.
    UnsafeConfiguration,
    /// An in-action executed while a critical communication segment
    /// involving a touched component was still open.
    InterruptedSegment {
        /// The open segment's critical communication identifier.
        cid: u64,
        /// The component whose segment was cut.
        comp: CompId,
    },
    /// Segment brackets were malformed (end without start, mismatched
    /// component, or still-open segment at end of log).
    MalformedSegment {
        /// The offending critical communication identifier.
        cid: u64,
    },
}

/// A single audit finding, with the index of the offending log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index into the audited event slice (log length for end-of-log
    /// findings).
    pub at: usize,
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {}: {}", self.at, self.detail)
    }
}

/// The outcome of auditing one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Every violation found, in log order.
    pub violations: Vec<Violation>,
    /// Configurations checked.
    pub configs_checked: usize,
    /// Segments that opened and closed cleanly.
    pub segments_completed: usize,
    /// Segments adjudicated lost to environmental faults (crash outages).
    pub segments_lost: usize,
    /// In-actions observed.
    pub in_actions: usize,
}

impl AuditReport {
    /// True when the run satisfied both safety conditions.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks recorded runs against an invariant set.
#[derive(Debug, Clone)]
pub struct SafetyAuditor {
    invariants: InvariantSet,
}

impl SafetyAuditor {
    /// Builds an auditor for the given dependency invariants.
    pub fn new(invariants: InvariantSet) -> Self {
        SafetyAuditor { invariants }
    }

    /// Replays `log` and reports every safety violation.
    ///
    /// The checks mirror the paper's two-part safety definition:
    ///
    /// 1. every [`AuditEvent::ConfigSnapshot`] must satisfy the invariants
    ///    (safe adaptation path: the system is always *at* or *between* safe
    ///    configurations, and snapshots are taken at quiescent points);
    /// 2. every [`AuditEvent::InAction`] must find no open segment on a
    ///    component it touches (adaptive actions happen in global safe
    ///    states).
    ///
    /// Bracket hygiene (ends match starts; nothing left open) is also
    /// enforced so that instrumentation bugs surface as audit failures
    /// instead of silent vacuous passes.
    pub fn audit(&self, log: &[AuditEvent]) -> AuditReport {
        let mut report = AuditReport::default();
        let mut open: HashMap<u64, CompId> = HashMap::new();
        for (ix, ev) in log.iter().enumerate() {
            match ev {
                AuditEvent::SegmentStart { cid, comp } => {
                    if open.insert(*cid, *comp).is_some() {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::MalformedSegment { cid: *cid },
                            detail: format!("segment {cid} started twice"),
                        });
                    }
                }
                AuditEvent::SegmentEnd { cid, comp } => match open.remove(cid) {
                    Some(start_comp) if start_comp == *comp => {
                        report.segments_completed += 1;
                    }
                    Some(start_comp) => {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::MalformedSegment { cid: *cid },
                            detail: format!(
                                "segment {cid} ended by c{} but started by c{}",
                                comp.index(),
                                start_comp.index()
                            ),
                        });
                    }
                    None => {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::MalformedSegment { cid: *cid },
                            detail: format!("segment {cid} ended without starting"),
                        });
                    }
                },
                AuditEvent::SegmentLost { cid, comp } => match open.remove(cid) {
                    Some(start_comp) if start_comp == *comp => {
                        report.segments_lost += 1;
                    }
                    Some(start_comp) => {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::MalformedSegment { cid: *cid },
                            detail: format!(
                                "segment {cid} lost by c{} but started by c{}",
                                comp.index(),
                                start_comp.index()
                            ),
                        });
                    }
                    None => {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::MalformedSegment { cid: *cid },
                            detail: format!("segment {cid} lost without starting"),
                        });
                    }
                },
                AuditEvent::InAction { label, comps } => {
                    report.in_actions += 1;
                    for (&cid, &comp) in &open {
                        if comps.contains(&comp) {
                            report.violations.push(Violation {
                                at: ix,
                                kind: ViolationKind::InterruptedSegment { cid, comp },
                                detail: format!(
                                    "in-action {label:?} interrupted segment {cid} on c{}",
                                    comp.index()
                                ),
                            });
                        }
                    }
                }
                AuditEvent::ConfigSnapshot { config } => {
                    report.configs_checked += 1;
                    if !self.invariants.satisfied_by(config) {
                        report.violations.push(Violation {
                            at: ix,
                            kind: ViolationKind::UnsafeConfiguration,
                            detail: format!(
                                "configuration {config} violates dependency invariants"
                            ),
                        });
                    }
                }
            }
        }
        for (&cid, &comp) in &open {
            report.violations.push(Violation {
                at: log.len(),
                kind: ViolationKind::MalformedSegment { cid },
                detail: format!("segment {cid} on c{} never ended", comp.index()),
            });
        }
        // Deterministic ordering even for the HashMap-derived findings.
        report
            .violations
            .sort_by(|a, b| (a.at, format!("{:?}", a.kind)).cmp(&(b.at, format!("{:?}", b.kind))));
        report
    }

    /// Convenience wrapper: audit and render a one-line verdict for logs.
    pub fn verdict(&self, u: &Universe, log: &[AuditEvent]) -> String {
        let _ = u;
        let report = self.audit(log);
        if report.is_safe() {
            format!(
                "SAFE: {} configs, {} segments, {} in-actions",
                report.configs_checked, report.segments_completed, report.in_actions
            )
        } else {
            format!(
                "UNSAFE: {} violation(s), first: {}",
                report.violations.len(),
                report.violations[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Universe, SafetyAuditor, CompId, CompId) {
        let mut u = Universe::new();
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let a = u.id("A").unwrap();
        let b = u.id("B").unwrap();
        (u, SafetyAuditor::new(inv), a, b)
    }

    #[test]
    fn clean_run_is_safe() {
        let (u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::ConfigSnapshot { config: u.config_of(&["A"]) },
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentEnd { cid: 1, comp: a },
            AuditEvent::InAction { label: "A->B".into(), comps: vec![a, b] },
            AuditEvent::ConfigSnapshot { config: u.config_of(&["B"]) },
        ];
        let report = auditor.audit(&log);
        assert!(report.is_safe(), "{:?}", report.violations);
        assert_eq!(report.configs_checked, 2);
        assert_eq!(report.segments_completed, 1);
        assert_eq!(report.in_actions, 1);
        assert!(auditor.verdict(&u, &log).starts_with("SAFE"));
    }

    #[test]
    fn unsafe_configuration_is_flagged() {
        let (u, auditor, _a, _b) = setup();
        let log = vec![AuditEvent::ConfigSnapshot { config: u.config_of(&["A", "B"]) }];
        let report = auditor.audit(&log);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::UnsafeConfiguration);
        assert!(auditor.verdict(&u, &log).starts_with("UNSAFE"));
    }

    #[test]
    fn interrupting_an_open_segment_is_flagged() {
        let (_u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::SegmentStart { cid: 7, comp: a },
            AuditEvent::InAction { label: "A->B".into(), comps: vec![a, b] },
            AuditEvent::SegmentEnd { cid: 7, comp: a },
        ];
        let report = auditor.audit(&log);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(
            report.violations[0].kind,
            ViolationKind::InterruptedSegment { cid: 7, comp: a }
        );
        assert_eq!(report.violations[0].at, 1);
    }

    #[test]
    fn in_action_on_unrelated_component_is_fine() {
        let (_u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::SegmentStart { cid: 7, comp: a },
            AuditEvent::InAction { label: "touch B".into(), comps: vec![b] },
            AuditEvent::SegmentEnd { cid: 7, comp: a },
        ];
        assert!(auditor.audit(&log).is_safe());
    }

    #[test]
    fn malformed_brackets_are_flagged() {
        let (_u, auditor, a, b) = setup();
        // end-without-start
        let r1 = auditor.audit(&[AuditEvent::SegmentEnd { cid: 1, comp: a }]);
        assert!(matches!(r1.violations[0].kind, ViolationKind::MalformedSegment { cid: 1 }));
        // double start
        let r2 = auditor.audit(&[
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentEnd { cid: 1, comp: a },
        ]);
        assert!(!r2.is_safe());
        // mismatched component
        let r3 = auditor.audit(&[
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentEnd { cid: 1, comp: b },
        ]);
        assert!(!r3.is_safe());
        // never closed
        let r4 = auditor.audit(&[AuditEvent::SegmentStart { cid: 1, comp: a }]);
        assert_eq!(r4.violations[0].at, 1, "reported at end of log");
    }

    #[test]
    fn concurrent_segments_tracked_independently() {
        let (_u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentStart { cid: 2, comp: b },
            AuditEvent::SegmentEnd { cid: 1, comp: a },
            // Only cid 2 (component b) is open; touching a is fine now.
            AuditEvent::InAction { label: "touch A".into(), comps: vec![a] },
            AuditEvent::SegmentEnd { cid: 2, comp: b },
        ];
        let report = auditor.audit(&log);
        assert!(report.is_safe(), "{:?}", report.violations);
        assert_eq!(report.segments_completed, 2);
    }

    #[test]
    fn fault_lost_segment_closes_without_completing() {
        let (_u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::SegmentLost { cid: 1, comp: a },
            // The segment is closed: an in-action on `a` is now legal.
            AuditEvent::InAction { label: "A->B".into(), comps: vec![a, b] },
        ];
        let report = auditor.audit(&log);
        assert!(report.is_safe(), "{:?}", report.violations);
        assert_eq!(report.segments_completed, 0);
        assert_eq!(report.segments_lost, 1);
    }

    #[test]
    fn lost_event_hygiene_is_enforced() {
        let (_u, auditor, a, b) = setup();
        // lost-without-start
        let r1 = auditor.audit(&[AuditEvent::SegmentLost { cid: 3, comp: a }]);
        assert!(matches!(r1.violations[0].kind, ViolationKind::MalformedSegment { cid: 3 }));
        // mismatched component
        let r2 = auditor.audit(&[
            AuditEvent::SegmentStart { cid: 3, comp: a },
            AuditEvent::SegmentLost { cid: 3, comp: b },
        ]);
        assert!(!r2.is_safe());
    }

    #[test]
    fn in_action_before_the_loss_is_still_a_violation() {
        // A crash cannot retroactively excuse an adaptive action that cut a
        // live segment: the interruption check fires at the InAction event.
        let (_u, auditor, a, b) = setup();
        let log = vec![
            AuditEvent::SegmentStart { cid: 9, comp: a },
            AuditEvent::InAction { label: "A->B".into(), comps: vec![a, b] },
            AuditEvent::SegmentLost { cid: 9, comp: a },
        ];
        let report = auditor.audit(&log);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(
            report.violations[0].kind,
            ViolationKind::InterruptedSegment { cid: 9, comp: a }
        );
    }

    #[test]
    fn multiple_violations_all_reported_in_order() {
        let (u, auditor, a, _b) = setup();
        let log = vec![
            AuditEvent::ConfigSnapshot { config: u.config_of(&["A", "B"]) },
            AuditEvent::SegmentStart { cid: 1, comp: a },
            AuditEvent::InAction { label: "A->B".into(), comps: vec![a] },
            AuditEvent::ConfigSnapshot { config: u.empty_config() },
        ];
        let report = auditor.audit(&log);
        // unsafe snapshot, interrupted segment, unsafe snapshot, unclosed segment
        assert_eq!(report.violations.len(), 4);
        let ats: Vec<usize> = report.violations.iter().map(|v| v.at).collect();
        assert_eq!(ats, vec![0, 2, 3, 4]);
    }
}
