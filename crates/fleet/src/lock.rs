//! The scope-lock manager: admission control for concurrent adaptations.
//!
//! Section 7's collaborative sets make component adaptations of different
//! sets independent; the control plane exploits that by granting each
//! adaptation session an exclusive lock over its *scope* — the set of
//! abstract resources (component ids and hosting processes) its plan may
//! touch. Sessions with disjoint scopes run concurrently; overlapping
//! sessions queue.
//!
//! Two properties hold by construction:
//!
//! * **Deadlock freedom** — acquisition is atomic and all-or-nothing: a
//!   session either receives its *entire* scope or holds nothing and waits.
//!   No session ever holds part of a scope while waiting for the rest, so
//!   the hold-and-wait condition for deadlock cannot arise.
//! * **Starvation freedom** — grants respect the waiter order (priority
//!   descending, then FIFO): a later request may overtake a waiter only if
//!   its scope is disjoint from that waiter's. The release-time scan keeps a
//!   *shadow set* of every skipped waiter's scope and refuses grants that
//!   intersect it, so a blocked waiter's resources can never be re-captured
//!   over its head indefinitely.

use std::collections::{BTreeMap, HashSet};

/// A waiting acquisition request.
#[derive(Debug, Clone)]
struct Waiter {
    session: u64,
    scope: Vec<u32>,
    priority: u8,
    seq: u64,
}

impl Waiter {
    /// Grant-order key: higher priority first, then FIFO by sequence.
    fn order_key(&self) -> (std::cmp::Reverse<u8>, u64) {
        (std::cmp::Reverse(self.priority), self.seq)
    }
}

/// Exclusive locks over `u32`-identified resources, granted scope-at-a-time.
#[derive(Debug, Default)]
pub struct ScopeLockManager {
    held: BTreeMap<u64, Vec<u32>>,
    held_set: HashSet<u32>,
    waiters: Vec<Waiter>,
    next_seq: u64,
}

impl ScopeLockManager {
    /// An empty manager: nothing held, nobody waiting.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty manager with its resource table pre-sized for a world of
    /// `resources` lockable units and its queue for `sessions` concurrent
    /// requests — one allocation up front instead of rehash/regrow churn
    /// on the admission hot path of a large fleet.
    pub fn with_capacity(resources: usize, sessions: usize) -> Self {
        ScopeLockManager {
            held: BTreeMap::new(),
            held_set: HashSet::with_capacity(resources),
            waiters: Vec::with_capacity(sessions),
            next_seq: 0,
        }
    }

    fn disjoint_from_held(&self, scope: &[u32]) -> bool {
        scope.iter().all(|r| !self.held_set.contains(r))
    }

    /// Waiter indices in grant order (priority descending, then FIFO).
    fn grant_order(&self) -> Vec<usize> {
        let mut ixs: Vec<usize> = (0..self.waiters.len()).collect();
        ixs.sort_by_key(|&i| self.waiters[i].order_key());
        ixs
    }

    /// Atomically acquires `scope` for `session`, or enqueues the request.
    ///
    /// Returns `true` when the whole scope was granted immediately. The
    /// request is refused (and queued) when the scope intersects a held
    /// scope *or* the scope of any waiter that would precede it in grant
    /// order — overtaking a conflicting earlier waiter would starve it.
    ///
    /// # Panics
    ///
    /// Panics if `session` already holds or awaits a scope: sessions
    /// acquire exactly once (all-or-nothing is what makes this
    /// deadlock-free).
    pub fn try_acquire(&mut self, session: u64, scope: &[u32], priority: u8) -> bool {
        assert!(
            !self.held.contains_key(&session) && self.waiters.iter().all(|w| w.session != session),
            "session {session} must not acquire twice"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let me = Waiter { session, scope: scope.to_vec(), priority, seq };
        let blocked_by_waiter = self.grant_order().into_iter().any(|i| {
            let w = &self.waiters[i];
            w.order_key() < me.order_key() && !disjoint(&w.scope, scope)
        });
        if self.disjoint_from_held(scope) && !blocked_by_waiter {
            self.held_set.extend(scope.iter().copied());
            self.held.insert(session, scope.to_vec());
            true
        } else {
            self.waiters.push(me);
            false
        }
    }

    /// Releases everything `session` holds and grants now-compatible
    /// waiters, returned in grant order.
    ///
    /// The scan walks the queue in grant order with a shadow set: a waiter
    /// is granted iff its scope is disjoint from both the held set and the
    /// scopes of every conflicting waiter already skipped — later waiters
    /// cannot leapfrog an earlier one they conflict with.
    pub fn release(&mut self, session: u64) -> Vec<u64> {
        if let Some(scope) = self.held.remove(&session) {
            for r in scope {
                self.held_set.remove(&r);
            }
        }
        self.grant_waiters()
    }

    /// Withdraws a *queued* request. Returns `None` if `session` was not
    /// waiting; otherwise the sessions its departure unblocked, in grant
    /// order (a cancelled waiter may have been the only obstacle shadowing
    /// a later one).
    pub fn cancel(&mut self, session: u64) -> Option<Vec<u64>> {
        let before = self.waiters.len();
        self.waiters.retain(|w| w.session != session);
        if self.waiters.len() == before {
            return None;
        }
        Some(self.grant_waiters())
    }

    fn grant_waiters(&mut self) -> Vec<u64> {
        let shadow_cap: usize = self.waiters.iter().map(|w| w.scope.len()).sum();
        let mut shadow: HashSet<u32> = HashSet::with_capacity(shadow_cap);
        let mut granted = Vec::with_capacity(self.waiters.len());
        for i in self.grant_order() {
            let w = &self.waiters[i];
            let free = w.scope.iter().all(|r| !self.held_set.contains(r) && !shadow.contains(r));
            if free {
                self.held_set.extend(w.scope.iter().copied());
                self.held.insert(w.session, w.scope.clone());
                granted.push(w.session);
            } else {
                shadow.extend(w.scope.iter().copied());
            }
        }
        self.waiters.retain(|w| !granted.contains(&w.session));
        granted
    }

    /// True while `session` holds its scope.
    pub fn is_held(&self, session: u64) -> bool {
        self.held.contains_key(&session)
    }

    /// Position of `session` in grant order (0 = next), or `None` if it is
    /// not waiting.
    pub fn position(&self, session: u64) -> Option<usize> {
        self.grant_order().into_iter().position(|i| self.waiters[i].session == session)
    }

    /// Sessions currently holding scopes, ascending.
    pub fn holders(&self) -> Vec<u64> {
        self.held.keys().copied().collect()
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }
}

fn disjoint(a: &[u32], b: &[u32]) -> bool {
    a.iter().all(|r| !b.contains(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disjoint_scopes_coexist() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0, 1], 0));
        assert!(lm.try_acquire(2, &[2, 3], 0));
        assert_eq!(lm.holders(), vec![1, 2]);
        assert_eq!(lm.queue_len(), 0);
    }

    #[test]
    fn overlap_queues_and_release_grants_in_fifo_order() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0, 1], 0));
        assert!(!lm.try_acquire(2, &[1, 2], 0));
        assert!(!lm.try_acquire(3, &[1], 0));
        assert_eq!(lm.position(2), Some(0));
        assert_eq!(lm.position(3), Some(1));
        // Releasing grants 2; 3 still conflicts with 2's freshly held scope.
        assert_eq!(lm.release(1), vec![2]);
        assert!(lm.is_held(2));
        assert_eq!(lm.release(2), vec![3]);
    }

    #[test]
    fn priority_overrides_fifo() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0], 0));
        assert!(!lm.try_acquire(2, &[0], 0));
        assert!(!lm.try_acquire(3, &[0], 5));
        assert_eq!(lm.position(3), Some(0), "higher priority jumps the queue");
        assert_eq!(lm.release(1), vec![3]);
        assert_eq!(lm.release(3), vec![2]);
    }

    #[test]
    fn no_overtaking_a_conflicting_earlier_waiter() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0], 0));
        // 2 waits on {0,5}. A later request for {5} alone must not slip in
        // front even though {5} is free — that would starve 2.
        assert!(!lm.try_acquire(2, &[0, 5], 0));
        assert!(!lm.try_acquire(3, &[5], 0));
        assert_eq!(lm.release(1), vec![2]);
        assert!(lm.is_held(2));
        assert!(!lm.is_held(3), "3 shadows behind 2");
        assert_eq!(lm.release(2), vec![3]);
    }

    #[test]
    fn disjoint_latecomer_overtakes_freely() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0], 0));
        assert!(!lm.try_acquire(2, &[0], 0));
        // Entirely disjoint from both holder and waiter: granted at once.
        assert!(lm.try_acquire(3, &[7], 0));
    }

    #[test]
    fn cancel_unblocks_shadowed_waiters() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0], 0));
        assert!(!lm.try_acquire(2, &[0, 5], 0));
        assert!(!lm.try_acquire(3, &[5], 0));
        // 2 leaves: 3 no longer shadows behind it and 5 is free.
        assert_eq!(lm.cancel(2), Some(vec![3]));
        assert!(lm.is_held(3));
        assert_eq!(lm.cancel(99), None, "unknown session is a no-op");
    }

    #[test]
    #[should_panic(expected = "must not acquire twice")]
    fn double_acquire_panics() {
        let mut lm = ScopeLockManager::new();
        assert!(lm.try_acquire(1, &[0], 0));
        let _ = lm.try_acquire(1, &[1], 0);
    }

    proptest! {
        /// Random acquire/release traffic: held scopes stay pairwise
        /// disjoint, every session is eventually granted (no deadlock, no
        /// starvation), and grants never violate the order contract.
        #[test]
        fn held_scopes_always_disjoint_and_everyone_finishes(
            scopes in proptest::collection::vec(
                (proptest::collection::vec(0u32..12, 1..4), 0u8..3),
                1..20,
            ),
        ) {
            let mut lm = ScopeLockManager::new();
            let mut running: Vec<u64> = Vec::new();
            let mut done: HashSet<u64> = HashSet::new();
            for (i, (raw_scope, prio)) in scopes.iter().enumerate() {
                // Real scopes are sorted and deduplicated (resources_for).
                let mut scope = raw_scope.clone();
                scope.sort_unstable();
                scope.dedup();
                let sid = i as u64 + 1;
                if lm.try_acquire(sid, &scope, *prio) {
                    running.push(sid);
                }
                // Invariant: held scopes pairwise disjoint.
                let mut seen: HashSet<u32> = HashSet::new();
                for s in lm.holders() {
                    for r in lm.held.get(&s).unwrap() {
                        prop_assert!(seen.insert(*r), "resource {r} held twice");
                    }
                }
                // Retire the oldest runner every other step to make room.
                if i % 2 == 1 {
                    if let Some(oldest) = running.first().copied() {
                        running.remove(0);
                        done.insert(oldest);
                        running.extend(lm.release(oldest));
                    }
                }
            }
            // Drain: release everything; all sessions must complete.
            while let Some(s) = running.first().copied() {
                running.remove(0);
                done.insert(s);
                running.extend(lm.release(s));
            }
            prop_assert_eq!(lm.queue_len(), 0, "nobody starves once holders drain");
            prop_assert_eq!(done.len(), scopes.len());
        }
    }
}
