//! The adaptation control plane: one actor, many concurrent sessions.
//!
//! The single-adaptation [`ManagerActor`](sada_proto::ManagerActor)
//! serializes every request through one [`ManagerCore`]. The control plane
//! instead embeds **one core per admitted session** and multiplexes them
//! over a shared wire: outgoing protocol traffic is stamped with the
//! session's [`SessionId`], agents echo the stamp, and replies are routed
//! back to the owning core. Admission is governed by the
//! [`ScopeLockManager`]: a session whose scope (collaborative sets +
//! hosting processes) is free starts immediately; conflicting sessions
//! queue in priority/FIFO order and may be cancelled while queued.
//!
//! ## Durability split
//!
//! Crash faults destroy the volatile process image — embedded cores, lock
//! table, timers, epoch watermarks, routing hints. What survives is exactly
//! what a production control plane would keep on durable storage: the
//! interleaved session-tagged write-ahead [`journal`](ControlActor::journal)
//! (append order = decision order), the [`results`](ControlActor::results)
//! of finished sessions, and the fleet configuration folded from them. On
//! restart the journal is partitioned by session: in-flight sessions replay
//! through [`ManagerCore::restore`] (their control-plane `Queued` prefix
//! stripped) and re-seize their scopes, queued-at-crash sessions requeue in
//! journal order, and scenario entries that never submitted are re-armed.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use sada_expr::Config;
use sada_obs::{Bus, Event, FleetEvent, Payload};
use sada_proto::{
    JournalRecord, ManagerCore, ManagerEffect, ManagerEvent, Outcome, ProtoTiming, SessionId,
    SessionRecord, Wire,
};
use sada_resilience::{
    shed_victim, BreakerConfig, BreakerTransition, BulkheadConfig, CircuitBreaker, RetryMode,
    RttEstimator,
};
use sada_simnet::{Actor, ActorId, Context, SimDuration, SimTime, TimerId};

use crate::cache::{CacheNoteKind, PlanCache, PlanCacheStats};
use crate::lock::ScopeLockManager;
use crate::planner::ScopedLazyPlanner;
use crate::world::FleetWorld;

/// One adaptation request the scenario will submit to the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Control-plane session id (nonzero; 0 is reserved for solo runs).
    pub id: u64,
    /// Groups to move, and the direction (`true` = toward `New`). The
    /// source and target configurations are computed **at admission** from
    /// the fleet configuration current at that instant, so queued sessions
    /// compose with whatever ran before them.
    pub flips: Vec<(usize, bool)>,
    /// Admission priority (higher first among queued sessions).
    pub priority: u8,
    /// Virtual time at which the request is submitted.
    pub submit_at: SimDuration,
    /// If set, withdraw the request at this virtual time unless it has
    /// been admitted by then.
    pub cancel_at: Option<SimDuration>,
}

/// Overload-protection policy for a control plane: per-agent circuit
/// breakers between the embedded cores and the wire, and bulkhead admission
/// bounds. The default (no breakers, unlimited bulkhead) reproduces the
/// historical always-admit behavior bit-for-bit; RTT-adaptive retransmission
/// deadlines are selected separately via `ProtoTiming::retry`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetResilience {
    /// Per-agent circuit breaker policy (`None` disables the gate).
    pub breaker: Option<BreakerConfig>,
    /// Per-scope circuit breaker policy (`None` disables the gate). Keyed
    /// by the session's scope-resource fingerprint, so a flapping scope
    /// trips alone: disjoint scopes that merely share an agent's shard keep
    /// admitting normally.
    pub scope_breaker: Option<BreakerConfig>,
    /// In-flight and waiting-room bounds with deterministic shedding.
    pub bulkhead: BulkheadConfig,
}

/// Typed admission outcome of one submitted session — the backpressure
/// signal a submitter acts on. Recorded durably per session (backed by the
/// journaled `Queued`/`Outcome` records the decision produces) and surfaced
/// through `SessionResult::admission`, replacing silent shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The session entered the protocol (immediately or after queueing).
    Admitted,
    /// The bulkhead shed the session under overload. `retry_after_us` is
    /// the hint handed back to the submitter: observed mean service time
    /// scaled by the backlog-to-capacity ratio at the shed instant.
    Shed {
        /// Suggested resubmission delay, microseconds.
        retry_after_us: u64,
    },
    /// The session was refused fail-fast at its admission instant because
    /// its scope sat behind an open circuit breaker (per-agent or
    /// per-scope).
    Rejected,
}

/// Timer-tag namespace: scenario submissions, queued-session cancellations,
/// and dynamically allocated per-core protocol timers must share one `u64`.
const TAG_SUBMIT_BASE: u64 = 1 << 62;
const TAG_CANCEL_BASE: u64 = 1 << 63;

/// Entries the shared plan cache may hold before LRU eviction kicks in.
const PLAN_CACHE_CAPACITY: usize = 128;

/// A live session: its embedded manager core and the protocol timers it has
/// armed (core token → global tag + cancellation handle).
struct ActiveSession {
    core: ManagerCore,
    timers: HashMap<u64, (u64, TimerId)>,
}

/// The control plane as a simulated process (speaks `Wire<M>` like
/// [`ManagerActor`](sada_proto::ManagerActor)).
pub struct ControlActor<M = ()> {
    world: Rc<FleetWorld>,
    agents: Vec<ActorId>,
    actor_to_agent: HashMap<ActorId, usize>,
    scenario: Vec<SessionSpec>,
    /// Session id → scenario index (first occurrence wins, matching a
    /// linear scan). The scenario never changes after construction, so
    /// this stays valid across restarts.
    spec_by_id: HashMap<u64, usize>,
    timing: ProtoTiming,
    /// When true, every session maps to one shared lock resource — the
    /// serial baseline the benchmarks compare scope-parallelism against.
    serialize: bool,
    /// Overload-protection policy (breakers + bulkhead bounds).
    resilience: FleetResilience,
    bus: Bus,
    // ---- volatile (destroyed by crash faults) ----
    epoch: u64,
    agent_epochs: HashMap<ActorId, u64>,
    active: BTreeMap<u64, ActiveSession>,
    locks: ScopeLockManager,
    /// Per-agent circuit breakers (empty when the policy is off). Volatile:
    /// a restored control plane re-learns which agents are sick.
    breakers: Vec<CircuitBreaker>,
    /// Per-scope circuit breakers, created lazily on first failure
    /// evidence and keyed by [`ControlActor::scope_key`]. Volatile, like
    /// the per-agent set.
    scope_breakers: HashMap<u64, CircuitBreaker>,
    /// Per-agent RTT estimators feeding adaptive retry deadlines. Volatile
    /// for the same reason.
    rtt: Vec<RttEstimator>,
    /// Last RTO reported per agent as a `TimeoutAdapted` event, so the bus
    /// only carries adaptations that moved the deadline by ≥ a quarter.
    last_rto: Vec<u64>,
    /// First unanswered send per agent, for Karn-rule RTT sampling.
    pending_since: HashMap<usize, SimTime>,
    /// True while applying effects produced by a protocol timeout — sends
    /// in that window are retransmissions, i.e. breaker failure evidence.
    in_timeout: bool,
    /// Sessions parked at the admission gate (in-flight cap reached before
    /// their scope was ever tried). Never holds lock-queue entries.
    gate: Vec<u64>,
    /// Waiting population (lock queue ∪ gate): session → (priority,
    /// enqueue sequence), the shed-victim ordering key.
    waiting: HashMap<u64, (u8, u64)>,
    /// Monotonic enqueue sequence (ties in shed-victim selection break
    /// toward the oldest waiter).
    queue_seq: u64,
    /// Global timer tag → (session, core token).
    tag_owner: HashMap<u64, (u64, u64)>,
    next_tag: u64,
    /// Agent index → session currently engaging it (for routing stepless
    /// rejoin traffic whose echoed session may be stale).
    agent_session: HashMap<usize, u64>,
    /// Session ids already submitted (guards double submission after a
    /// restart re-arms timers; rebuilt from the journal).
    submitted: HashSet<u64>,
    /// Fleet-wide plan cache shared by every session planner of this
    /// incarnation. Volatile on purpose: a restored control plane starts
    /// cold, so no cached path ever stands in for the durable journal.
    plan_cache: Rc<RefCell<PlanCache>>,
    // ---- durable (survives crash faults) ----
    /// The interleaved session-tagged write-ahead journal.
    pub journal: Vec<SessionRecord>,
    /// Fleet configuration folded from completed sessions.
    pub fleet_config: Config,
    /// Final outcome per finished session (cancelled sessions get
    /// `success: false, gave_up: false`).
    pub results: HashMap<u64, Outcome>,
    /// Virtual submission instant per session.
    pub submitted_at: HashMap<u64, SimTime>,
    /// Virtual admission instant per session.
    pub admitted_at: HashMap<u64, SimTime>,
    /// Virtual completion (or cancellation) instant per session.
    pub completed_at: HashMap<u64, SimTime>,
    /// Times this control plane crashed and was rebuilt from its journal.
    pub restores: u64,
    /// Progress log (`Info` effects, prefixed with the session).
    pub infos: Vec<String>,
    /// Sessions shed by the bulkhead (diagnostics; survives restarts).
    pub shed_count: u64,
    /// Sessions rejected at admission behind an open breaker (diagnostics;
    /// survives restarts).
    pub rejected_count: u64,
    /// Times any breaker tripped open (diagnostics; survives restarts).
    pub breaker_trips: u64,
    /// Times any *scope* breaker tripped open (diagnostics; survives
    /// restarts).
    pub scope_breaker_trips: u64,
    /// Sends refused by open breakers (diagnostics; survives restarts).
    pub suppressed_sends: u64,
    /// Typed admission outcome per session that reached a decision. Treated
    /// as durable alongside `results`: every entry is backed by journaled
    /// records (`Request` for admissions, `Outcome` for sheds/rejections).
    pub admissions: HashMap<u64, Admission>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Clone + 'static> ControlActor<M> {
    /// A control plane over `agents`, driving `scenario` under `timing`.
    pub fn new(
        world: Rc<FleetWorld>,
        agents: Vec<ActorId>,
        scenario: Vec<SessionSpec>,
        timing: ProtoTiming,
        serialize: bool,
    ) -> Self {
        assert!(scenario.iter().all(|s| s.id != 0), "session id 0 is reserved for solo runs");
        let fleet_config = world.initial_config();
        let mut spec_by_id = HashMap::with_capacity(scenario.len());
        for (ix, s) in scenario.iter().enumerate() {
            spec_by_id.entry(s.id).or_insert(ix);
        }
        let actor_to_agent = agents.iter().enumerate().map(|(ix, &a)| (a, ix)).collect();
        let rtt = vec![RttEstimator::new(); agents.len()];
        let last_rto = vec![0; agents.len()];
        let locks = ScopeLockManager::with_capacity(
            world.universe.len() + world.model.process_count(),
            scenario.len(),
        );
        ControlActor {
            world,
            agents,
            actor_to_agent,
            scenario,
            spec_by_id,
            timing,
            serialize,
            resilience: FleetResilience::default(),
            bus: Bus::new(),
            epoch: 0,
            agent_epochs: HashMap::new(),
            active: BTreeMap::new(),
            locks,
            breakers: Vec::new(),
            scope_breakers: HashMap::new(),
            rtt,
            last_rto,
            pending_since: HashMap::new(),
            in_timeout: false,
            gate: Vec::new(),
            waiting: HashMap::new(),
            queue_seq: 0,
            tag_owner: HashMap::new(),
            next_tag: 1,
            agent_session: HashMap::new(),
            submitted: HashSet::new(),
            plan_cache: Rc::new(RefCell::new(PlanCache::new(PLAN_CACHE_CAPACITY))),
            journal: Vec::new(),
            fleet_config,
            results: HashMap::new(),
            submitted_at: HashMap::new(),
            admitted_at: HashMap::new(),
            completed_at: HashMap::new(),
            restores: 0,
            infos: Vec::new(),
            shed_count: 0,
            rejected_count: 0,
            breaker_trips: 0,
            scope_breaker_trips: 0,
            suppressed_sends: 0,
            admissions: HashMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Emits session-tagged control-plane and protocol events onto `bus`.
    pub fn with_bus(mut self, bus: Bus) -> Self {
        self.bus = bus;
        self
    }

    /// Installs the overload-protection policy (breakers + bulkhead).
    pub fn with_resilience(mut self, r: FleetResilience) -> Self {
        self.resilience = r;
        if let Some(cfg) = r.breaker {
            self.breakers = (0..self.agents.len()).map(|_| CircuitBreaker::new(cfg)).collect();
        }
        self
    }

    /// Total open time per agent breaker up to `now`, for agents that ever
    /// tripped (dense agent index, microseconds).
    pub fn breaker_open_us(&self, now: SimTime) -> Vec<(u32, u64)> {
        self.breakers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.trips() > 0)
            .map(|(ix, b)| (ix as u32, b.open_time_us(now)))
            .collect()
    }

    /// Number of sessions currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of sessions queued for admission.
    pub fn queued_count(&self) -> usize {
        self.locks.queue_len()
    }

    /// This control plane's incarnation number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Plan-cache counters for the current incarnation (crash faults reset
    /// them along with the cache itself).
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.borrow().stats()
    }

    /// Drops every cached plan. Call whenever the world's action repertoire
    /// or invariant set is changed out from under the control plane —
    /// cached answers from the old world must not leak into the new one.
    pub fn invalidate_plan_cache(&mut self) {
        self.plan_cache.borrow_mut().invalidate();
    }

    fn spec_ix(&self, session: u64) -> Option<usize> {
        self.spec_by_id.get(&session).copied()
    }

    fn resources_of(&self, spec: &SessionSpec) -> Vec<u32> {
        if self.serialize {
            // One global token: every session conflicts with every other.
            vec![u32::MAX]
        } else {
            self.world.resources_for(&self.world.scope_comps(&spec.flips))
        }
    }

    fn emit_fleet(&self, ctx: &Context<'_, Wire<M>>, session: u64, ev: FleetEvent) {
        self.bus.emit(Event {
            at: ctx.now(),
            actor: ctx.self_id().index() as u32,
            session,
            shard: 0,
            payload: Payload::Fleet(ev),
        });
    }

    fn emit_breaker(
        &mut self,
        ctx: &Context<'_, Wire<M>>,
        session: u64,
        agent: usize,
        tr: BreakerTransition,
    ) {
        let agent = agent as u32;
        let ev = match tr {
            BreakerTransition::Opened { cooldown } => {
                self.breaker_trips += 1;
                FleetEvent::BreakerOpened { agent, cooldown_us: cooldown.as_micros() }
            }
            BreakerTransition::Probing => FleetEvent::BreakerProbed { agent },
            BreakerTransition::Closed => FleetEvent::BreakerClosed { agent },
        };
        self.emit_fleet(ctx, session, ev);
    }

    /// Records an arrival from `agent`: an RTT sample when a send was
    /// outstanding (Karn's rule — the timestamp of the first transmission),
    /// and success evidence for its breaker. Runs for every current-epoch
    /// message, including acks the owning core will discard as stale: a slow
    /// agent whose answer arrives after its session already moved on still
    /// teaches the estimator its true latency, so the *next* session on that
    /// agent gets a deadline it can meet.
    fn observe_arrival(&mut self, ctx: &Context<'_, Wire<M>>, agent: usize) {
        if let Some(t0) = self.pending_since.remove(&agent) {
            let sample = ctx.now().saturating_since(t0);
            self.rtt[agent].observe(sample);
            if self.timing.retry.mode == RetryMode::Adaptive {
                if let (Some(srtt), Some(rto)) = (self.rtt[agent].srtt(), self.rtt[agent].rto()) {
                    // Report only adaptations that moved the deadline by at
                    // least a quarter relative to the last report.
                    let (rto_us, last) = (rto.as_micros(), self.last_rto[agent]);
                    if last == 0 || rto_us.abs_diff(last).saturating_mul(4) >= last {
                        self.last_rto[agent] = rto_us;
                        self.emit_fleet(
                            ctx,
                            self.agent_session.get(&agent).copied().unwrap_or(0),
                            FleetEvent::TimeoutAdapted {
                                agent: agent as u32,
                                srtt_us: srtt.as_micros(),
                                rto_us,
                            },
                        );
                    }
                }
            }
        }
        if agent < self.breakers.len() {
            if let Some(tr) = self.breakers[agent].on_success(ctx.now()) {
                let sid = self.agent_session.get(&agent).copied().unwrap_or(0);
                self.emit_breaker(ctx, sid, agent, tr);
            }
        }
    }

    /// Feeds session `session`'s core the RTO of its slowest participant
    /// before its next event. No-op under the fixed ladder.
    fn refresh_hint(&mut self, session: u64) {
        if self.timing.retry.mode != RetryMode::Adaptive {
            return;
        }
        let Some(ix) = self.spec_ix(session) else { return };
        let hint = self
            .world
            .scope_comps(&self.scenario[ix].flips)
            .iter()
            .filter_map(|&c| self.world.agent_for(c))
            .filter_map(|a| self.rtt.get(a).and_then(RttEstimator::rto))
            .max();
        if let Some(sess) = self.active.get_mut(&session) {
            sess.core.set_timeout_hint(hint);
        }
    }

    /// FNV-1a fingerprint of `spec`'s sorted scope resources — the identity
    /// of a scope for per-scope breaker purposes. Two sessions moving the
    /// same groups share a key; disjoint scopes practically never collide.
    fn scope_key(&self, spec: &SessionSpec) -> u64 {
        let mut rs = self.resources_of(spec);
        rs.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in rs {
            for b in r.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Backpressure hint attached to a shed: observed mean service time
    /// (admission → completion over finished sessions; the protocol's base
    /// retry deadline before anything finished) scaled by how many
    /// capacity-widths of backlog stand in front of a resubmission.
    fn retry_after_hint(&self) -> u64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for (sid, done) in &self.completed_at {
            if let Some(adm) = self.admitted_at.get(sid) {
                sum += done.as_micros().saturating_sub(adm.as_micros());
                n += 1;
            }
        }
        let unit =
            sum.checked_div(n).map_or_else(|| self.timing.retry.base.as_micros(), |u| u.max(1));
        let capacity = self.resilience.bulkhead.max_in_flight.max(1) as u64;
        let backlog = (self.active.len() + self.waiting.len()) as u64;
        unit.saturating_mul(backlog / capacity + 1)
    }

    fn emit_scope_breaker(
        &mut self,
        ctx: &Context<'_, Wire<M>>,
        session: u64,
        scope: u64,
        tr: BreakerTransition,
    ) {
        let ev = match tr {
            BreakerTransition::Opened { cooldown } => {
                self.scope_breaker_trips += 1;
                FleetEvent::ScopeBreakerOpened { scope, cooldown_us: cooldown.as_micros() }
            }
            BreakerTransition::Probing => FleetEvent::ScopeBreakerProbed { scope },
            BreakerTransition::Closed => FleetEvent::ScopeBreakerClosed { scope },
        };
        self.emit_fleet(ctx, session, ev);
    }

    /// The scope agent (dense index) whose open breaker gates `spec`, if any.
    fn scope_gated(&self, now: SimTime, spec: &SessionSpec) -> Option<usize> {
        self.world
            .scope_comps(&spec.flips)
            .iter()
            .filter_map(|&c| self.world.agent_for(c))
            .find(|&a| self.breakers.get(a).is_some_and(|b| b.blocks(now)))
    }

    /// Terminates a session at its admission instant because `agent`'s
    /// breaker is open: journaled outcome, typed event, locks released —
    /// the session fails fast instead of hanging on suppressed sends.
    fn reject_gated(&mut self, ctx: &mut Context<'_, Wire<M>>, spec: &SessionSpec, agent: usize) {
        self.journal.push(SessionRecord {
            session: SessionId(spec.id),
            record: JournalRecord::Outcome { success: false, gave_up: false },
        });
        self.emit_fleet(
            ctx,
            spec.id,
            FleetEvent::SessionRejected { session: spec.id, agent: agent as u32 },
        );
        self.completed_at.insert(spec.id, ctx.now());
        self.results.insert(
            spec.id,
            Outcome {
                success: false,
                gave_up: false,
                final_config: self.fleet_config.clone(),
                steps_committed: 0,
                warnings: vec![format!("rejected: agent {agent} behind an open circuit breaker")],
            },
        );
        self.rejected_count += 1;
        self.admissions.insert(spec.id, Admission::Rejected);
        let granted = self.locks.release(spec.id);
        for g in granted {
            if let Some(gix) = self.spec_ix(g) {
                self.admit(ctx, gix);
            }
        }
    }

    /// Terminates a session at its admission instant because its *scope*
    /// breaker is open — the whole collaborative set has been flapping, so
    /// new work on it fails fast while disjoint scopes (even ones sharing
    /// an agent) keep admitting.
    fn reject_scope_gated(&mut self, ctx: &mut Context<'_, Wire<M>>, spec: &SessionSpec, key: u64) {
        self.journal.push(SessionRecord {
            session: SessionId(spec.id),
            record: JournalRecord::Outcome { success: false, gave_up: false },
        });
        self.emit_fleet(ctx, spec.id, FleetEvent::ScopeRejected { session: spec.id, scope: key });
        self.completed_at.insert(spec.id, ctx.now());
        self.results.insert(
            spec.id,
            Outcome {
                success: false,
                gave_up: false,
                final_config: self.fleet_config.clone(),
                steps_committed: 0,
                warnings: vec![format!("rejected: scope {key:#018x} behind an open breaker")],
            },
        );
        self.rejected_count += 1;
        self.admissions.insert(spec.id, Admission::Rejected);
        let granted = self.locks.release(spec.id);
        for g in granted {
            if let Some(gix) = self.spec_ix(g) {
                self.admit(ctx, gix);
            }
        }
    }

    /// Registers `session` in the waiting population (lock queue or gate).
    fn note_waiting(&mut self, session: u64, priority: u8) {
        self.queue_seq += 1;
        self.waiting.insert(session, (priority, self.queue_seq));
    }

    /// Sheds the least valuable waiter: lowest priority, oldest first. The
    /// victim's session resolves with a journaled `SessionShed` outcome —
    /// unsuccessful but not given up, exactly like a cancellation — so the
    /// durable record never shows a session that silently vanished.
    fn shed_overflow(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        let entries: Vec<(u64, u8, u64)> =
            self.waiting.iter().map(|(&sid, &(p, seq))| (sid, p, seq)).collect();
        let Some(victim) = shed_victim(&entries) else { return };
        self.waiting.remove(&victim);
        self.gate.retain(|&g| g != victim);
        let granted = self.locks.cancel(victim).unwrap_or_default();
        self.journal.push(SessionRecord {
            session: SessionId(victim),
            record: JournalRecord::Outcome { success: false, gave_up: false },
        });
        let waited_us = ctx
            .now()
            .as_micros()
            .saturating_sub(self.submitted_at.get(&victim).map_or(0, |t| t.as_micros()));
        let retry_after_us = self.retry_after_hint();
        self.emit_fleet(
            ctx,
            victim,
            FleetEvent::SessionShed { session: victim, waited_us, retry_after_us },
        );
        self.completed_at.insert(victim, ctx.now());
        self.results.insert(
            victim,
            Outcome {
                success: false,
                gave_up: false,
                final_config: self.fleet_config.clone(),
                steps_committed: 0,
                warnings: vec![format!(
                    "shed by bulkhead admission control; retry after {retry_after_us}us"
                )],
            },
        );
        self.shed_count += 1;
        self.admissions.insert(victim, Admission::Shed { retry_after_us });
        // Cancelling a lock-queue entry may unblock compatible waiters
        // behind it; they hold their scopes now, so admit them (the
        // in-flight bound is enforced at every *admission decision*, not
        // retroactively against lock grants).
        for g in granted {
            if let Some(gix) = self.spec_ix(g) {
                self.admit(ctx, gix);
            }
        }
    }

    /// Admits gated sessions while in-flight capacity is available (highest
    /// priority first, oldest among ties). A gated session whose scope turns
    /// out to be busy moves into the lock queue and stays in `waiting`.
    fn drain_gate(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        while self.active.len() < self.resilience.bulkhead.max_in_flight {
            let Some(&sid) = self.gate.iter().max_by_key(|&&sid| {
                let (p, seq) = self.waiting.get(&sid).copied().unwrap_or((0, u64::MAX));
                (p, std::cmp::Reverse(seq), std::cmp::Reverse(sid))
            }) else {
                break;
            };
            self.gate.retain(|&g| g != sid);
            let Some(ix) = self.spec_ix(sid) else {
                self.waiting.remove(&sid);
                continue;
            };
            let spec = self.scenario[ix].clone();
            if self.locks.try_acquire(sid, &self.resources_of(&spec), spec.priority) {
                self.admit(ctx, ix);
            }
            // else: now lock-queued; `waiting` entry (and its age) carries over.
        }
    }

    /// Feeds `effects` of session `session`'s core back into the world:
    /// session-stamped sends, globally tagged timers, journal appends, and
    /// completion handling (which may admit queued sessions).
    fn apply(&mut self, ctx: &mut Context<'_, Wire<M>>, session: u64, effects: Vec<ManagerEffect>) {
        // Planner queries (inside core event handling) may have touched the
        // shared plan cache; surface those interactions as fleet events.
        for note in self.plan_cache.borrow_mut().take_notes() {
            let ev = match note.kind {
                CacheNoteKind::Hit => FleetEvent::PlanCacheHit { session: note.session },
                CacheNoteKind::Miss => FleetEvent::PlanCacheMiss { session: note.session },
                CacheNoteKind::Evicted => FleetEvent::PlanCacheEvicted { session: note.session },
            };
            self.emit_fleet(ctx, note.session, ev);
        }
        let obs = match self.active.get_mut(&session) {
            Some(sess) => sess.core.drain_obs(),
            None => Vec::new(),
        };
        if self.bus.has_sinks() {
            let (at, actor) = (ctx.now(), ctx.self_id().index() as u32);
            for payload in obs {
                self.bus.emit(Event { at, actor, session, shard: 0, payload });
            }
        }
        let mut completed = None;
        for eff in effects {
            match eff {
                ManagerEffect::Send { agent, msg } => {
                    // A send emitted while handling a timeout is a
                    // retransmission: failure evidence for the breaker.
                    if self.in_timeout && agent < self.breakers.len() {
                        if let Some(tr) = self.breakers[agent].on_failure(ctx.now()) {
                            self.emit_breaker(ctx, session, agent, tr);
                        }
                    }
                    if agent < self.breakers.len() {
                        let (ok, tr) = self.breakers[agent].allow_send(ctx.now());
                        if let Some(tr) = tr {
                            self.emit_breaker(ctx, session, agent, tr);
                        }
                        if !ok {
                            // The breaker absorbs the retry; the session's
                            // own timeout ladder keeps running and journals
                            // an outcome (rollback or give-up) either way.
                            self.suppressed_sends += 1;
                            continue;
                        }
                    }
                    self.pending_since.entry(agent).or_insert_with(|| ctx.now());
                    self.agent_session.insert(agent, session);
                    ctx.send(
                        self.agents[agent],
                        Wire::Proto { epoch: self.epoch, session: SessionId(session), msg },
                    );
                }
                ManagerEffect::SetTimer { token, after } => {
                    let tag = self.next_tag;
                    self.next_tag += 1;
                    let id = ctx.set_timer(after, tag);
                    self.tag_owner.insert(tag, (session, token));
                    if let Some(sess) = self.active.get_mut(&session) {
                        sess.timers.insert(token, (tag, id));
                    }
                }
                ManagerEffect::CancelTimer { token } => {
                    if let Some(sess) = self.active.get_mut(&session) {
                        if let Some((tag, id)) = sess.timers.remove(&token) {
                            self.tag_owner.remove(&tag);
                            ctx.cancel_timer(id);
                        }
                    }
                }
                ManagerEffect::Complete(outcome) => completed = Some(outcome),
                ManagerEffect::Journal(rec) => {
                    self.journal.push(SessionRecord { session: SessionId(session), record: rec });
                }
                ManagerEffect::Info(s) => self.infos.push(format!("session#{session}: {s}")),
            }
        }
        if let Some(outcome) = completed {
            self.finish(ctx, session, outcome);
        }
    }

    /// Submits scenario entry `ix`: computes the scope, and either admits
    /// the session immediately or queues it behind the conflicting holders.
    fn submit(&mut self, ctx: &mut Context<'_, Wire<M>>, ix: usize) {
        let spec = self.scenario[ix].clone();
        if !self.submitted.insert(spec.id) {
            return; // restart re-armed a timer for an already submitted entry
        }
        self.submitted_at.entry(spec.id).or_insert(ctx.now());
        let resources = self.resources_of(&spec);
        self.emit_fleet(
            ctx,
            spec.id,
            FleetEvent::SessionSubmitted { session: spec.id, resources: resources.len() as u32 },
        );
        // Bulkhead: a full control plane parks the newcomer at the admission
        // gate without even trying its scope; the scope-lock path below only
        // runs while in-flight capacity exists.
        if self.active.len() >= self.resilience.bulkhead.max_in_flight {
            self.park(ctx, ix, &spec);
            return;
        }
        if self.locks.try_acquire(spec.id, &resources, spec.priority) {
            self.admit(ctx, ix);
        } else {
            // The lock manager auto-enqueued the session on conflict.
            self.note_waiting(spec.id, spec.priority);
            let position = self.locks.position(spec.id).unwrap_or(0) as u32;
            // Journal the queueing decision so a crashed control plane
            // requeues this session (in order) even though no core exists
            // for it yet. Source/target here are provisional — admission
            // recomputes them against the then-current fleet configuration.
            let target = self.world.target_for(&self.fleet_config, &spec.flips);
            self.journal.push(SessionRecord {
                session: SessionId(spec.id),
                record: JournalRecord::Queued { source: self.fleet_config.clone(), target },
            });
            self.emit_fleet(ctx, spec.id, FleetEvent::SessionQueued { session: spec.id, position });
            if let Some(at) = spec.cancel_at {
                let now = ctx.now().as_micros();
                let delay = at.as_micros().saturating_sub(now);
                ctx.set_timer(SimDuration::from_micros(delay), TAG_CANCEL_BASE + ix as u64);
            }
            if self.waiting.len() > self.resilience.bulkhead.max_queued {
                self.shed_overflow(ctx);
            }
        }
    }

    /// Parks a session at the admission gate (in-flight cap reached),
    /// shedding the least valuable waiter when the waiting room overflows.
    /// Gate parks journal the same `Queued` record as lock-queue entries so
    /// a crashed plane requeues them in order.
    fn park(&mut self, ctx: &mut Context<'_, Wire<M>>, ix: usize, spec: &SessionSpec) {
        self.note_waiting(spec.id, spec.priority);
        self.gate.push(spec.id);
        let target = self.world.target_for(&self.fleet_config, &spec.flips);
        self.journal.push(SessionRecord {
            session: SessionId(spec.id),
            record: JournalRecord::Queued { source: self.fleet_config.clone(), target },
        });
        let position = (self.waiting.len() - 1) as u32;
        self.emit_fleet(ctx, spec.id, FleetEvent::SessionQueued { session: spec.id, position });
        if let Some(at) = spec.cancel_at {
            let delay = at.as_micros().saturating_sub(ctx.now().as_micros());
            ctx.set_timer(SimDuration::from_micros(delay), TAG_CANCEL_BASE + ix as u64);
        }
        if self.waiting.len() > self.resilience.bulkhead.max_queued {
            self.shed_overflow(ctx);
        }
    }

    /// Admits a session whose scope locks are held: builds its scoped
    /// planner and embedded core, and fires the adaptation request.
    fn admit(&mut self, ctx: &mut Context<'_, Wire<M>>, ix: usize) {
        let spec = self.scenario[ix].clone();
        self.waiting.remove(&spec.id);
        self.gate.retain(|&g| g != spec.id);
        // Fail fast behind an open breaker: an admitted session whose scope
        // includes a gated agent would only hang on suppressed sends while
        // holding its locks, convoying every scope it shares a lock with.
        if let Some(agent) = self.scope_gated(ctx.now(), &spec) {
            self.reject_gated(ctx, &spec, agent);
            return;
        }
        // Per-scope breaker: admission doubles as the half-open probe — one
        // session is let through after the cooldown and its outcome decides
        // whether the scope's breaker closes or re-opens with a doubled
        // cooldown.
        if self.resilience.scope_breaker.is_some() {
            let key = self.scope_key(&spec);
            let now = ctx.now();
            if let Some((ok, tr)) = self.scope_breakers.get_mut(&key).map(|b| b.allow_send(now)) {
                if let Some(tr) = tr {
                    self.emit_scope_breaker(ctx, spec.id, key, tr);
                }
                if !ok {
                    self.reject_scope_gated(ctx, &spec, key);
                    return;
                }
            }
        }
        self.admissions.insert(spec.id, Admission::Admitted);
        let source = self.fleet_config.clone();
        let target = self.world.target_for(&source, &spec.flips);
        let scope = self.world.scope_comps(&spec.flips);
        let planner = ScopedLazyPlanner::new(Rc::clone(&self.world), &scope)
            .with_cache(Rc::clone(&self.plan_cache), spec.id);
        let core = ManagerCore::new(self.timing, Box::new(planner));
        self.active.insert(spec.id, ActiveSession { core, timers: HashMap::new() });
        self.admitted_at.insert(spec.id, ctx.now());
        let queued_for = ctx
            .now()
            .as_micros()
            .saturating_sub(self.submitted_at.get(&spec.id).map_or(0, |t| t.as_micros()));
        self.emit_fleet(ctx, spec.id, FleetEvent::SessionAdmitted { session: spec.id, queued_for });
        self.refresh_hint(spec.id);
        let eff = self
            .active
            .get_mut(&spec.id)
            .expect("just inserted")
            .core
            .on_event(ManagerEvent::Request { source, target });
        self.apply(ctx, spec.id, eff);
    }

    /// Completion: fold the session's final configuration into the fleet
    /// configuration, release its scope, and admit whoever that unblocks.
    fn finish(&mut self, ctx: &mut Context<'_, Wire<M>>, session: u64, outcome: Outcome) {
        if let Some(ix) = self.spec_ix(session) {
            let flips = self.scenario[ix].flips.clone();
            for comp in self.world.scope_comps(&flips) {
                if outcome.final_config.contains(comp) {
                    self.fleet_config.insert(comp);
                } else {
                    self.fleet_config.remove(comp);
                }
            }
            // Scope-breaker evidence: an unsuccessful protocol outcome
            // (give-up or rollback) marks the whole scope as flapping; a
            // success heals it. Breakers materialize only on first failure,
            // so healthy scopes never populate the map.
            if let Some(cfg) = self.resilience.scope_breaker {
                let spec = self.scenario[ix].clone();
                let key = self.scope_key(&spec);
                let now = ctx.now();
                let tr = if outcome.success {
                    self.scope_breakers.get_mut(&key).and_then(|b| b.on_success(now))
                } else {
                    self.scope_breakers
                        .entry(key)
                        .or_insert_with(|| CircuitBreaker::new(cfg))
                        .on_failure(now)
                };
                if let Some(tr) = tr {
                    self.emit_scope_breaker(ctx, session, key, tr);
                }
            }
        }
        self.completed_at.insert(session, ctx.now());
        self.emit_fleet(
            ctx,
            session,
            FleetEvent::SessionDone { session, success: outcome.success, gave_up: outcome.gave_up },
        );
        self.results.insert(session, outcome);
        if let Some(sess) = self.active.remove(&session) {
            for (tag, id) in sess.timers.values() {
                self.tag_owner.remove(tag);
                ctx.cancel_timer(*id);
            }
        }
        self.agent_session.retain(|_, s| *s != session);
        let granted = self.locks.release(session);
        for sid in granted {
            if let Some(ix) = self.spec_ix(sid) {
                self.admit(ctx, ix);
            }
        }
        // Freed in-flight capacity: pull gated sessions in.
        self.drain_gate(ctx);
    }

    /// Withdraws a still-queued session (cancellation timer fired).
    fn cancel_queued(&mut self, ctx: &mut Context<'_, Wire<M>>, ix: usize) {
        let sid = self.scenario[ix].id;
        if self.active.contains_key(&sid) || self.results.contains_key(&sid) {
            return; // admitted or finished in the meantime — too late
        }
        let granted = if self.gate.contains(&sid) {
            // Gate-parked sessions never entered the lock structures.
            self.gate.retain(|&g| g != sid);
            Vec::new()
        } else {
            match self.locks.cancel(sid) {
                Some(g) => g,
                None => return,
            }
        };
        self.waiting.remove(&sid);
        // A withdrawn request resolves unsuccessfully but *not* given up:
        // nothing is awaiting the user, the requester simply left.
        self.journal.push(SessionRecord {
            session: SessionId(sid),
            record: JournalRecord::Outcome { success: false, gave_up: false },
        });
        self.emit_fleet(ctx, sid, FleetEvent::SessionCancelled { session: sid });
        self.completed_at.insert(sid, ctx.now());
        self.results.insert(
            sid,
            Outcome {
                success: false,
                gave_up: false,
                final_config: self.fleet_config.clone(),
                steps_committed: 0,
                warnings: vec!["cancelled while queued".into()],
            },
        );
        for g in granted {
            if let Some(gix) = self.spec_ix(g) {
                self.admit(ctx, gix);
            }
        }
    }

    /// Routes an incoming protocol message to the owning session's core.
    fn route(
        &mut self,
        ctx: &mut Context<'_, Wire<M>>,
        agent: usize,
        session: SessionId,
        msg: sada_proto::ProtoMsg,
    ) {
        // Trust the echoed stamp when it names a live session; otherwise
        // fall back to the engagement map (rejoins after a completed
        // session still carry the old stamp).
        let sid = if session.0 != 0 && self.active.contains_key(&session.0) {
            session.0
        } else {
            match self.agent_session.get(&agent) {
                Some(&s) if self.active.contains_key(&s) => s,
                _ => return, // nobody is engaging this agent — stale traffic
            }
        };
        self.refresh_hint(sid);
        let eff = self
            .active
            .get_mut(&sid)
            .expect("sid checked active")
            .core
            .on_event(ManagerEvent::AgentMsg { agent, msg });
        self.apply(ctx, sid, eff);
    }

    // ---- hooks for the sharded runtime (crate-internal) ----
    //
    // The shard wrappers drive admission decisions that originate outside
    // this actor's own timers: lock-escalation grants arriving over the
    // cross-shard fabric, and straddling sessions whose submission the
    // global tier schedules itself.

    /// Direct access to the scope-lock table, so a region can hold slices
    /// of globally escalated scopes under foreign (non-scenario) ids.
    pub(crate) fn locks_mut(&mut self) -> &mut ScopeLockManager {
        &mut self.locks
    }

    /// Sessions currently holding lock-table entries — the quiescence
    /// residue the shard report surfaces (must be zero after a clean run).
    pub(crate) fn lock_holder_count(&self) -> usize {
        self.locks.holders().len()
    }

    /// Submits scenario entry for session `sid` now (no-op for unknown or
    /// already-submitted ids).
    pub(crate) fn submit_session(&mut self, ctx: &mut Context<'_, Wire<M>>, sid: u64) {
        if let Some(ix) = self.spec_ix(sid) {
            self.submit(ctx, ix);
        }
    }

    /// Admits session `sid` whose scope locks were granted out-of-band
    /// (lock-release cascade driven by a foreign hold being released).
    pub(crate) fn admit_granted(&mut self, ctx: &mut Context<'_, Wire<M>>, sid: u64) {
        if let Some(ix) = self.spec_ix(sid) {
            self.admit(ctx, ix);
        }
    }

    /// Folds one externally adapted component value into the durable fleet
    /// configuration (a globally run session finished and its final scope
    /// values flow back to the owning region).
    pub(crate) fn fold_comp(&mut self, comp: sada_expr::CompId, present: bool) {
        if present {
            self.fleet_config.insert(comp);
        } else {
            self.fleet_config.remove(comp);
        }
    }

    /// Whether session `sid` has reached a terminal result.
    pub(crate) fn is_done(&self, sid: u64) -> bool {
        self.results.contains_key(&sid)
    }

    /// Concludes a never-admitted session with a journaled rejection — the
    /// global tier's terminal verdict when its fabric retransmission ladder
    /// exhausts against an unreachable region. Idempotent: a session that
    /// already holds a result is left untouched.
    pub(crate) fn conclude_rejected(
        &mut self,
        ctx: &mut Context<'_, Wire<M>>,
        sid: u64,
        warning: String,
    ) {
        if self.results.contains_key(&sid) {
            return;
        }
        self.journal.push(SessionRecord {
            session: SessionId(sid),
            record: JournalRecord::Outcome { success: false, gave_up: false },
        });
        self.emit_fleet(
            ctx,
            sid,
            FleetEvent::SessionDone { session: sid, success: false, gave_up: false },
        );
        self.completed_at.insert(sid, ctx.now());
        self.results.insert(
            sid,
            Outcome {
                success: false,
                gave_up: false,
                final_config: self.fleet_config.clone(),
                steps_committed: 0,
                warnings: vec![warning],
            },
        );
    }
}

impl<M: Clone + 'static> Actor<Wire<M>> for ControlActor<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        for (ix, spec) in self.scenario.iter().enumerate() {
            ctx.set_timer(spec.submit_at, TAG_SUBMIT_BASE + ix as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Wire<M>>, from: ActorId, msg: Wire<M>) {
        if let Wire::Proto { epoch, session, msg: p } = msg {
            let Some(&agent) = self.actor_to_agent.get(&from) else {
                return;
            };
            let seen = self.agent_epochs.entry(from).or_insert(0);
            if epoch < *seen {
                return; // pre-crash residue from an old agent incarnation
            }
            *seen = epoch;
            self.observe_arrival(ctx, agent);
            self.route(ctx, agent, session, p);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<M>>, tag: u64) {
        if tag >= TAG_CANCEL_BASE {
            self.cancel_queued(ctx, (tag - TAG_CANCEL_BASE) as usize);
            return;
        }
        if tag >= TAG_SUBMIT_BASE {
            self.submit(ctx, (tag - TAG_SUBMIT_BASE) as usize);
            return;
        }
        if let Some((session, token)) = self.tag_owner.remove(&tag) {
            if self.active.contains_key(&session) {
                self.refresh_hint(session);
                let sess = self.active.get_mut(&session).expect("checked");
                sess.timers.remove(&token);
                let eff = sess.core.on_event(ManagerEvent::Timeout { token });
                self.in_timeout = true;
                self.apply(ctx, session, eff);
                self.in_timeout = false;
            }
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        // The volatile process image dies; the journal, results, and fleet
        // configuration stand in for durable storage and survive.
        self.active.clear();
        self.locks = ScopeLockManager::with_capacity(
            self.world.universe.len() + self.world.model.process_count(),
            self.scenario.len(),
        );
        self.tag_owner.clear();
        self.next_tag = 1;
        self.agent_epochs.clear();
        self.agent_session.clear();
        self.submitted.clear();
        // Breakers, estimators, and the waiting bookkeeping are process
        // state too: the restored plane re-learns the network and rebuilds
        // its queues from the journal.
        self.pending_since.clear();
        self.gate.clear();
        self.waiting.clear();
        for e in &mut self.rtt {
            *e = RttEstimator::new();
        }
        self.last_rto.iter_mut().for_each(|r| *r = 0);
        if let Some(cfg) = self.resilience.breaker {
            self.breakers = (0..self.agents.len()).map(|_| CircuitBreaker::new(cfg)).collect();
        }
        self.scope_breakers.clear();
        // The plan cache dies with the process: the restored incarnation
        // starts cold, so journal replay never leans on pre-crash plans.
        self.plan_cache = Rc::new(RefCell::new(PlanCache::new(PLAN_CACHE_CAPACITY)));
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        self.epoch += 1;
        self.restores += 1;
        // Partition the interleaved journal by session, preserving the
        // order in which sessions first appear (the requeue order).
        let mut order: Vec<u64> = Vec::new();
        let mut per: HashMap<u64, Vec<JournalRecord>> = HashMap::new();
        for rec in &self.journal {
            let sid = rec.session.0;
            per.entry(sid)
                .or_insert_with(|| {
                    order.push(sid);
                    Vec::new()
                })
                .push(rec.record.clone());
        }
        let is_done = |recs: &[JournalRecord]| {
            recs.iter().any(|r| matches!(r, JournalRecord::Outcome { .. }))
        };
        let has_request = |recs: &[JournalRecord]| {
            recs.iter().any(|r| matches!(r, JournalRecord::Request { .. }))
        };
        // Pass 1: restore in-flight sessions and re-seize their scopes
        // (guaranteed compatible — they held them when the plane died).
        let mut restore_effects: Vec<(u64, Vec<ManagerEffect>)> = Vec::new();
        for &sid in &order {
            let recs = &per[&sid];
            self.submitted.insert(sid);
            if is_done(recs) || !has_request(recs) {
                continue;
            }
            let Some(ix) = self.spec_ix(sid) else { continue };
            let spec = self.scenario[ix].clone();
            // Strip the control-plane queueing prefix: the embedded core
            // never saw those records (it journals from Request onward).
            let body: Vec<JournalRecord> = recs
                .iter()
                .filter(|r| !matches!(r, JournalRecord::Queued { .. }))
                .cloned()
                .collect();
            let scope = self.world.scope_comps(&spec.flips);
            // The restored planner reattaches to the (fresh, cold) cache:
            // replay re-plans from scratch, then later sessions of this
            // incarnation may share the recomputed entries.
            let planner = ScopedLazyPlanner::new(Rc::clone(&self.world), &scope)
                .with_cache(Rc::clone(&self.plan_cache), sid);
            let (core, eff) = ManagerCore::restore(self.timing, Box::new(planner), &body)
                .unwrap_or_else(|e| panic!("control-plane journal replay failed: {e}"));
            let seized = self.locks.try_acquire(sid, &self.resources_of(&spec), spec.priority);
            assert!(seized, "in-flight scopes are disjoint and must re-acquire");
            self.active.insert(sid, ActiveSession { core, timers: HashMap::new() });
            restore_effects.push((sid, eff));
        }
        // Pass 2: requeue sessions that were waiting when the plane died,
        // in journal order; some may now be admissible.
        let mut to_admit: Vec<usize> = Vec::new();
        for &sid in &order {
            let recs = &per[&sid];
            if is_done(recs) || has_request(recs) {
                continue;
            }
            let Some(ix) = self.spec_ix(sid) else { continue };
            let spec = self.scenario[ix].clone();
            // Bulkhead capacity is honoured across the restart boundary: once
            // the restored in-flight set fills it, the remainder re-parks at
            // the admission gate rather than seizing scopes it can't run.
            let admissible = self.active.len() + to_admit.len()
                < self.resilience.bulkhead.max_in_flight
                && self.locks.try_acquire(sid, &self.resources_of(&spec), spec.priority);
            if admissible {
                to_admit.push(ix);
            } else {
                if self.active.len() + to_admit.len() >= self.resilience.bulkhead.max_in_flight {
                    self.gate.push(sid);
                }
                self.note_waiting(sid, spec.priority);
                if let Some(at) = spec.cancel_at {
                    let delay = at.as_micros().saturating_sub(ctx.now().as_micros());
                    ctx.set_timer(SimDuration::from_micros(delay), TAG_CANCEL_BASE + ix as u64);
                }
            }
        }
        self.emit_fleet(
            ctx,
            0,
            FleetEvent::ControlRestored {
                active: self.active.len() as u32,
                queued: self.locks.queue_len() as u32,
            },
        );
        for (sid, eff) in restore_effects {
            self.apply(ctx, sid, eff);
        }
        for ix in to_admit {
            self.admit(ctx, ix);
        }
        // Re-arm scenario entries whose submission timer died unfired.
        let now = ctx.now().as_micros();
        let pending: Vec<(usize, u64)> = self
            .scenario
            .iter()
            .enumerate()
            .filter(|(_, s)| !self.submitted.contains(&s.id))
            .map(|(ix, s)| (ix, s.submit_at.as_micros()))
            .collect();
        for (ix, due) in pending {
            if due > now {
                ctx.set_timer(SimDuration::from_micros(due - now), TAG_SUBMIT_BASE + ix as u64);
            } else {
                self.submit(ctx, ix);
            }
        }
    }
}
