//! # sada-fleet — the adaptation control plane
//!
//! The DSN 2004 protocol crates drive **one** adaptation at a time: a
//! manager, its agents, one plan, one journal. Real fleets adapt many
//! component groups continuously, so this crate adds the missing layer — a
//! control plane that admits *concurrent* adaptation sessions safely:
//!
//! * [`FleetWorld`] — a parameterized world of independent component
//!   clusters, each its own collaborative set (paper Section 7), hosted
//!   across agent processes so steps run real barriers. Compiled from a
//!   declarative [`WorldSpec`] — the paper's video clone, the serverless
//!   codec fleet, and the IaaS-migration domain (with an energy-cost
//!   [`Objective`]) are all instances of the same shape.
//! * [`ScopeLockManager`] — atomic all-or-nothing scope locks with
//!   priority/FIFO queueing: deadlock-free by construction (no
//!   hold-and-wait), starvation-free via shadow-set grant scans.
//! * [`ScopedLazyPlanner`] — per-session lazy planning restricted to the
//!   session's collaborative-set scope; deterministic, so post-crash
//!   journal replay re-derives identical plans.
//! * [`PlanCache`] — a fleet-wide LRU of scope-*normalized* planning
//!   instances: sessions over disjoint-but-isomorphic scopes share plans
//!   (relabeled onto local component ids), with hit/miss/evict counters on
//!   the event bus. Volatile by design — a restored control plane starts
//!   cold, keeping cached answers subordinate to the durable journal.
//! * [`ControlActor`] — the control plane itself: one embedded
//!   [`ManagerCore`](sada_proto::ManagerCore) per admitted session,
//!   multiplexed over a shared wire by [`SessionId`](sada_proto::SessionId)
//!   stamps, with a session-tagged write-ahead journal that restores every
//!   in-flight *and* queued session after a crash.
//! * [`run_fleet`] — the scenario driver: hundreds of agent groups in
//!   simnet, fault schedules, and a [`FleetReport`] with per-session
//!   latencies, peak concurrency, and the captured event stream.
//! * [`FleetResilience`] — overload protection for the control plane:
//!   per-agent circuit breakers, bulkhead admission bounds with
//!   deterministic shedding, and fail-fast rejection of sessions scoped
//!   behind an open breaker.
//! * [`run_overload`] — the sustained-overload experiment: Poisson
//!   arrivals at multiples of the calibrated capacity
//!   ([`measure_capacity`]) against a degraded fleet, comparing the
//!   always-admit baseline with the protected configuration.
//! * [`run_fleet_sharded`] — the control plane sharded across OS threads:
//!   per-region simulators with their own control actors, a thin global
//!   tier for scope-straddling sessions, and a deterministic cross-shard
//!   fabric (conservative virtual clocks), so thread count never changes
//!   results.

mod arena;
mod cache;
mod control;
mod driver;
mod lock;
mod overload;
mod planner;
mod shard;
mod world;

pub use arena::AgentArena;
pub use cache::{CacheNote, CacheNoteKind, CachedPlan, PlanCache, PlanCacheStats, ScopeNormalizer};
pub use control::{Admission, ControlActor, FleetResilience, SessionSpec};
pub use driver::{disjoint_wave, run_fleet, FleetReport, FleetScenario, SessionResult};
pub use lock::ScopeLockManager;
pub use overload::{measure_capacity, run_overload, OverloadConfig, OverloadReport};
pub use planner::ScopedLazyPlanner;
pub use shard::{
    encode_fabric_msg, fingerprint_events, fingerprint_events_unsharded, parse_fabric_msg,
    run_fleet_sharded, FabricFaultPlan, FabricPayload, FabricStats, ShardReport, ShardScenario,
    ShardStats, DEFAULT_REGIONS,
};
pub use world::{ActionSpec, ClusterSpec, CompSpec, Domain, FleetWorld, Objective, WorldSpec};
