//! Fleet scenario driver: builds a simulated fleet (2 agents per group),
//! runs the control plane over it, and distills a [`FleetReport`] from the
//! durable state plus the session-tagged event stream.

use std::cell::RefCell;
use std::rc::Rc;

use crate::arena::AgentArena;
use sada_obs::{Bus, Event, Payload, RingSink};
use sada_proto::{encode_session_journal, AgentTiming, ProtoTiming, Wire};
use sada_simnet::{ActorId, FaultPlan, LinkConfig, NetStats, SimDuration, SimTime, Simulator};

use crate::cache::PlanCacheStats;
use crate::control::{Admission, ControlActor, FleetResilience, SessionSpec};
use crate::world::{Domain, FleetWorld, WorldSpec};

/// A fleet-scale experiment: the world size, the session workload, and the
/// fault schedule for the control plane itself.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// Number of flip units — component groups in the video world, clusters
    /// in generated worlds (`world_spec.clusters.len()` when a spec is set).
    pub groups: usize,
    /// The adaptation requests to submit.
    pub sessions: Vec<SessionSpec>,
    /// Serial baseline: map every session onto one shared lock resource so
    /// nothing runs concurrently (benchmarks compare against this).
    pub serialize: bool,
    /// Simulation seed.
    pub seed: u64,
    /// Network latency on every link.
    pub link_latency: SimDuration,
    /// Virtual-time budget for the whole run.
    pub time_budget: SimDuration,
    /// Crash/restart instants for the control plane, if any.
    pub crash_control: Option<(SimTime, SimTime)>,
    /// Protocol timing for every session core (retry policy included).
    pub timing: ProtoTiming,
    /// Overload-protection configuration for the control plane.
    pub resilience: FleetResilience,
    /// Degraded agents: `(agent index, slowdown factor)` — every phase of
    /// that agent's work (reset, drain, act, resume, rollback) is stretched
    /// by the factor, modelling a saturated or GC-thrashing process.
    pub slow_agents: Vec<(usize, u32)>,
    /// Arbitrary simnet fault schedule (crash loops, delay bursts, drops)
    /// applied on top of `crash_control`.
    pub faults: FaultPlan,
    /// Declarative world to run instead of the hard-coded video clone.
    /// `None` keeps the classic `FleetWorld::build(groups)` video world.
    pub world_spec: Option<WorldSpec>,
    /// Render the write-ahead journal(s) to text in the report. On by
    /// default; the scale benchmarks turn it off because the text form is
    /// O(sessions × components) — hundreds of megabytes at 100k groups —
    /// while the durable journal itself (and therefore crash recovery,
    /// events, and fingerprints) is unaffected either way.
    pub render_journal: bool,
}

impl FleetScenario {
    /// A scenario with library defaults: 1 ms links, a 30 s budget, seed
    /// 42, scope-parallel admission, and no control-plane faults.
    pub fn new(groups: usize, sessions: Vec<SessionSpec>) -> Self {
        FleetScenario {
            groups,
            sessions,
            serialize: false,
            seed: 42,
            link_latency: SimDuration::from_millis(1),
            time_budget: SimDuration::from_secs(30),
            crash_control: None,
            timing: ProtoTiming::default(),
            resilience: FleetResilience::default(),
            slow_agents: Vec::new(),
            faults: FaultPlan::new(),
            world_spec: None,
            render_journal: true,
        }
    }

    /// A scenario over a generated [`WorldSpec`] (library defaults
    /// otherwise); `groups` is derived from the spec's cluster count.
    pub fn with_world(spec: WorldSpec, sessions: Vec<SessionSpec>) -> Self {
        let groups = spec.clusters.len();
        let mut scn = FleetScenario::new(groups, sessions);
        scn.world_spec = Some(spec);
        scn
    }

    /// Compiles the scenario's world: the declared spec when present, the
    /// classic video clone otherwise.
    pub fn build_world(&self) -> FleetWorld {
        match &self.world_spec {
            Some(spec) => {
                assert_eq!(spec.clusters.len(), self.groups, "groups must match the spec");
                FleetWorld::from_spec(spec.clone())
            }
            None => FleetWorld::build(self.groups),
        }
    }
}

/// A wave of sessions over pairwise-disjoint group ranges: session `i`
/// (id `i+1`) flips groups `[i*span, (i+1)*span)` forward, all submitted at
/// `t=0` with equal priority — the canonical "everything can run at once"
/// workload.
pub fn disjoint_wave(sessions: usize, span: usize) -> Vec<SessionSpec> {
    (0..sessions)
        .map(|i| SessionSpec {
            id: i as u64 + 1,
            flips: (i * span..(i + 1) * span).map(|g| (g, true)).collect(),
            priority: 0,
            submit_at: SimDuration::ZERO,
            cancel_at: None,
        })
        .collect()
}

/// Per-session outcome distilled from the control plane's durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// Session id.
    pub id: u64,
    /// When the request was submitted (virtual μs), if it was.
    pub submitted_at: Option<u64>,
    /// When the session was admitted (virtual μs), if it was.
    pub admitted_at: Option<u64>,
    /// When the session finished or was cancelled (virtual μs).
    pub completed_at: Option<u64>,
    /// Protocol outcome: the adaptation committed.
    pub success: bool,
    /// Terminal give-up (Section 4.4 ladder exhausted).
    pub gave_up: bool,
    /// Withdrawn while still queued.
    pub cancelled: bool,
    /// Dropped by bulkhead admission control under overload.
    pub shed: bool,
    /// Typed admission decision the submitter got back, with the bulkhead's
    /// retry-after hint on sheds. `None` when no decision was reached
    /// (never submitted, still waiting at budget end, or withdrawn first).
    pub admission: Option<Admission>,
}

impl SessionResult {
    /// End-to-end latency (submission → completion) in virtual μs.
    pub fn latency_us(&self) -> Option<u64> {
        Some(self.completed_at?.saturating_sub(self.submitted_at?))
    }
}

/// Everything a fleet run produced.
pub struct FleetReport {
    /// Per-session results, ascending by session id.
    pub results: Vec<SessionResult>,
    /// The fleet configuration after all completions, as a bit string.
    pub final_config: String,
    /// The session-tagged event stream (control plane + protocol + agents).
    pub events: Vec<Event>,
    /// The control plane's write-ahead journal, in text form.
    pub journal_text: String,
    /// Times the control plane was rebuilt from its journal.
    pub restores: u64,
    /// Peak number of simultaneously *admitted* sessions.
    pub max_concurrent: usize,
    /// First submission → last completion, in virtual μs.
    pub makespan_us: u64,
    /// Network counters for the run.
    pub stats: NetStats,
    /// Plan-cache counters for the final control-plane incarnation (crash
    /// faults reset the volatile cache along with its counters).
    pub cache: PlanCacheStats,
    /// Sessions shed by bulkhead admission control.
    pub shed: u64,
    /// Sessions rejected at admission behind an open circuit breaker.
    pub rejected: u64,
    /// Circuit-breaker trips (Closed/HalfOpen → Open transitions).
    pub breaker_trips: u64,
    /// Per-scope breaker trips (a flapping collaborative set, not an agent).
    pub scope_breaker_trips: u64,
    /// Protocol sends suppressed by open breakers.
    pub suppressed_sends: u64,
    /// Cumulative open time per tripped agent, `(agent, μs)`.
    pub breaker_open_us: Vec<(u32, u64)>,
}

impl FleetReport {
    /// The result row for session `id`.
    pub fn session(&self, id: u64) -> Option<&SessionResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Sessions that committed their adaptation.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.success).count()
    }
}

/// Runs `scenario` to completion (or budget exhaustion) and reports.
pub fn run_fleet(scenario: &FleetScenario) -> FleetReport {
    let world = Rc::new(scenario.build_world());
    let mut sim: Simulator<Wire<()>> = Simulator::new(scenario.seed);
    sim.set_default_link(LinkConfig::reliable(scenario.link_latency));

    let bus = Bus::new();
    let ring = Rc::new(RefCell::new(RingSink::new(1 << 18)));
    bus.attach(&ring);

    // Agents first so their ids are dense [0, processes); the control plane
    // takes the next slot, mirroring the solo ManagerActor layout.
    let procs = world.model.process_count();
    let control_id = ActorId::from_index(procs);
    emit_domain_tag(&bus, &world, control_id);
    let mut agents = Vec::with_capacity(procs);
    let mut arena = AgentArena::with_capacity(control_id, bus.clone(), procs);
    for p in 0..procs {
        let timing = match scenario.slow_agents.iter().find(|&&(ix, _)| ix == p) {
            Some(&(_, factor)) => scale_timing(AgentTiming::default(), factor),
            None => AgentTiming::default(),
        };
        arena.push_member(timing);
    }
    let arena_id = sim.add_arena(arena);
    for p in 0..procs {
        agents.push(sim.add_arena_member(&format!("agent-{p}"), arena_id, p as u32));
    }
    let control = ControlActor::<()>::new(
        Rc::clone(&world),
        agents,
        scenario.sessions.clone(),
        scenario.timing,
        scenario.serialize,
    )
    .with_resilience(scenario.resilience)
    .with_bus(bus.clone());
    let got = sim.add_actor("control", control);
    assert_eq!(got, control_id, "control plane must sit after the agents");

    if let Some((crash, restart)) = scenario.crash_control {
        sim.crash_at(control_id, crash);
        sim.restart_at(control_id, restart);
    }
    sim.schedule_faults(&scenario.faults);

    sim.run_for(scenario.time_budget);
    let now = sim.now();

    let control =
        sim.actor::<ControlActor<()>>(control_id).expect("control plane present after the run");

    let mut ids: Vec<u64> = scenario.sessions.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    let results: Vec<SessionResult> = ids
        .iter()
        .map(|&id| {
            let outcome = control.results.get(&id);
            SessionResult {
                id,
                submitted_at: control.submitted_at.get(&id).map(|t| t.as_micros()),
                admitted_at: control.admitted_at.get(&id).map(|t| t.as_micros()),
                completed_at: control.completed_at.get(&id).map(|t| t.as_micros()),
                success: outcome.is_some_and(|o| o.success),
                gave_up: outcome.is_some_and(|o| o.gave_up),
                cancelled: outcome
                    .is_some_and(|o| o.warnings.iter().any(|w| w.contains("cancelled"))),
                shed: outcome.is_some_and(|o| o.warnings.iter().any(|w| w.contains("shed"))),
                admission: control.admissions.get(&id).copied(),
            }
        })
        .collect();

    let events = ring.borrow().events();
    FleetReport {
        results,
        final_config: control.fleet_config.to_bit_string(),
        events,
        journal_text: if scenario.render_journal {
            encode_session_journal(&control.journal)
        } else {
            String::new()
        },
        restores: control.restores,
        max_concurrent: max_concurrent(
            control
                .admitted_at
                .iter()
                .map(|(id, at)| {
                    (at.as_micros(), control.completed_at.get(id).map(|t| t.as_micros()))
                })
                .collect(),
        ),
        makespan_us: makespan(control),
        stats: sim.stats(),
        cache: control.cache_stats(),
        shed: control.shed_count,
        rejected: control.rejected_count,
        breaker_trips: control.breaker_trips,
        scope_breaker_trips: control.scope_breaker_trips,
        suppressed_sends: control.suppressed_sends,
        breaker_open_us: control.breaker_open_us(now),
    }
}

/// Tags the event stream with the world's domain and objective. Video
/// worlds stay silent so every pre-existing stream (and its fingerprint)
/// is byte-identical; generated domains announce themselves once per
/// control plane, before any session activity.
pub(crate) fn emit_domain_tag(bus: &Bus, world: &FleetWorld, control_id: ActorId) {
    if world.domain() == Domain::Video {
        return;
    }
    bus.emit(Event {
        at: SimTime::ZERO,
        actor: control_id.index() as u32,
        session: 0,
        shard: 0,
        payload: Payload::Fleet(sada_obs::FleetEvent::DomainTagged {
            domain: world.domain().tag(),
            objective: world.objective().tag(),
        }),
    });
}

/// Stretches every phase of an agent's work by `factor`.
pub(crate) fn scale_timing(t: AgentTiming, factor: u32) -> AgentTiming {
    let scale = |d: SimDuration| SimDuration::from_micros(d.as_micros() * u64::from(factor));
    AgentTiming {
        safe_delay: scale(t.safe_delay),
        drain_extra: scale(t.drain_extra),
        act_delay: scale(t.act_delay),
        resume_delay: scale(t.resume_delay),
        rollback_delay: scale(t.rollback_delay),
    }
}

/// Peak overlap of `[admitted, completed)` intervals; an interval without a
/// completion extends to the end. A completion at instant `t` does not
/// overlap an admission at `t`.
pub(crate) fn max_concurrent(intervals: Vec<(u64, Option<u64>)>) -> usize {
    let mut edges: Vec<(u64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for (start, end) in intervals {
        edges.push((start, 1));
        edges.push((end.unwrap_or(u64::MAX), -1));
    }
    // Sort by time, completions (-1) before admissions (+1) on ties.
    edges.sort_unstable();
    let (mut cur, mut peak) = (0i32, 0i32);
    for (_, d) in edges {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

fn makespan<M: Clone + 'static>(control: &ControlActor<M>) -> u64 {
    let first = control.submitted_at.values().map(|t| t.as_micros()).min();
    let last = control.completed_at.values().map(|t| t.as_micros()).max();
    match (first, last) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_concurrent_counts_overlap_not_touch() {
        // [0,10) and [10,20) touch but never overlap; [5,15) overlaps both.
        assert_eq!(max_concurrent(vec![(0, Some(10)), (10, Some(20))]), 1);
        assert_eq!(max_concurrent(vec![(0, Some(10)), (10, Some(20)), (5, Some(15))]), 2);
        assert_eq!(max_concurrent(vec![(0, None), (1, None), (2, Some(3))]), 3);
        assert_eq!(max_concurrent(vec![]), 0);
    }

    #[test]
    fn two_disjoint_sessions_complete_and_overlap() {
        let scenario = FleetScenario::new(4, disjoint_wave(2, 2));
        let report = run_fleet(&scenario);
        assert_eq!(report.succeeded(), 2, "results: {:?}", report.results);
        assert_eq!(report.max_concurrent, 2, "disjoint scopes run side by side");
        assert_eq!(report.restores, 0);
        // All four groups moved to New (bit strings print MSB first, so
        // each group reads `10`: New set, Old clear).
        assert_eq!(report.final_config, "10101010");
        // The two sessions pose isomorphic planning problems: the first
        // fills the shared cache, the second is answered from it.
        assert_eq!((report.cache.hits, report.cache.misses), (1, 1), "{:?}", report.cache);
        let cache_events = report
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.payload,
                    sada_obs::Payload::Fleet(
                        sada_obs::FleetEvent::PlanCacheHit { .. }
                            | sada_obs::FleetEvent::PlanCacheMiss { .. }
                    )
                )
            })
            .count();
        assert_eq!(cache_events, 2, "hit and miss both reach the event stream");
    }

    #[test]
    fn serialize_mode_never_overlaps() {
        let mut scenario = FleetScenario::new(4, disjoint_wave(2, 2));
        scenario.serialize = true;
        let report = run_fleet(&scenario);
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.max_concurrent, 1, "serial baseline admits one at a time");
        assert_eq!(report.final_config, "10101010");
    }

    #[test]
    fn overlapping_sessions_queue_and_compose() {
        // Session 1 flips group 0 forward; session 2 (overlapping scope)
        // flips it back. Admission order must serialize them and the second
        // must see the first's result as its source.
        let sessions = vec![
            SessionSpec {
                id: 1,
                flips: vec![(0, true)],
                priority: 0,
                submit_at: SimDuration::ZERO,
                cancel_at: None,
            },
            SessionSpec {
                id: 2,
                flips: vec![(0, false)],
                priority: 0,
                submit_at: SimDuration::from_millis(1),
                cancel_at: None,
            },
        ];
        let report = run_fleet(&FleetScenario::new(1, sessions));
        assert_eq!(report.succeeded(), 2, "results: {:?}", report.results);
        assert_eq!(report.max_concurrent, 1);
        let s1 = report.session(1).unwrap();
        let s2 = report.session(2).unwrap();
        assert!(s1.completed_at.unwrap() <= s2.admitted_at.unwrap(), "2 waits for 1");
        assert_eq!(report.final_config, "01", "flip forward then back restores Old");
    }

    #[test]
    fn queued_session_cancellation_resolves_it() {
        let sessions = vec![
            SessionSpec {
                id: 1,
                flips: vec![(0, true)],
                priority: 0,
                submit_at: SimDuration::ZERO,
                cancel_at: None,
            },
            SessionSpec {
                id: 2,
                flips: vec![(0, false)],
                priority: 0,
                submit_at: SimDuration::from_millis(1),
                // The first session needs tens of virtual ms; cancel early.
                cancel_at: Some(SimDuration::from_millis(3)),
            },
        ];
        let report = run_fleet(&FleetScenario::new(1, sessions));
        let s2 = report.session(2).unwrap();
        assert!(s2.cancelled && !s2.success, "results: {:?}", report.results);
        assert!(report.session(1).unwrap().success);
        assert_eq!(report.final_config, "10", "only session 1 took effect");
    }
}
