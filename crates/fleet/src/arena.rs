//! Struct-of-arrays agent arena: every scripted agent in a fleet run packed
//! into parallel flat vectors behind one boxed [`ArenaActor`].
//!
//! [`AgentArena`] is a member-indexed transliteration of
//! [`ScriptedAgent`](sada_proto::ScriptedAgent): the same
//! [`AgentCore`] state machine, the same timer tags, the same send and
//! bus-emission order, so a fleet driven through the arena produces
//! bit-for-bit the journals and event streams the per-box agents produced.
//! What changes is memory layout and registration cost — a 100k-group fleet
//! holds its per-agent state in a handful of contiguous allocations instead
//! of 100k separately boxed actors, and the simulator dispatches into one
//! vtable for all of them.
//!
//! The arena deliberately omits the two `ScriptedAgent` knobs fleet drivers
//! never set (`fail_to_reset`, custom reannounce policies); protocol-level
//! failure tests keep using the solo agent.

use sada_obs::{AgentStateTag, Bus, Event, Payload, ProtoEvent, SimTime};
use sada_plan::ActionId;
use sada_proto::{
    agent_state_tag, AgentCore, AgentEffect, AgentEvent, AgentState, AgentTiming, LocalAction,
    ProtoMsg, ReannouncePolicy, SessionId, Wire, TAG_ACT, TAG_REJOIN, TAG_RESUME, TAG_ROLLBACK,
    TAG_SAFE,
};
use sada_simnet::{ActorId, ArenaActor, Context};

/// All scripted agents of one fleet run, stored as parallel vectors and
/// addressed by dense member index (`member == process index` in the fleet
/// drivers). Behaviourally identical to a `ScriptedAgent` per process.
pub struct AgentArena {
    manager: ActorId,
    bus: Bus,
    reannounce: ReannouncePolicy,
    timings: Vec<AgentTiming>,
    cores: Vec<AgentCore>,
    epochs: Vec<u64>,
    manager_epochs: Vec<u64>,
    sessions: Vec<SessionId>,
    rejoin_budgets: Vec<u32>,
    pending_actions: Vec<Option<LocalAction>>,
    pending_rollbacks: Vec<Option<LocalAction>>,
    applied: Vec<Vec<(ActionId, bool)>>,
    crashes: Vec<u64>,
    rejoins_sent: Vec<u64>,
}

impl AgentArena {
    /// An empty arena whose members report to `manager` and emit protocol
    /// transitions onto `bus`.
    pub fn new(manager: ActorId, bus: Bus) -> Self {
        AgentArena::with_capacity(manager, bus, 0)
    }

    /// Like [`AgentArena::new`] with every parallel vector pre-sized for
    /// `members` agents.
    pub fn with_capacity(manager: ActorId, bus: Bus, members: usize) -> Self {
        AgentArena {
            manager,
            bus,
            reannounce: ReannouncePolicy::default(),
            timings: Vec::with_capacity(members),
            cores: Vec::with_capacity(members),
            epochs: Vec::with_capacity(members),
            manager_epochs: Vec::with_capacity(members),
            sessions: Vec::with_capacity(members),
            rejoin_budgets: Vec::with_capacity(members),
            pending_actions: Vec::with_capacity(members),
            pending_rollbacks: Vec::with_capacity(members),
            applied: Vec::with_capacity(members),
            crashes: Vec::with_capacity(members),
            rejoins_sent: Vec::with_capacity(members),
        }
    }

    /// Appends one agent with its operation timings; returns its member
    /// index (dense, starting at 0).
    pub fn push_member(&mut self, timing: AgentTiming) -> u32 {
        let member = self.timings.len() as u32;
        self.timings.push(timing);
        self.cores.push(AgentCore::new());
        self.epochs.push(0);
        self.manager_epochs.push(0);
        self.sessions.push(SessionId::SOLO);
        self.rejoin_budgets.push(0);
        self.pending_actions.push(None);
        self.pending_rollbacks.push(None);
        self.applied.push(Vec::new());
        self.crashes.push(0);
        self.rejoins_sent.push(0);
        member
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.timings.len()
    }

    /// True when no member has been pushed.
    pub fn is_empty(&self) -> bool {
        self.timings.is_empty()
    }

    /// Forward/rollback structural changes `member` actually applied.
    pub fn applied(&self, member: u32) -> &[(ActionId, bool)] {
        &self.applied[member as usize]
    }

    /// Crashes `member` suffered.
    pub fn crashes(&self, member: u32) -> u64 {
        self.crashes[member as usize]
    }

    /// `Rejoin` announcements `member` put on the wire.
    pub fn rejoins_sent(&self, member: u32) -> u64 {
        self.rejoins_sent[member as usize]
    }

    /// `member`'s state machine (for assertions).
    pub fn core(&self, member: u32) -> &AgentCore {
        &self.cores[member as usize]
    }

    fn send_rejoin<M: Clone + 'static>(&mut self, m: usize, ctx: &mut Context<'_, Wire<M>>) {
        self.rejoins_sent[m] += 1;
        ctx.send(
            self.manager,
            Wire::Proto {
                epoch: self.epochs[m],
                session: self.sessions[m],
                msg: ProtoMsg::Rejoin { last_completed: self.cores[m].last_completed() },
            },
        );
        ctx.set_timer(self.reannounce.period, TAG_REJOIN);
    }

    fn apply<M: Clone + 'static>(
        &mut self,
        m: usize,
        ctx: &mut Context<'_, Wire<M>>,
        effects: Vec<AgentEffect>,
    ) {
        let obs = self.cores[m].drain_obs();
        if self.bus.has_sinks() {
            let (at, actor) = (ctx.now(), ctx.self_id().index() as u32);
            for payload in obs {
                self.bus.emit(Event { at, actor, session: self.sessions[m].0, shard: 0, payload });
            }
        }
        for eff in effects {
            match eff {
                AgentEffect::Send(msg) => ctx.send(
                    self.manager,
                    Wire::Proto { epoch: self.epochs[m], session: self.sessions[m], msg },
                ),
                AgentEffect::PreAction(_) => {}
                AgentEffect::BeginReset(la) => {
                    let delay = if la.needs_global_drain {
                        self.timings[m].safe_delay + self.timings[m].drain_extra
                    } else {
                        self.timings[m].safe_delay
                    };
                    ctx.set_timer(delay, TAG_SAFE);
                }
                AgentEffect::DoInAction(la) => {
                    self.pending_actions[m] = Some(la);
                    ctx.set_timer(self.timings[m].act_delay, TAG_ACT);
                }
                AgentEffect::DoResume => {
                    ctx.set_timer(self.timings[m].resume_delay, TAG_RESUME);
                }
                AgentEffect::PostAction(_) => {}
                AgentEffect::DoRollback(la) => {
                    self.pending_rollbacks[m] = la;
                    ctx.set_timer(self.timings[m].rollback_delay, TAG_ROLLBACK);
                }
            }
        }
    }
}

impl<M: Clone + 'static> ArenaActor<Wire<M>> for AgentArena {
    fn on_message(
        &mut self,
        member: u32,
        ctx: &mut Context<'_, Wire<M>>,
        _from: ActorId,
        msg: Wire<M>,
    ) {
        let m = member as usize;
        if let Wire::Proto { epoch, session, msg: p } = msg {
            if epoch < self.manager_epochs[m] {
                return; // residue from a previous manager incarnation
            }
            self.manager_epochs[m] = epoch;
            self.sessions[m] = session;
            let eff = self.cores[m].on_event(AgentEvent::Msg(p));
            self.apply(m, ctx, eff);
            if self.cores[m].state() != AgentState::Running {
                // Re-engaged: the rejoin announcement has served its purpose.
                self.rejoin_budgets[m] = 0;
            }
        }
    }

    fn on_timer(&mut self, member: u32, ctx: &mut Context<'_, Wire<M>>, tag: u64) {
        let m = member as usize;
        if tag == TAG_REJOIN {
            if self.rejoin_budgets[m] > 0 && self.cores[m].state() == AgentState::Running {
                self.rejoin_budgets[m] -= 1;
                self.send_rejoin(m, ctx);
            }
            return;
        }
        let ev = match tag {
            TAG_SAFE => AgentEvent::SafeReached,
            TAG_ACT => {
                if let Some(la) = self.pending_actions[m].take() {
                    self.applied[m].push((la.action, true));
                }
                AgentEvent::InActionDone
            }
            TAG_RESUME => AgentEvent::ResumeFinished,
            TAG_ROLLBACK => {
                if let Some(la) = self.pending_rollbacks[m].take() {
                    self.applied[m].push((la.action, false));
                }
                AgentEvent::RollbackFinished
            }
            _ => return,
        };
        let eff = self.cores[m].on_event(ev);
        self.apply(m, ctx, eff);
    }

    fn on_crash(&mut self, member: u32, _now: SimTime) {
        let m = member as usize;
        self.crashes[m] += 1;
        // Volatile-uncommitted model: an applied-but-uncommitted structural
        // change evaporates with the process image.
        if let Some(la) = self.cores[m].uncommitted_action() {
            self.applied[m].push((la.action, false));
        }
        self.pending_actions[m] = None;
        self.pending_rollbacks[m] = None;
    }

    fn on_restart(&mut self, member: u32, ctx: &mut Context<'_, Wire<M>>) {
        let m = member as usize;
        self.epochs[m] += 1;
        let prev = self.cores[m].state();
        self.cores[m] = AgentCore::restore(self.cores[m].last_completed());
        if prev != AgentState::Running {
            self.bus.scoped(self.sessions[m].0).publish(
                ctx.now(),
                ctx.self_id().index() as u32,
                || {
                    Payload::Proto(ProtoEvent::AgentState {
                        from: agent_state_tag(prev),
                        to: AgentStateTag::Running,
                        step: None,
                    })
                },
            );
        }
        self.rejoin_budgets[m] = self.reannounce.budget;
        self.send_rejoin(m, ctx);
    }
}
