//! Scope-restricted lazy planning for control-plane sessions.
//!
//! Each admitted session plans over *its scope only*: the action repertoire
//! is filtered to actions whose touched components all lie inside the
//! session's collaborative sets, and paths are found with the partial-
//! exploration planner ([`sada_plan::lazy`]) — no eager SAG over the whole
//! fleet's `2^n` configuration space is ever built. The compiled
//! [`Search`](sada_plan::Search) (kernel invariant checks, interned arena,
//! action index) is built **once per world** and shared by every session;
//! admission only gathers the scope's action indices through the search's
//! inverted touch index and builds a scope-sized normalizer, so admitting a
//! session costs O(scope), not O(world).
//!
//! Because the planner is a pure function of the world and the scope, a
//! restored control plane can rebuild it per session and replay journals
//! deterministically
//! ([`ManagerCore::restore`](sada_proto::ManagerCore::restore) re-derives
//! `PathSelected` records by re-querying the planner). The optional
//! fleet-wide [`PlanCache`] preserves that determinism: cached answers are
//! exactly the paths a fresh search would return (see [`crate::cache`]), so
//! replay cannot distinguish a hit from a recomputation.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use sada_expr::{CompId, Config};
use sada_plan::{Action, Path, PathStep};
use sada_proto::{AdaptationPlanner, LocalAction, PlannedStep};

use crate::cache::{CachedPlan, PlanCache, ScopeNormalizer};
use crate::world::FleetWorld;

/// An [`AdaptationPlanner`] over the implicit SAG of one session's scope.
pub struct ScopedLazyPlanner {
    world: Rc<FleetWorld>,
    /// Ascending world-action indices whose touched set lies inside the
    /// scope — the session's repertoire, as positions into the world's
    /// shared compiled search.
    scoped_ixs: Vec<u32>,
    /// Relabels this scope onto cache-key coordinates; `None` when an
    /// invariant straddles the scope boundary (cache disabled).
    normalizer: Option<ScopeNormalizer>,
    /// The shared fleet cache and this session's id, when attached.
    cache: Option<(Rc<RefCell<PlanCache>>, u64)>,
}

impl ScopedLazyPlanner {
    /// A planner restricted to `scope` (a union of collaborative sets, as
    /// produced by [`FleetWorld::scope_comps`]).
    pub fn new(world: Rc<FleetWorld>, scope: &[CompId]) -> Self {
        let mut sorted: Vec<CompId> = scope.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let scoped_ixs = world.search.scoped_action_ixs(&sorted);
        let normalizer = ScopeNormalizer::from_compiled(
            &world.inv,
            world.search.compiled(),
            &sorted,
            scoped_ixs.iter().map(|&ix| &world.actions[ix as usize]),
        );
        ScopedLazyPlanner { world, scoped_ixs, normalizer, cache: None }
    }

    /// Attaches the fleet-wide plan cache on behalf of session `session`.
    pub fn with_cache(mut self, cache: Rc<RefCell<PlanCache>>, session: u64) -> Self {
        self.cache = Some((cache, session));
        self
    }

    /// Number of actions that survived the scope filter.
    pub fn action_count(&self) -> usize {
        self.scoped_ixs.len()
    }

    /// The scoped action at position `ix` of the session's repertoire.
    fn scoped_action(&self, ix: usize) -> Option<&Action> {
        self.scoped_ixs.get(ix).map(|&w| &self.world.actions[w as usize])
    }

    /// Whether queries can be served through the fleet cache (a cache is
    /// attached and the scope's invariants normalize cleanly).
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some() && self.normalizer.is_some()
    }

    /// Replays a memoized plan from this session's own source. Returns
    /// `None` if any step fails to apply or the walk misses the target —
    /// the caller then treats the entry as a miss and plans from scratch.
    fn denormalize(&self, cached: &CachedPlan, from: &Config, to: &Config) -> Option<Path> {
        let mut cur = from.clone();
        let mut steps = Vec::with_capacity(cached.action_ixs.len());
        for &ix in &cached.action_ixs {
            let action = self.scoped_action(ix as usize)?;
            if !action.applicable(&cur) {
                return None;
            }
            let next = action.apply(&cur);
            steps.push(PathStep {
                from: cur,
                to: next.clone(),
                action: action.id(),
                cost: action.cost(),
            });
            cur = next;
        }
        (cur == *to).then_some(Path { steps, cost: cached.cost })
    }

    /// Encodes a freshly computed path as scoped-action indices.
    fn normalize(&self, path: &Path) -> Option<CachedPlan> {
        let ixs: Option<Vec<u32>> = path
            .steps
            .iter()
            .map(|s| {
                self.scoped_ixs
                    .iter()
                    .position(|&w| self.world.actions[w as usize].id() == s.action)
                    .map(|i| i as u32)
            })
            .collect();
        Some(CachedPlan { action_ixs: ixs?, cost: path.cost })
    }

    /// Answers one query through the cache. The outer `None` means the
    /// cache could not speak for this query (none attached, the scope does
    /// not normalize, or an endpoint is unsafe outside the scope); the
    /// inner option is the definitive answer.
    fn plan_via_cache(&self, from: &Config, to: &Config) -> Option<Option<Path>> {
        let (cache, session) = self.cache.as_ref()?;
        let nz = self.normalizer.as_ref()?;
        // The key captures in-scope state only, so out-of-scope safety must
        // be established before the cache may speak for this query.
        if !self.world.search.is_safe(from) || !self.world.search.is_safe(to) {
            return None;
        }
        let key = nz.key(from, to);
        if let Some(entry) = cache.borrow_mut().lookup(&key, *session) {
            match entry {
                None => return Some(None),
                Some(plan) => {
                    if let Some(path) = self.denormalize(&plan, from, to) {
                        return Some(Some(path));
                    }
                    // Unreachable by the isomorphism argument, but never
                    // trust a plan that fails to replay: recompute below.
                }
            }
        }
        let (path, _) = self.world.search.plan_scoped(from, to, &self.scoped_ixs);
        match &path {
            None => cache.borrow_mut().insert(key, None, *session),
            Some(p) => {
                if let Some(plan) = self.normalize(p) {
                    cache.borrow_mut().insert(key, Some(plan), *session);
                }
            }
        }
        Some(path)
    }

    fn locals_for(&self, action: &Action) -> Vec<(usize, LocalAction)> {
        let mut per_agent: BTreeMap<usize, (Vec<CompId>, Vec<CompId>)> = BTreeMap::new();
        for &comp in action.removes() {
            let p = self.world.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.world.agent_of_process[p.0 as usize]).or_default().0.push(comp);
        }
        for &comp in action.adds() {
            let p = self.world.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.world.agent_of_process[p.0 as usize]).or_default().1.push(comp);
        }
        per_agent
            .into_iter()
            .map(|(agent, (removes, adds))| {
                (
                    agent,
                    LocalAction { action: action.id(), removes, adds, needs_global_drain: false },
                )
            })
            .collect()
    }
}

impl AdaptationPlanner for ScopedLazyPlanner {
    /// At most one candidate: the lazy minimum adaptation path. Uniform-cost
    /// search is deterministic, so repeated queries (and post-crash replay)
    /// return the identical ranking — through the cache or not. The failure
    /// ladder's "second path" rung simply falls through to
    /// return-to-source under this planner.
    fn paths(&mut self, from: &Config, to: &Config, _k: usize) -> Vec<Path> {
        match self.plan_via_cache(from, to) {
            Some(answer) => answer.into_iter().collect(),
            None => {
                self.world.search.plan_scoped(from, to, &self.scoped_ixs).0.into_iter().collect()
            }
        }
    }

    fn compile(&mut self, path: &Path) -> Vec<PlannedStep> {
        path.steps
            .iter()
            .map(|s| {
                let action = &self.world.actions[s.action.index()];
                PlannedStep {
                    action: s.action,
                    from: s.from.clone(),
                    to: s.to.clone(),
                    cost: s.cost,
                    locals: self.locals_for(action),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_filter_keeps_only_in_scope_actions() {
        let w = Rc::new(FleetWorld::build(4));
        let scope = w.scope_comps(&[(1, true), (3, true)]);
        let p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        assert_eq!(p.action_count(), 4, "fwd+back for two groups");
    }

    #[test]
    fn plans_one_step_per_flipped_group_with_two_participants() {
        let w = Rc::new(FleetWorld::build(3));
        let scope = w.scope_comps(&[(0, true), (2, true)]);
        let mut p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(0, true), (2, true)]);
        let paths = p.paths(&src, &dst, 4);
        assert_eq!(paths.len(), 1, "lazy planner offers exactly the MAP");
        let steps = p.compile(&paths[0]);
        assert_eq!(steps.len(), 2);
        for step in &steps {
            assert_eq!(step.locals.len(), 2, "Old and New live on different processes");
        }
        // Participants are the flipped groups' hosts, and nobody else's.
        let agents: Vec<usize> =
            steps.iter().flat_map(|s| s.locals.iter().map(|(a, _)| *a)).collect();
        assert!(agents.iter().all(|&a| [0, 1, 4, 5].contains(&a)), "agents {agents:?}");
    }

    #[test]
    fn ranking_is_deterministic_across_incarnations() {
        let w = Rc::new(FleetWorld::build(2));
        let scope = w.scope_comps(&[(0, true)]);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(0, true)]);
        let mut a = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let mut b = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        assert_eq!(a.paths(&src, &dst, 8), b.paths(&src, &dst, 8));
        assert_eq!(a.paths(&src, &dst, 8), a.paths(&src, &dst, 8));
    }

    #[test]
    fn out_of_scope_endpoints_have_no_path() {
        // Asking a group-0 planner to move group 1 finds nothing: the
        // actions that could do it were filtered out.
        let w = Rc::new(FleetWorld::build(2));
        let scope = w.scope_comps(&[(0, true)]);
        let mut p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(1, true)]);
        assert!(p.paths(&src, &dst, 4).is_empty());
    }

    #[test]
    fn isomorphic_sessions_share_cache_entries() {
        let w = Rc::new(FleetWorld::build(4));
        let cache = Rc::new(RefCell::new(PlanCache::new(16)));
        let src = w.initial_config();

        let scope1 = w.scope_comps(&[(0, true), (1, true)]);
        let mut p1 =
            ScopedLazyPlanner::new(Rc::clone(&w), &scope1).with_cache(Rc::clone(&cache), 1);
        assert!(p1.cache_enabled());
        let dst1 = w.target_for(&src, &[(0, true), (1, true)]);
        let paths1 = p1.paths(&src, &dst1, 4);
        assert_eq!(paths1.len(), 1);

        // Session 2 moves *different* groups the same way: a cache hit.
        let scope2 = w.scope_comps(&[(2, true), (3, true)]);
        let mut cached =
            ScopedLazyPlanner::new(Rc::clone(&w), &scope2).with_cache(Rc::clone(&cache), 2);
        let mut fresh = ScopedLazyPlanner::new(Rc::clone(&w), &scope2);
        let dst2 = w.target_for(&src, &[(2, true), (3, true)]);
        let got = cached.paths(&src, &dst2, 4);
        assert_eq!(got, fresh.paths(&src, &dst2, 4), "cached answer == fresh answer");
        assert!(got[0].is_well_formed());

        let stats = cache.borrow().stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn negative_answers_are_cached_too() {
        let w = Rc::new(FleetWorld::build(2));
        let cache = Rc::new(RefCell::new(PlanCache::new(16)));
        let scope = w.scope_comps(&[(0, true)]);
        let mut p = ScopedLazyPlanner::new(Rc::clone(&w), &scope).with_cache(Rc::clone(&cache), 1);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(1, true)]); // out of scope: no path
        assert!(p.paths(&src, &dst, 4).is_empty());
        assert!(p.paths(&src, &dst, 4).is_empty(), "second ask hits the negative entry");
        let stats = cache.borrow().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
