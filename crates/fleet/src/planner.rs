//! Scope-restricted lazy planning for control-plane sessions.
//!
//! Each admitted session plans over *its scope only*: the action repertoire
//! is filtered to actions whose touched components all lie inside the
//! session's collaborative sets, and paths are found with the partial-
//! exploration planner ([`sada_plan::lazy`]) — no eager SAG over the whole
//! fleet's `2^n` configuration space is ever built. Because the planner is
//! a pure function of the world and the scope, a restored control plane can
//! rebuild it per session and replay journals deterministically
//! ([`ManagerCore::restore`](sada_proto::ManagerCore::restore) re-derives
//! `PathSelected` records by re-querying the planner).

use std::collections::BTreeMap;
use std::rc::Rc;

use sada_expr::{CompId, Config};
use sada_plan::{lazy, Action, Path};
use sada_proto::{AdaptationPlanner, LocalAction, PlannedStep};

use crate::world::FleetWorld;

/// An [`AdaptationPlanner`] over the implicit SAG of one session's scope.
pub struct ScopedLazyPlanner {
    world: Rc<FleetWorld>,
    /// Actions whose touched sets lie entirely inside the scope.
    scoped: Vec<Action>,
}

impl ScopedLazyPlanner {
    /// A planner restricted to `scope` (a union of collaborative sets, as
    /// produced by [`FleetWorld::scope_comps`]).
    pub fn new(world: Rc<FleetWorld>, scope: &[CompId]) -> Self {
        let mut in_scope = world.universe.empty_config();
        for &c in scope {
            in_scope.insert(c);
        }
        let scoped =
            world.actions.iter().filter(|a| a.touched().is_subset(&in_scope)).cloned().collect();
        ScopedLazyPlanner { world, scoped }
    }

    /// Number of actions that survived the scope filter.
    pub fn action_count(&self) -> usize {
        self.scoped.len()
    }

    fn locals_for(&self, action: &Action) -> Vec<(usize, LocalAction)> {
        let mut per_agent: BTreeMap<usize, (Vec<CompId>, Vec<CompId>)> = BTreeMap::new();
        for comp in action.removes().iter() {
            let p = self.world.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.world.agent_of_process[p.0 as usize]).or_default().0.push(comp);
        }
        for comp in action.adds().iter() {
            let p = self.world.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.world.agent_of_process[p.0 as usize]).or_default().1.push(comp);
        }
        per_agent
            .into_iter()
            .map(|(agent, (removes, adds))| {
                (
                    agent,
                    LocalAction { action: action.id(), removes, adds, needs_global_drain: false },
                )
            })
            .collect()
    }
}

impl AdaptationPlanner for ScopedLazyPlanner {
    /// At most one candidate: the lazy minimum adaptation path. Uniform-cost
    /// search is deterministic, so repeated queries (and post-crash replay)
    /// return the identical ranking. The failure ladder's "second path" rung
    /// simply falls through to return-to-source under this planner.
    fn paths(&mut self, from: &Config, to: &Config, _k: usize) -> Vec<Path> {
        lazy::plan(&self.world.inv, &self.scoped, from, to).into_iter().collect()
    }

    fn compile(&mut self, path: &Path) -> Vec<PlannedStep> {
        path.steps
            .iter()
            .map(|s| {
                let action = &self.world.actions[s.action.index()];
                PlannedStep {
                    action: s.action,
                    from: s.from.clone(),
                    to: s.to.clone(),
                    cost: s.cost,
                    locals: self.locals_for(action),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_filter_keeps_only_in_scope_actions() {
        let w = Rc::new(FleetWorld::build(4));
        let scope = w.scope_comps(&[(1, true), (3, true)]);
        let p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        assert_eq!(p.action_count(), 4, "fwd+back for two groups");
    }

    #[test]
    fn plans_one_step_per_flipped_group_with_two_participants() {
        let w = Rc::new(FleetWorld::build(3));
        let scope = w.scope_comps(&[(0, true), (2, true)]);
        let mut p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(0, true), (2, true)]);
        let paths = p.paths(&src, &dst, 4);
        assert_eq!(paths.len(), 1, "lazy planner offers exactly the MAP");
        let steps = p.compile(&paths[0]);
        assert_eq!(steps.len(), 2);
        for step in &steps {
            assert_eq!(step.locals.len(), 2, "Old and New live on different processes");
        }
        // Participants are the flipped groups' hosts, and nobody else's.
        let agents: Vec<usize> =
            steps.iter().flat_map(|s| s.locals.iter().map(|(a, _)| *a)).collect();
        assert!(agents.iter().all(|&a| [0, 1, 4, 5].contains(&a)), "agents {agents:?}");
    }

    #[test]
    fn ranking_is_deterministic_across_incarnations() {
        let w = Rc::new(FleetWorld::build(2));
        let scope = w.scope_comps(&[(0, true)]);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(0, true)]);
        let mut a = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let mut b = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        assert_eq!(a.paths(&src, &dst, 8), b.paths(&src, &dst, 8));
        assert_eq!(a.paths(&src, &dst, 8), a.paths(&src, &dst, 8));
    }

    #[test]
    fn out_of_scope_endpoints_have_no_path() {
        // Asking a group-0 planner to move group 1 finds nothing: the
        // actions that could do it were filtered out.
        let w = Rc::new(FleetWorld::build(2));
        let scope = w.scope_comps(&[(0, true)]);
        let mut p = ScopedLazyPlanner::new(Rc::clone(&w), &scope);
        let src = w.initial_config();
        let dst = w.target_for(&src, &[(1, true)]);
        assert!(p.paths(&src, &dst, 4).is_empty());
    }
}
