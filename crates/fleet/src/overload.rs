//! Sustained-overload workload: Poisson arrivals at a multiple of measured
//! capacity, over a fleet with a degraded (slow) group and a flapping
//! agent.
//!
//! The experiment the overload bench runs is the classic metastable-failure
//! setup. First [`measure_capacity`] calibrates how many sessions per
//! second a *healthy* fleet commits. Then [`run_overload`] offers arrivals
//! at `load ×` that rate for a fixed window while one group runs orders of
//! magnitude slow and one agent crash-loops. Two configurations face the
//! same workload:
//!
//! * **baseline** — the historical fixed retry ladder, admit-everything
//!   (no bulkhead, no breakers). Sessions spanning the slow group camp on
//!   their scope locks for whole ladder runs, convoying every healthy
//!   scope they share a session with, and the waiting population grows
//!   without bound.
//! * **protected** — RTT-adaptive timeouts, per-agent circuit breakers,
//!   and a bounded bulkhead. Excess load is shed deterministically, scopes
//!   behind an open breaker fail fast at admission, and healthy groups
//!   keep committing at their calibrated rate.
//!
//! Everything is a pure function of the seed: identical seeds reproduce
//! identical event streams (asserted via [`OverloadReport::fingerprint`]).

use sada_obs::encode_event_into;
use sada_proto::{ProtoTiming, RetryPolicy};
use sada_resilience::{jitter_us, BreakerConfig, BulkheadConfig};
use sada_simnet::{FaultPlan, SimDuration, SimTime};

use crate::control::{Admission, FleetResilience, SessionSpec};
use crate::driver::{disjoint_wave, run_fleet, FleetReport, FleetScenario};

/// Tuning for one sustained-overload run.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Component groups in the fleet (two agents each).
    pub groups: usize,
    /// Arrival-rate multiplier over the measured healthy capacity.
    pub load: u32,
    /// Offered-load window: arrivals occur in `[0, window)`.
    pub window: SimDuration,
    /// Seed for arrivals, scopes, priorities, and the simulation itself.
    pub seed: u64,
    /// Group whose two agents run `factor×` slow, if any.
    pub slow_group: Option<(usize, u32)>,
    /// Agent to crash-loop (down for `1/4` of every period), if any.
    pub flaky_agent: Option<usize>,
    /// Crash-loop period for the flaky agent.
    pub flap_period: SimDuration,
    /// Overload protection for the control plane (breakers + bulkhead).
    pub resilience: FleetResilience,
    /// RTT-adaptive retransmission deadlines instead of the fixed ladder.
    pub adaptive: bool,
    /// Virtual-time budget: window plus drain time for admitted work.
    pub time_budget: SimDuration,
}

impl OverloadConfig {
    /// The canonical degraded fleet at `load×` capacity: the last group
    /// 400× slow (its reset alone outlasts the whole fixed retry ladder),
    /// group 0's first agent crash-looping, arrivals over a 1 s window.
    /// The two failure modes are deliberately on different groups: the slow
    /// group exercises adaptive timeouts and shedding, the flapping agent
    /// exercises breaker trips and fail-fast rejection.
    pub fn degraded(groups: usize, load: u32, seed: u64) -> Self {
        OverloadConfig {
            groups,
            load,
            window: SimDuration::from_secs(1),
            seed,
            slow_group: Some((groups - 1, 400)),
            flaky_agent: Some(0),
            flap_period: SimDuration::from_millis(1_200),
            resilience: FleetResilience::default(),
            adaptive: false,
            time_budget: SimDuration::from_secs(30),
        }
    }

    /// The protected variant: adaptive timeouts, breakers, and a bulkhead
    /// sized to the fleet (in-flight = groups, queue = 2×groups). The
    /// breaker threshold equals the protocol's retransmission budget: one
    /// full ladder burned against a silent agent is trip evidence (a
    /// session never produces more — the fourth timeout aborts it).
    pub fn protected(groups: usize, load: u32, seed: u64) -> Self {
        OverloadConfig {
            resilience: FleetResilience {
                breaker: Some(BreakerConfig { failure_threshold: 3, ..BreakerConfig::default() }),
                scope_breaker: None,
                bulkhead: BulkheadConfig { max_in_flight: groups, max_queued: 2 * groups },
            },
            adaptive: true,
            ..OverloadConfig::degraded(groups, load, seed)
        }
    }
}

/// What one overload run produced.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Healthy calibration: committed group adaptations per second.
    pub capacity_per_sec: f64,
    /// Arrivals offered during the window.
    pub offered: usize,
    /// Sessions that committed their adaptation.
    pub succeeded: usize,
    /// Group adaptations committed (a span-2 session counts twice: the
    /// unit of useful work is one component group flipped).
    pub committed_flips: usize,
    /// Sessions shed by the bulkhead.
    pub shed: u64,
    /// Sessions rejected at admission behind an open breaker.
    pub rejected: u64,
    /// Breaker trips across the run.
    pub breaker_trips: u64,
    /// Wire sends suppressed by open breakers.
    pub suppressed_sends: u64,
    /// Committed group adaptations per second of offered-load window
    /// (completions during drain count; nothing is credited for shed work).
    pub goodput_per_sec: f64,
    /// Median admission wait, μs (censored at termination for sessions
    /// that were shed, rejected, or never admitted).
    pub p50_admission_us: u64,
    /// 99th-percentile admission wait, μs (same censoring).
    pub p99_admission_us: u64,
    /// First submission → last completion, μs.
    pub makespan_us: u64,
    /// FNV-1a hash of the full encoded event stream: equal seeds must
    /// produce equal fingerprints.
    pub fingerprint: u64,
    /// The typed admission verdict per session, ascending by id — the
    /// journaled [`Admission`] outcome rather than the warning strings.
    pub admissions: Vec<(u64, Admission)>,
}

impl OverloadReport {
    /// The `retry_after_us` hints handed to shed sessions, in session order.
    pub fn shed_retry_hints(&self) -> Vec<u64> {
        self.admissions
            .iter()
            .filter_map(|&(_, a)| match a {
                Admission::Shed { retry_after_us } => Some(retry_after_us),
                _ => None,
            })
            .collect()
    }
}

/// Commits-per-second of a healthy fleet: every group adapts once, all in
/// parallel, no faults, no degradation. This is the yardstick overload
/// goodput is judged against.
pub fn measure_capacity(groups: usize, seed: u64) -> f64 {
    let mut scenario = FleetScenario::new(groups, disjoint_wave(groups, 1));
    scenario.seed = seed;
    let report = run_fleet(&scenario);
    per_sec(report.succeeded(), report.makespan_us)
}

/// Runs the sustained-overload workload described by `cfg` and reports.
/// `capacity_per_sec` comes from [`measure_capacity`] so the baseline and
/// the protected run are judged against the same yardstick.
pub fn run_overload(cfg: &OverloadConfig, capacity_per_sec: f64) -> OverloadReport {
    let sessions = poisson_sessions(cfg, capacity_per_sec);
    let offered = sessions.len();
    let flips_of: std::collections::HashMap<u64, usize> =
        sessions.iter().map(|s| (s.id, s.flips.len())).collect();

    let mut scenario = FleetScenario::new(cfg.groups, sessions);
    scenario.seed = cfg.seed;
    scenario.time_budget = cfg.time_budget;
    scenario.resilience = cfg.resilience;
    if cfg.adaptive {
        scenario.timing = ProtoTiming { retry: RetryPolicy::adaptive(), ..ProtoTiming::default() };
    }
    if let Some((group, factor)) = cfg.slow_group {
        scenario.slow_agents = vec![(2 * group, factor), (2 * group + 1, factor)];
    }
    if let Some(agent) = cfg.flaky_agent {
        scenario.faults = flap_plan(cfg, agent);
    }

    let report = run_fleet(&scenario);
    distill(cfg, capacity_per_sec, offered, &flips_of, report)
}

/// Builds the crash-loop fault plan: starting mid-period, the agent goes
/// down for half of every period — long enough for an in-flight session to
/// burn through its whole retransmission ladder against the silent process,
/// which is what lets its breaker accumulate the failures to trip.
fn flap_plan(cfg: &OverloadConfig, agent: usize) -> FaultPlan {
    let actor = sada_simnet::ActorId::from_index(agent);
    let period = cfg.flap_period.as_micros().max(4);
    let down = period / 2;
    let mut plan = FaultPlan::new();
    let mut at = period / 2;
    while at < cfg.window.as_micros() + period {
        plan = plan
            .crash(actor, SimTime::from_micros(at))
            .restart(actor, SimTime::from_micros(at + down));
        at += period;
    }
    plan
}

/// Draws the Poisson arrival process and the per-session scopes. Each
/// session flips one or two groups (span-2 sessions couple scopes, which is
/// what lets a slow group convoy healthy ones through shared lock holds),
/// alternating direction per group so every adaptation does real work.
fn poisson_sessions(cfg: &OverloadConfig, capacity_per_sec: f64) -> Vec<SessionSpec> {
    let lambda_per_us = capacity_per_sec * f64::from(cfg.load) / 1_000_000.0;
    let mut draw = 0u64;
    let mut uniform = || {
        draw += 1;
        // 53 uniform bits → (0, 1], so ln() below is always finite.
        (jitter_us(cfg.seed, draw, 1 << 53) + 1) as f64 / (1u64 << 53) as f64
    };
    let mut flips_seen = vec![0u64; cfg.groups];
    let mut sessions = Vec::new();
    let mut at_us = 0.0f64;
    loop {
        at_us += -uniform().ln() / lambda_per_us;
        if at_us >= cfg.window.as_micros() as f64 {
            break;
        }
        let first = (uniform() * cfg.groups as f64) as usize % cfg.groups;
        let mut flips = vec![(first, flips_seen[first].is_multiple_of(2))];
        flips_seen[first] += 1;
        if uniform() < 0.5 {
            let second =
                (first + 1 + (uniform() * (cfg.groups - 1) as f64) as usize % (cfg.groups - 1))
                    % cfg.groups;
            flips.push((second, flips_seen[second].is_multiple_of(2)));
            flips_seen[second] += 1;
        }
        sessions.push(SessionSpec {
            id: sessions.len() as u64 + 1,
            flips,
            priority: (uniform() * 4.0) as u8 % 4,
            submit_at: SimDuration::from_micros(at_us as u64),
            cancel_at: None,
        });
    }
    sessions
}

fn distill(
    cfg: &OverloadConfig,
    capacity_per_sec: f64,
    offered: usize,
    flips_of: &std::collections::HashMap<u64, usize>,
    report: FleetReport,
) -> OverloadReport {
    let committed_flips: usize = report
        .results
        .iter()
        .filter(|r| r.success)
        .map(|r| flips_of.get(&r.id).copied().unwrap_or(1))
        .sum();
    let budget_us = cfg.time_budget.as_micros();
    let mut waits: Vec<u64> = report
        .results
        .iter()
        .filter_map(|r| {
            let submitted = r.submitted_at?;
            // Admitted sessions report their true wait; terminated-unadmitted
            // ones are censored at termination, never-resolved at the budget.
            let until = r.admitted_at.or(r.completed_at).unwrap_or(budget_us);
            Some(until.saturating_sub(submitted))
        })
        .collect();
    waits.sort_unstable();
    let pct = |p: f64| -> u64 {
        if waits.is_empty() {
            return 0;
        }
        waits[((waits.len() - 1) as f64 * p) as usize]
    };
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    let mut line = String::with_capacity(128);
    for ev in &report.events {
        line.clear();
        encode_event_into(&mut line, ev);
        for &b in line.as_bytes() {
            fp ^= u64::from(b);
            fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    OverloadReport {
        capacity_per_sec,
        offered,
        succeeded: report.succeeded(),
        committed_flips,
        shed: report.shed,
        rejected: report.rejected,
        breaker_trips: report.breaker_trips,
        suppressed_sends: report.suppressed_sends,
        goodput_per_sec: per_sec(committed_flips, cfg.window.as_micros()),
        p50_admission_us: pct(0.50),
        p99_admission_us: pct(0.99),
        makespan_us: report.makespan_us,
        fingerprint: fp,
        admissions: report.results.iter().filter_map(|r| r.admission.map(|a| (r.id, a))).collect(),
    }
}

fn per_sec(count: usize, span_us: u64) -> f64 {
    if span_us == 0 {
        return 0.0;
    }
    count as f64 * 1_000_000.0 / span_us as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_calibration_is_positive_and_deterministic() {
        let a = measure_capacity(4, 7);
        let b = measure_capacity(4, 7);
        assert!(a > 0.0);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn poisson_arrivals_fill_the_window_in_order() {
        let cfg = OverloadConfig::degraded(6, 4, 42);
        let sessions = poisson_sessions(&cfg, 100.0);
        assert!(!sessions.is_empty());
        let times: Vec<u64> = sessions.iter().map(|s| s.submit_at.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "arrivals sorted");
        assert!(*times.last().unwrap() < cfg.window.as_micros());
        // λ = 400/s over 1 s: the draw should land in the same ballpark.
        assert!(sessions.len() > 200 && sessions.len() < 700, "got {}", sessions.len());
        for s in &sessions {
            assert!(!s.flips.is_empty() && s.flips.len() <= 2);
            // Span-2 scopes never name the same group twice.
            if let [(a, _), (b, _)] = s.flips[..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn typed_admissions_are_journaled_and_consistent() {
        let capacity = measure_capacity(4, 11);
        let r = run_overload(&OverloadConfig::protected(4, 6, 11), capacity);
        let shed =
            r.admissions.iter().filter(|(_, a)| matches!(a, Admission::Shed { .. })).count() as u64;
        let rejected =
            r.admissions.iter().filter(|&&(_, a)| a == Admission::Rejected).count() as u64;
        assert_eq!(shed, r.shed, "typed verdicts agree with the shed counter");
        assert_eq!(rejected, r.rejected, "typed verdicts agree with the rejection counter");
        assert!(shed > 0, "6× load must overwhelm the bulkhead");
        let hints = r.shed_retry_hints();
        assert_eq!(hints.len() as u64, shed);
        assert!(
            hints.iter().all(|&h| h > 0),
            "every shed session gets a positive retry-after hint"
        );
        // The typed verdict and the legacy warning string must agree.
        let ids: std::collections::HashSet<u64> = r
            .admissions
            .iter()
            .filter(|(_, a)| matches!(a, Admission::Shed { .. }))
            .map(|&(id, _)| id)
            .collect();
        assert!(!ids.is_empty());
    }

    #[test]
    fn identical_seeds_reproduce_identical_event_streams() {
        let cfg = OverloadConfig::protected(4, 2, 11);
        let capacity = measure_capacity(4, 11);
        let a = run_overload(&cfg, capacity);
        let b = run_overload(&cfg, capacity);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.succeeded, b.succeeded);
        let c = run_overload(&OverloadConfig::protected(4, 2, 12), capacity);
        assert_ne!(a.fingerprint, c.fingerprint, "different seed, different run");
    }
}
