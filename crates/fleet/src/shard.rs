//! Sharded control plane: the fleet runtime split across OS threads with a
//! deterministic cross-shard fabric.
//!
//! [`run_fleet`](crate::run_fleet) drives the whole fleet through one
//! simulator on one thread. This module refactors that single loop into
//! **shards**: the group space is cut into `regions` contiguous blocks, and
//! each region runs its own simulator — its own agents, its own
//! [`ControlActor`] (scope-lock domain, plan cache, journal) — pumped by a
//! real OS thread. Sessions whose scope stays inside one region never
//! synchronize with anything; sessions that straddle regions escalate to a
//! thin **global tier** that acquires per-region scope slices over the
//! fabric before running the full protocol.
//!
//! ## Determinism
//!
//! The whole point of the refactor is that parallelism must not perturb
//! behavior: the same scenario at 1, 2, 4, or 8 worker threads produces
//! bit-for-bit identical final configurations, journals, and event streams.
//! Three mechanisms carry that guarantee:
//!
//! * **Fixed logical partition.** `regions` is part of the scenario, not of
//!   the execution; worker threads multiplex endpoints (`endpoint id %
//!   threads`), so thread count never changes which simulator owns what.
//! * **Deterministic fabric merge.** Cross-shard messages are timestamped
//!   at the sender, mapped to a quantized virtual arrival instant, and
//!   injected into the receiver sorted by `(arrival, source shard, per-edge
//!   sequence)` — wall-clock interleaving cannot reorder them.
//! * **Conservative virtual clocks.** Each endpoint advances only as far as
//!   every inbound fabric edge *promises* silence (a null-message protocol
//!   with one fabric latency of lookahead). Edges that no straddling
//!   session touches promise silence statically, so straddler-free
//!   workloads free-run with zero synchronization — the source of the
//!   near-linear thread scaling in `bench_shard`.
//!
//! Each region replicates the exact actor layout of [`run_fleet`] (all
//! agents, control plane at index `2·groups`) plus an idle fabric relay, so
//! a `regions = 1` run is event-identical (modulo shard tags) to the
//! unsharded driver.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sada_expr::CompId;
use sada_obs::{encode_event_into, Bus, Event, FleetEvent, Payload, RingSink};
use sada_proto::{encode_global_journal, encode_session_journal, AgentTiming, GlobalRecord, Wire};
use sada_resilience::{jitter_us, RetryPolicy, RttEstimator};
use sada_simnet::{
    Actor, ActorId, Context, LinkConfig, NetStats, SimDuration, SimTime, Simulator, TimerId,
};

use crate::cache::PlanCacheStats;
use crate::control::{ControlActor, SessionSpec};
use crate::driver::{max_concurrent, scale_timing, FleetScenario, SessionResult};

/// Default region count: matches the 8-thread top rung of the scaling
/// benchmark, and divides the benchmark fleets evenly.
pub const DEFAULT_REGIONS: usize = 8;

/// Endpoint-seed stride (the 64-bit golden ratio), so endpoint 0 keeps the
/// scenario seed (the `regions = 1` ≡ `run_fleet` equivalence) while the
/// rest get decorrelated streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A sharded fleet experiment: the underlying scenario plus the logical
/// partition, crash faults targeting one region and/or the global tier, and
/// a seeded chaos plan for the cross-shard fabric itself.
#[derive(Debug, Clone)]
pub struct ShardScenario {
    /// The fleet workload (groups, sessions, timing, resilience).
    pub fleet: FleetScenario,
    /// Number of regions the group space is cut into (contiguous blocks).
    /// Part of the *scenario*: results are invariant in worker threads, not
    /// in region count.
    pub regions: usize,
    /// Crash/restart instants for one region's control plane.
    pub crash_region: Option<(usize, SimTime, SimTime)>,
    /// Crash/restart instants for the global (straddler) tier's control
    /// plane. Ignored by workloads without straddlers — no global endpoint
    /// exists to crash.
    pub crash_global: Option<(SimTime, SimTime)>,
    /// Seeded fault plan for fabric messages (drop / duplicate /
    /// delay-burst / null-message suppression). Part of the scenario, so a
    /// lossy run is exactly as deterministic as a lossless one.
    pub fabric_faults: FabricFaultPlan,
    /// Enables the GVT promise fast path: when the minimum over every
    /// endpoint's published event horizon (plus undrained fabric mail)
    /// clears the budget, promises jump straight there instead of
    /// quantum-stepping. Pure wall-clock policy — fingerprints, journals,
    /// and results are bit-identical with it on or off (asserted in tests).
    pub promise_fastpath: bool,
}

impl ShardScenario {
    /// Wraps `fleet` in a `regions`-way partition with no fault plan.
    pub fn new(fleet: FleetScenario, regions: usize) -> Self {
        ShardScenario {
            fleet,
            regions,
            crash_region: None,
            crash_global: None,
            fabric_faults: FabricFaultPlan::default(),
            promise_fastpath: true,
        }
    }

    /// The region owning `group`: contiguous blocks, first blocks one
    /// group larger when the division is uneven.
    pub fn region_of(&self, group: usize) -> usize {
        group * self.regions / self.fleet.groups.max(1)
    }
}

// ---------------------------------------------------------------------------
// Fabric fault plan
// ---------------------------------------------------------------------------

/// Deterministic, seeded chaos for the cross-shard fabric. Faults are
/// decided *per message* by pure hashes of `(seed, src, dst, seq, kind)`,
/// so a lossy run replays bit-for-bit at any worker-thread count.
///
/// All faults respect the conservative-clock safety rule: a delayed copy
/// still arrives no earlier than the edge's published promise, and dropped
/// messages only ever *remove* traffic the retransmission ladder re-drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricFaultPlan {
    /// Seed for the fault hashes. Independent of the workload seed so the
    /// same scenario can be swept across fault universes.
    pub seed: u64,
    /// Probability (per mille) a fabric message is silently dropped.
    pub drop_per_mille: u16,
    /// Probability (per mille) a fabric message is delivered twice.
    pub dup_per_mille: u16,
    /// Probability (per mille) a fabric message is delay-bursted to a
    /// later quantum boundary (this also reorders it behind later sends).
    pub delay_per_mille: u16,
    /// Upper bound (in arrival quanta) for delay bursts; the actual burst
    /// is `1 + hash % max_delay_quanta`.
    pub max_delay_quanta: u32,
    /// Probability (per mille) a *null message* (pure promise advance) is
    /// suppressed. Each distinct promise value is dropped at most once per
    /// edge, so progress is merely slowed, never stopped.
    pub null_drop_per_mille: u16,
    /// Restricts faults to sends inside `[start_us, end_us)`; `None` arms
    /// them for the whole run.
    pub window_us: Option<(u64, u64)>,
}

impl Default for FabricFaultPlan {
    fn default() -> Self {
        FabricFaultPlan {
            seed: 0x05AD_AFAB,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay_quanta: 4,
            null_drop_per_mille: 0,
            window_us: None,
        }
    }
}

const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_DELAY: u64 = 3;
const SALT_DELAY_AMT: u64 = 4;
const SALT_NULL: u64 = 5;

/// Mixes one fabric message's identity into a fault-roll salt. `seq` gets
/// the golden-ratio spread so consecutive messages land in unrelated
/// regions of the jitter space.
fn fault_salt(src: u32, dst: u32, seq: u64, kind: u64) -> u64 {
    (u64::from(src) << 48) ^ (u64::from(dst) << 40) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ kind
}

impl FabricFaultPlan {
    /// Whether any fault class is enabled at all (fast bail-out).
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.delay_per_mille > 0
            || self.null_drop_per_mille > 0
    }

    /// Whether faults are armed for a message sent at `send_us`.
    fn armed_at(&self, send_us: u64) -> bool {
        match self.window_us {
            Some((start, end)) => send_us >= start && send_us < end,
            None => true,
        }
    }

    /// One seeded per-mille roll for the given salt.
    fn roll(&self, salt: u64, per_mille: u16) -> bool {
        per_mille > 0 && jitter_us(self.seed, salt, 1000) < u64::from(per_mille)
    }
}

// ---------------------------------------------------------------------------
// Cross-shard fabric
// ---------------------------------------------------------------------------

/// What crosses the fabric: only lock escalation. Regions and the global
/// tier never exchange protocol traffic — a globally run session drives the
/// global endpoint's own agent replicas, and only the scope-slice handshake
/// (request / grant-with-values / release-with-values / release-ack) is
/// distributed.
///
/// Every message carries an **epoch**: the global tier's incarnation
/// number at send time. Regions use it to evict leases held for a dead
/// global incarnation (reclaim) and to discard stale duplicates, which
/// makes grant/release application idempotent under the retransmission
/// ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the shared `Lock` prefix is the point: this IS the lock protocol
pub enum FabricPayload {
    /// Global tier → region: hold this scope slice under `session`.
    LockRequest { session: u64, resources: Vec<u32>, comps: Vec<u32>, priority: u8, epoch: u64 },
    /// Region → global tier: the slice is held; `values` carries the
    /// region's current component states so the global planner starts from
    /// the authoritative source configuration.
    LockGranted { session: u64, region: u32, epoch: u64, values: Vec<(u32, bool)> },
    /// Global tier → region: the session finished (or withdrew); `values`
    /// carries the final component states to fold into the region's
    /// durable fleet configuration.
    LockRelease { session: u64, epoch: u64, values: Vec<(u32, bool)> },
    /// Region → global tier: the release landed; retires the release's
    /// retransmission timer.
    ReleaseAck { session: u64, region: u32, epoch: u64 },
}

impl FabricPayload {
    /// The straddler session this message belongs to.
    pub fn session(&self) -> u64 {
        match *self {
            FabricPayload::LockRequest { session, .. }
            | FabricPayload::LockGranted { session, .. }
            | FabricPayload::LockRelease { session, .. }
            | FabricPayload::ReleaseAck { session, .. } => session,
        }
    }
}

fn join_u32s(xs: &[u32]) -> String {
    if xs.is_empty() {
        "-".to_string()
    } else {
        xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
    }
}

fn join_values(values: &[(u32, bool)]) -> String {
    if values.is_empty() {
        "-".to_string()
    } else {
        values.iter().map(|&(c, v)| format!("{c}:{}", u8::from(v))).collect::<Vec<_>>().join(",")
    }
}

/// One fabric message as a single text line (the same `verb key=value`
/// shape as the adaptation journals). Lists are comma-joined, `-` when
/// empty.
pub fn encode_fabric_msg(msg: &FabricPayload) -> String {
    match msg {
        FabricPayload::LockRequest { session, resources, comps, priority, epoch } => format!(
            "lock_request session={session} epoch={epoch} priority={priority} resources={} comps={}",
            join_u32s(resources),
            join_u32s(comps)
        ),
        FabricPayload::LockGranted { session, region, epoch, values } => format!(
            "lock_granted session={session} region={region} epoch={epoch} values={}",
            join_values(values)
        ),
        FabricPayload::LockRelease { session, epoch, values } => format!(
            "lock_release session={session} epoch={epoch} values={}",
            join_values(values)
        ),
        FabricPayload::ReleaseAck { session, region, epoch } => {
            format!("release_ack session={session} region={region} epoch={epoch}")
        }
    }
}

/// Parses one [`encode_fabric_msg`] line back into a payload.
pub fn parse_fabric_msg(line: &str) -> Result<FabricPayload, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty fabric message".to_string())?;
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for part in parts {
        let (k, v) = part.split_once('=').ok_or_else(|| format!("bad field {part:?}"))?;
        fields.insert(k, v);
    }
    let num = |key: &str| -> Result<u64, String> {
        fields
            .get(key)
            .ok_or_else(|| format!("missing {key} in {verb}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {key}: {e}"))
    };
    let list = |key: &str| -> Result<Vec<u32>, String> {
        let raw = fields.get(key).ok_or_else(|| format!("missing {key} in {verb}"))?;
        if *raw == "-" {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|x| x.parse::<u32>().map_err(|e| format!("bad {key} item: {e}")))
            .collect()
    };
    let values = |key: &str| -> Result<Vec<(u32, bool)>, String> {
        let raw = fields.get(key).ok_or_else(|| format!("missing {key} in {verb}"))?;
        if *raw == "-" {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|pair| {
                let (c, v) =
                    pair.split_once(':').ok_or_else(|| format!("bad {key} pair {pair:?}"))?;
                let comp = c.parse::<u32>().map_err(|e| format!("bad {key} comp: {e}"))?;
                let bit = match v {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad {key} bit {other:?}")),
                };
                Ok((comp, bit))
            })
            .collect()
    };
    match verb {
        "lock_request" => Ok(FabricPayload::LockRequest {
            session: num("session")?,
            resources: list("resources")?,
            comps: list("comps")?,
            priority: u8::try_from(num("priority")?).map_err(|e| format!("bad priority: {e}"))?,
            epoch: num("epoch")?,
        }),
        "lock_granted" => Ok(FabricPayload::LockGranted {
            session: num("session")?,
            region: u32::try_from(num("region")?).map_err(|e| format!("bad region: {e}"))?,
            epoch: num("epoch")?,
            values: values("values")?,
        }),
        "lock_release" => Ok(FabricPayload::LockRelease {
            session: num("session")?,
            epoch: num("epoch")?,
            values: values("values")?,
        }),
        "release_ack" => Ok(FabricPayload::ReleaseAck {
            session: num("session")?,
            region: u32::try_from(num("region")?).map_err(|e| format!("bad region: {e}"))?,
            epoch: num("epoch")?,
        }),
        other => Err(format!("unknown fabric verb {other:?}")),
    }
}

/// The app-level message an endpoint's wrapper hands its fabric relay.
#[derive(Debug, Clone)]
struct ShardMsg {
    to: u32,
    payload: FabricPayload,
}

/// A fabric message staged at the receiver, keyed for the deterministic
/// merge: `(arrival, src, seq)` is a total order no wall-clock interleaving
/// can disturb.
struct FabricEnvelope {
    arrival_us: u64,
    src: u32,
    seq: u64,
    payload: FabricPayload,
}

#[derive(Default)]
struct EdgeState {
    mail: Vec<FabricEnvelope>,
    /// Arrival-instant promise: no future message on this edge will arrive
    /// *before* this virtual time. `u64::MAX` once the sender is done.
    promise_us: u64,
    next_seq: u64,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    /// Null-message promise advances suppressed by the fault plan
    /// (wall-clock dependent, diagnostic only).
    nulls_dropped: u64,
    /// The last promise value the fault plan suppressed on this edge: each
    /// distinct value is dropped at most once, so the worker's periodic
    /// re-flush always lands the second attempt — livelock-free.
    last_dropped_promise: u64,
}

struct FabricState {
    edges: HashMap<(u32, u32), EdgeState>,
    promise_updates: u64,
    /// Per endpoint: a raw lower bound on its next send instant (its local
    /// event horizon, before clamping against inbound promises). The min
    /// over these plus undrained mail is a global virtual-time bound — the
    /// GVT promise fast path.
    local_bound: HashMap<u32, u64>,
}

impl FabricState {
    /// Global lower bound on any *future* fabric send: no endpoint can
    /// emit a message before this instant, and no undrained envelope
    /// arrives before it either.
    fn gvt(&self) -> u64 {
        let mut bound = u64::MAX;
        for &b in self.local_bound.values() {
            bound = bound.min(b);
        }
        for e in self.edges.values() {
            for env in &e.mail {
                bound = bound.min(env.arrival_us);
            }
        }
        bound
    }
}

/// The shared cross-shard message fabric: bounded per-edge mailboxes plus
/// the conservative-clock promises, guarded by one mutex (traffic is rare —
/// only lock escalation crosses shards).
struct Fabric {
    state: Mutex<FabricState>,
    cv: Condvar,
    /// Fabric latency *and* arrival quantum, μs (the link latency).
    quantum_us: u64,
    /// Seeded chaos applied at the sender as messages enter the fabric.
    faults: FabricFaultPlan,
    /// GVT promise fast path enabled (scheduling-only; see
    /// [`ShardScenario::promise_fastpath`]).
    fastpath: bool,
}

impl Fabric {
    fn new(
        involved: &[u32],
        global: u32,
        quantum_us: u64,
        faults: FabricFaultPlan,
        fastpath: bool,
    ) -> Self {
        let mut edges = HashMap::new();
        let mut local_bound = HashMap::new();
        local_bound.insert(global, 0);
        for &r in involved {
            local_bound.insert(r, 0);
            for key in [(global, r), (r, global)] {
                edges.insert(key, EdgeState { promise_us: quantum_us, ..EdgeState::default() });
            }
        }
        Fabric {
            state: Mutex::new(FabricState { edges, promise_updates: 0, local_bound }),
            cv: Condvar::new(),
            quantum_us,
            faults,
            fastpath,
        }
    }

    /// Fabric delivery instant for a message sent at `send_us`: the next
    /// quantum boundary at least one fabric latency later. Monotone in the
    /// send instant, so each edge is FIFO by construction.
    fn arrival_of(&self, send_us: u64) -> u64 {
        let q = self.quantum_us;
        (send_us + 2 * q - 1) / q * q
    }
}

/// Cross-shard traffic counters for a finished run. Message and fault
/// counts are deterministic; `promise_updates` / `nulls_dropped` count
/// observed clock-advance traffic and vary with wall-clock scheduling
/// (diagnostic only).
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Total messages that crossed the fabric (faulted sends included).
    pub messages: u64,
    /// Per directed edge `(src shard tag, dst shard tag, messages)`.
    pub per_edge: Vec<(u32, u32, u64)>,
    /// Null-message promise advances observed (wall-clock dependent).
    pub promise_updates: u64,
    /// Fabric messages dropped by the fault plan.
    pub dropped: u64,
    /// Fabric messages duplicated by the fault plan.
    pub duplicated: u64,
    /// Fabric messages delay-bursted by the fault plan.
    pub delayed: u64,
    /// Null-message promise advances suppressed by the fault plan
    /// (wall-clock dependent).
    pub nulls_dropped: u64,
}

/// The in-sim half of the fabric: an idle actor sitting after the control
/// plane. Outbound cross-shard messages are addressed to it over the normal
/// (latency-bearing) link and surface in a buffer the executor drains;
/// inbound messages are injected *from* it, so crash/partition semantics
/// apply exactly like actor traffic.
type Outbox = Rc<RefCell<Vec<(u32, u64, FabricPayload)>>>;

struct FabricRelay {
    outbox: Outbox,
}

impl Actor<Wire<ShardMsg>> for FabricRelay {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        _from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        if let Wire::App(m) = msg {
            self.outbox.borrow_mut().push((m.to, ctx.now().as_micros(), m.payload));
        }
    }
}

// ---------------------------------------------------------------------------
// Region wrapper
// ---------------------------------------------------------------------------

/// A scope slice held (or queued) in this region on behalf of a globally
/// escalated session.
struct ForeignHold {
    resources: Vec<u32>,
    comps: Vec<u32>,
    priority: u8,
    /// The global-tier incarnation that requested the slice. A request
    /// under a *higher* epoch reclaims the lease (the old incarnation is
    /// dead); requests under a lower epoch are stale duplicates.
    epoch: u64,
    /// `LockGranted` already sent back to the global tier.
    acked: bool,
}

/// Region control plane: the plain [`ControlActor`] plus the fabric-facing
/// lock-escalation shim. Every delegated callback is followed by a sweep
/// that turns newly granted foreign holds into `LockGranted` replies (the
/// inner grant cascade skips ids without a scenario entry).
///
/// Under a lossy fabric the shim is an idempotent receiver: duplicate
/// requests re-grant (the slice's component values cannot change while it
/// is locked, so the grant is byte-identical), duplicate releases re-ack,
/// and a **release tombstone** per session records the highest epoch ever
/// released so a delay-faulted request overtaken by its own release cannot
/// resurrect a hold the global tier no longer tracks.
struct RegionControl {
    inner: ControlActor<ShardMsg>,
    relay: ActorId,
    region_id: u32,
    global_ep: u32,
    bus: Bus,
    foreign: BTreeMap<u64, ForeignHold>,
    /// Release tombstones: session → highest epoch released/cancelled.
    released: HashMap<u64, u64>,
    /// Leases evicted from a dead global incarnation (epoch bump).
    lease_reclaims: u64,
    /// Lease-GC deadlines (virtual μs) for holds that survived a region
    /// crash: if the global tier stays silent past the deadline, the hold
    /// is garbage-collected from the lock table. Any inbound fabric message
    /// for the session re-arms its deadline.
    lease_deadline: HashMap<u64, u64>,
    /// Timer-slot → session map for the lease band; slots are never reused
    /// (stale timers no-op against the deadline check).
    lease_slots: Vec<u64>,
    /// Foreign holds garbage-collected after a silent lease horizon.
    lease_expirations: u64,
}

/// Region-wrapper timer band for lease GC. The inner control plane owns
/// `1 << 62`/`1 << 63` plus small dynamic tags, so `[1 << 61, 1 << 62)` is
/// free on region endpoints (the global tier's bands live on a different
/// actor).
const TAG_LEASE_BASE: u64 = 1 << 61;

/// How long a re-seized foreign hold may sit with **zero** fabric traffic
/// before the region declares the global tier's interest dead and reclaims
/// the lock-table entry. Comfortably past the global retransmission
/// ladder's ≈ 9 s span (`MAX_FABRIC_ATTEMPTS`), so a live-but-lossy global
/// tier always makes contact first.
const LEASE_HORIZON_US: u64 = 12_000_000;

impl RegionControl {
    fn emit(&self, ctx: &Context<'_, Wire<ShardMsg>>, session: u64, ev: FleetEvent) {
        self.bus.emit(Event {
            at: ctx.now(),
            actor: ctx.self_id().index() as u32,
            session,
            shard: 0,
            payload: Payload::Fleet(ev),
        });
    }

    fn grant(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, sid: u64) {
        let Some(hold) = self.foreign.get_mut(&sid) else { return };
        hold.acked = true;
        let epoch = hold.epoch;
        let values: Vec<(u32, bool)> = hold
            .comps
            .iter()
            .map(|&c| (c, self.inner.fleet_config.contains(CompId::from_index(c as usize))))
            .collect();
        ctx.send(
            self.relay,
            Wire::App(ShardMsg {
                to: self.global_ep,
                payload: FabricPayload::LockGranted {
                    session: sid,
                    region: self.region_id,
                    epoch,
                    values,
                },
            }),
        );
    }

    fn send_ack(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, session: u64, epoch: u64) {
        ctx.send(
            self.relay,
            Wire::App(ShardMsg {
                to: self.global_ep,
                payload: FabricPayload::ReleaseAck { session, region: self.region_id, epoch },
            }),
        );
    }

    fn sweep(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        let pending: Vec<u64> =
            self.foreign.iter().filter(|(_, h)| !h.acked).map(|(&s, _)| s).collect();
        for sid in pending {
            if self.inner.locks_mut().is_held(sid) {
                self.grant(ctx, sid);
            }
        }
    }

    /// (Re-)arms the lease-GC deadline for `session`: one horizon of global
    /// silence from now. Slots are append-only; a superseded timer fires
    /// against a newer deadline and no-ops.
    fn arm_lease(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, session: u64) {
        self.lease_deadline.insert(session, ctx.now().as_micros() + LEASE_HORIZON_US);
        let slot = self.lease_slots.len() as u64;
        self.lease_slots.push(session);
        ctx.set_timer(SimDuration::from_micros(LEASE_HORIZON_US), TAG_LEASE_BASE + slot);
    }

    /// Garbage-collects a foreign hold whose lease ran out: tombstone the
    /// epoch, drop the lock-table entry (held or still queued), and run the
    /// same grant cascade a `LockRelease` would have. Values are **not**
    /// folded — they only ever flow through an acked release; past the
    /// horizon the region's own durable state is authoritative.
    fn expire_lease(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, session: u64) {
        let Some(hold) = self.foreign.remove(&session) else { return };
        self.lease_deadline.remove(&session);
        let t = self.released.entry(session).or_insert(0);
        *t = (*t).max(hold.epoch);
        let granted = if self.inner.locks_mut().is_held(session) {
            self.inner.locks_mut().release(session)
        } else {
            self.inner.locks_mut().cancel(session).unwrap_or_default()
        };
        self.lease_expirations += 1;
        self.emit(ctx, session, FleetEvent::LeaseExpired { session, region: self.region_id });
        for g in granted {
            if self.foreign.contains_key(&g) {
                self.grant(ctx, g);
            } else {
                self.inner.admit_granted(ctx, g);
            }
        }
    }

    fn on_fabric(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, payload: FabricPayload) {
        // Any word from the global tier about a lease-watched session
        // renews its deadline: GC targets *silence*, not slowness.
        let sid = match &payload {
            FabricPayload::LockRequest { session, .. }
            | FabricPayload::LockGranted { session, .. }
            | FabricPayload::LockRelease { session, .. }
            | FabricPayload::ReleaseAck { session, .. } => *session,
        };
        if self.lease_deadline.contains_key(&sid) {
            self.arm_lease(ctx, sid);
        }
        match payload {
            FabricPayload::LockRequest { session, resources, comps, priority, epoch } => {
                // Tombstone first: a delayed/duplicated request whose
                // release already landed must not resurrect the hold.
                if self.released.get(&session).is_some_and(|&e| e >= epoch) {
                    return;
                }
                if let Some(hold) = self.foreign.get_mut(&session) {
                    match epoch.cmp(&hold.epoch) {
                        std::cmp::Ordering::Less => {} // stale duplicate
                        std::cmp::Ordering::Greater => {
                            // The global tier restarted: the lease survives
                            // under the new incarnation. Un-ack it so the
                            // caller's sweep re-grants (idempotently — the
                            // slice stayed locked, so its values are
                            // unchanged) with the new epoch.
                            hold.epoch = epoch;
                            hold.acked = false;
                            self.lease_reclaims += 1;
                            self.emit(
                                ctx,
                                session,
                                FleetEvent::LeaseReclaimed {
                                    session,
                                    region: self.region_id,
                                    epoch,
                                },
                            );
                        }
                        std::cmp::Ordering::Equal => {
                            // Retransmitted request: if the slice is held
                            // its grant was lost — re-send it. If it is
                            // still queued the sweep grants when ready.
                            if self.inner.locks_mut().is_held(session) {
                                self.grant(ctx, session);
                            }
                        }
                    }
                    return;
                }
                let held = self.inner.locks_mut().try_acquire(session, &resources, priority);
                self.foreign.insert(
                    session,
                    ForeignHold { resources, comps, priority, epoch, acked: false },
                );
                if held {
                    self.grant(ctx, session);
                }
            }
            FabricPayload::LockRelease { session, epoch, values } => {
                // Always ack (echoing the release's epoch) so the global
                // tier retires the right retransmission ladder — even for
                // an unknown session, where the release itself is the only
                // state we ever had.
                self.send_ack(ctx, session, epoch);
                let Some(hold) = self.foreign.get(&session) else {
                    let t = self.released.entry(session).or_insert(0);
                    *t = (*t).max(epoch);
                    return;
                };
                if epoch < hold.epoch {
                    return; // a dead incarnation's release; the live one decides
                }
                let t = self.released.entry(session).or_insert(0);
                *t = (*t).max(epoch);
                let was_held = self.inner.locks_mut().is_held(session);
                if was_held {
                    // Fold final values only out of a *held* slice: a
                    // still-queued (withdrawn) slice never ran, and its
                    // echoed request-time values must not clobber commits
                    // that happened while it waited.
                    for (c, v) in values {
                        self.inner.fold_comp(CompId::from_index(c as usize), v);
                    }
                }
                let granted = if was_held {
                    self.inner.locks_mut().release(session)
                } else {
                    self.inner.locks_mut().cancel(session).unwrap_or_default()
                };
                self.foreign.remove(&session);
                self.lease_deadline.remove(&session);
                for g in granted {
                    if self.foreign.contains_key(&g) {
                        self.grant(ctx, g);
                    } else {
                        self.inner.admit_granted(ctx, g);
                    }
                }
            }
            // Regions never receive grants or acks.
            FabricPayload::LockGranted { .. } | FabricPayload::ReleaseAck { .. } => {}
        }
    }
}

impl Actor<Wire<ShardMsg>> for RegionControl {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        self.inner.on_start(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        match msg {
            Wire::App(m) => self.on_fabric(ctx, m.payload),
            other => self.inner.on_message(ctx, from, other),
        }
        self.sweep(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) {
        if (TAG_LEASE_BASE..TAG_LEASE_BASE << 1).contains(&tag) {
            // Lease band: expire only if this timer still carries the
            // session's *current* deadline (re-arms leave stale timers
            // behind, which no-op here).
            let slot = (tag - TAG_LEASE_BASE) as usize;
            if let Some(&session) = self.lease_slots.get(slot) {
                let due = self
                    .lease_deadline
                    .get(&session)
                    .is_some_and(|&dl| ctx.now().as_micros() >= dl);
                if due {
                    self.expire_lease(ctx, session);
                }
            }
            self.sweep(ctx);
            return;
        }
        self.inner.on_timer(ctx, tag);
        self.sweep(ctx);
    }

    fn on_crash(&mut self, now: SimTime) {
        // Foreign-hold bookkeeping is wrapper state and survives the crash
        // (the global tier journals the escalation on its side); the inner
        // volatile image — including the lock table — dies. Lease timers
        // die with the crash; restart re-arms them.
        self.lease_deadline.clear();
        self.inner.on_crash(now);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        // Re-seize granted escalations *before* journal replay, so restored
        // or requeued local sessions cannot steal the slices. Granted holds
        // are disjoint from local in-flight scopes (they were concurrently
        // held when the plane died), so both re-acquisitions must succeed.
        let held: Vec<(u64, Vec<u32>, u8)> = self
            .foreign
            .iter()
            .filter(|(_, h)| h.acked)
            .map(|(&s, h)| (s, h.resources.clone(), h.priority))
            .collect();
        for (sid, res, prio) in held {
            let got = self.inner.locks_mut().try_acquire(sid, &res, prio);
            assert!(got, "escalated holds are disjoint from local in-flight scopes");
        }
        self.inner.on_restart(ctx);
        // Still-queued escalation requests rejoin the queue (or are granted
        // outright if the crash resolved their conflict).
        let queued: Vec<(u64, Vec<u32>, u8)> = self
            .foreign
            .iter()
            .filter(|(_, h)| !h.acked)
            .map(|(&s, h)| (s, h.resources.clone(), h.priority))
            .collect();
        for (sid, res, prio) in queued {
            self.inner.locks_mut().try_acquire(sid, &res, prio);
        }
        // Every surviving hold gets a lease: if its global ladder already
        // gave up while we were dead (an orphaned release / abandoned
        // request), no fabric traffic will ever arrive to clear it — the
        // deadline reclaims the lock-table entry instead of leaking it.
        let sessions: Vec<u64> = self.foreign.keys().copied().collect();
        for sid in sessions {
            self.arm_lease(ctx, sid);
        }
        self.sweep(ctx);
    }
}

// ---------------------------------------------------------------------------
// Global tier
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Granting,
    Running,
    Done,
    Cancelled,
}

/// One region's share of a straddling session's scope.
#[derive(Debug, Clone)]
struct Slice {
    region: u32,
    resources: Vec<u32>,
    comps: Vec<u32>,
}

struct Straddler {
    sid: u64,
    priority: u8,
    submit_at: SimDuration,
    cancel_at: Option<SimDuration>,
    /// Ascending region order — slices are acquired strictly sequentially,
    /// so escalation is deadlock-free by the usual ordered-2PL argument.
    slices: Vec<Slice>,
    next: usize,
    phase: Phase,
}

/// Wrapper timer namespaces. The inner control plane owns `1 << 62` and
/// `1 << 63` plus small dynamic tags; the global tier claims bands in
/// between for the pre-submission lifecycle of straddling sessions and the
/// fabric retransmission ladder.
const TAG_GLOBAL_SUBMIT: u64 = 1 << 61;
const TAG_GLOBAL_CANCEL: u64 = 3 << 60;
const TAG_INNER_BASE: u64 = 1 << 62;
const TAG_FABRIC_BASE: u64 = 1 << 60;

/// Retransmission attempts before the global tier declares a region
/// unreachable. With the adaptive backoff schedule (200 ms doubling to an
/// 800 ms cap) the full ladder spans ≈ 9 virtual seconds — the **lease
/// horizon**: a region silent that long is treated as dead, requests
/// abandon their straddler with a journaled rejection and releases are
/// counted as orphaned (the region's restarted lock table no longer
/// carries the hold anyway).
const MAX_FABRIC_ATTEMPTS: u32 = 12;

/// One timer tag per (straddler, slice, direction): requests and releases
/// retransmit independently.
fn fabric_tag(ix: usize, slice: usize, release: bool) -> u64 {
    TAG_FABRIC_BASE + ((ix as u64) << 12) + ((slice as u64) << 1) + u64::from(release)
}

/// An unacknowledged fabric send the retransmission ladder is driving.
/// Volatile: a global-tier crash clears these and the journal-driven
/// restore re-issues whatever still matters under the new incarnation.
struct Outstanding {
    payload: FabricPayload,
    region: u32,
    session: u64,
    attempts: u32,
    timer: TimerId,
    sent_at: u64,
}

/// The thin global tier: a full [`ControlActor`] over its own replica of
/// the fleet's agents, driving only the straddling sessions. Each straddler
/// submits through a lock-escalation handshake — per-region scope slices
/// acquired in ascending region order, grants carrying the regions'
/// authoritative component values, releases carrying the final ones back.
struct GlobalControl {
    inner: ControlActor<ShardMsg>,
    relay: ActorId,
    bus: Bus,
    straddlers: Vec<Straddler>,
    /// Wrapper-level lifecycle instants (μs) for phases the inner control
    /// plane never sees: real submission time (the inner spec carries a
    /// beyond-budget sentinel) and pre-submission withdrawals.
    submitted_at: HashMap<u64, u64>,
    cancelled_at: HashMap<u64, u64>,
    /// Durable: the global tier's write-ahead journal — every irreversible
    /// step of the escalation handshake, written before the fabric
    /// messages it covers.
    global_journal: Vec<GlobalRecord>,
    /// Durable: incarnation number, bumped on restart and stamped into
    /// every fabric message as its epoch.
    incarnation: u64,
    /// Durable counters (they describe history, not in-flight state).
    retransmits: u64,
    abandoned: u64,
    orphaned_releases: u64,
    // Volatile from here down: a crash clears these and the journal-driven
    // restore re-issues whatever still matters under the new incarnation.
    retry: RetryPolicy,
    rtt: HashMap<u32, RttEstimator>,
    outstanding: HashMap<u64, Outstanding>,
}

impl GlobalControl {
    fn emit(&self, ctx: &Context<'_, Wire<ShardMsg>>, session: u64, ev: FleetEvent) {
        self.bus.emit(Event {
            at: ctx.now(),
            actor: ctx.self_id().index() as u32,
            session,
            shard: 0,
            payload: Payload::Fleet(ev),
        });
    }

    fn send(&self, ctx: &mut Context<'_, Wire<ShardMsg>>, to: u32, payload: FabricPayload) {
        ctx.send(self.relay, Wire::App(ShardMsg { to, payload }));
    }

    /// Appends `rec` unless the journal already carries it — replay after
    /// a crash re-drives the handshake and must not duplicate history.
    fn journal_once(&mut self, rec: GlobalRecord) {
        if !self.global_journal.contains(&rec) {
            self.global_journal.push(rec);
        }
    }

    fn is_released(&self, sid: u64, region: u32) -> bool {
        self.global_journal.contains(&GlobalRecord::Released { session: sid, region })
    }

    /// The retransmission hint for `payload`: releases are pure round
    /// trips, so the per-region RTT estimator times them tightly; requests
    /// wait on lock *queueing* at the region, so they keep the slow
    /// default schedule (a queued grant is not a lost one).
    fn rto_hint(&self, region: u32, payload: &FabricPayload) -> Option<SimDuration> {
        match payload {
            FabricPayload::LockRelease { .. } => self.rtt.get(&region).and_then(RttEstimator::rto),
            _ => None,
        }
    }

    /// Sends `payload` with the retransmission ladder armed under `tag`
    /// (replacing any prior ladder on the same tag).
    fn send_tracked(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        tag: u64,
        region: u32,
        payload: FabricPayload,
    ) {
        if let Some(prev) = self.outstanding.remove(&tag) {
            ctx.cancel_timer(prev.timer);
        }
        let session = payload.session();
        let hint = self.rto_hint(region, &payload);
        self.send(ctx, region, payload.clone());
        let delay = self.retry.deadline(0, tag ^ self.incarnation, hint);
        let timer = ctx.set_timer(delay, tag);
        self.outstanding.insert(
            tag,
            Outstanding {
                payload,
                region,
                session,
                attempts: 0,
                timer,
                sent_at: ctx.now().as_micros(),
            },
        );
    }

    /// Retires the ladder under `tag` (the awaited reply arrived).
    fn retire(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) -> Option<Outstanding> {
        let o = self.outstanding.remove(&tag)?;
        ctx.cancel_timer(o.timer);
        Some(o)
    }

    fn on_fabric_timer(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) {
        let Some(mut o) = self.outstanding.remove(&tag) else { return };
        o.attempts += 1;
        if o.attempts >= MAX_FABRIC_ATTEMPTS {
            if matches!(o.payload, FabricPayload::LockRelease { .. }) {
                // Past the lease horizon the region's restarted lock table
                // no longer carries the hold; the release is moot.
                self.orphaned_releases += 1;
            } else {
                self.abandon(ctx, o.session, o.region, o.attempts);
            }
            return;
        }
        let hint = self.rto_hint(o.region, &o.payload);
        let salt = tag ^ (u64::from(o.attempts) << 32) ^ self.incarnation;
        let delay = self.retry.deadline(o.attempts, salt, hint);
        self.retransmits += 1;
        self.emit(
            ctx,
            o.session,
            FleetEvent::FabricRetransmit {
                session: o.session,
                region: o.region,
                attempt: o.attempts,
            },
        );
        self.send(ctx, o.region, o.payload.clone());
        o.timer = ctx.set_timer(delay, tag);
        o.sent_at = ctx.now().as_micros();
        self.outstanding.insert(tag, o);
    }

    /// Terminal verdict for a straddler whose request ladder exhausted:
    /// journal the abandonment, conclude the inner session with a clean
    /// rejection, and release the acquired slice prefix.
    fn abandon(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        sid: u64,
        region: u32,
        attempts: u32,
    ) {
        let Some(ix) = self.straddlers.iter().position(|s| s.sid == sid) else { return };
        if self.straddlers[ix].phase != Phase::Granting {
            return;
        }
        self.journal_once(GlobalRecord::Abandoned { session: sid, region });
        self.abandoned += 1;
        self.emit(ctx, sid, FleetEvent::StraddlerAbandoned { session: sid, region, attempts });
        self.straddlers[ix].phase = Phase::Cancelled;
        self.cancelled_at.entry(sid).or_insert(ctx.now().as_micros());
        let upto = (self.straddlers[ix].next + 1).min(self.straddlers[ix].slices.len());
        self.release_slices(ctx, ix, upto);
        self.inner.conclude_rejected(
            ctx,
            sid,
            format!("abandoned: region {region} unreachable after {attempts} attempts"),
        );
    }

    fn request_slice(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        let s = &self.straddlers[ix];
        let slice_ix = s.next;
        let sl = s.slices[slice_ix].clone();
        let payload = FabricPayload::LockRequest {
            session: s.sid,
            resources: sl.resources,
            comps: sl.comps,
            priority: s.priority,
            epoch: self.incarnation,
        };
        self.send_tracked(ctx, fabric_tag(ix, slice_ix, false), sl.region, payload);
    }

    /// Sends `LockRelease` (final component values included) for the first
    /// `upto` slices of straddler `ix`, skipping slices whose release is
    /// already journaled as acknowledged, and retiring each slice's
    /// request ladder (the release supersedes it).
    fn release_slices(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize, upto: usize) {
        let s = &self.straddlers[ix];
        let sid = s.sid;
        let msgs: Vec<(usize, u32, FabricPayload)> = s.slices[..upto.min(s.slices.len())]
            .iter()
            .enumerate()
            .filter(|(_, sl)| !self.is_released(sid, sl.region))
            .map(|(sx, sl)| {
                let values: Vec<(u32, bool)> = sl
                    .comps
                    .iter()
                    .map(|&c| (c, self.inner.fleet_config.contains(CompId::from_index(c as usize))))
                    .collect();
                (
                    sx,
                    sl.region,
                    FabricPayload::LockRelease { session: sid, epoch: self.incarnation, values },
                )
            })
            .collect();
        for (sx, region, payload) in msgs {
            self.retire(ctx, fabric_tag(ix, sx, false));
            self.send_tracked(ctx, fabric_tag(ix, sx, true), region, payload);
        }
    }

    fn begin(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        if self.straddlers[ix].phase != Phase::Pending {
            return;
        }
        let sid = self.straddlers[ix].sid;
        let regions: Vec<u32> = self.straddlers[ix].slices.iter().map(|sl| sl.region).collect();
        self.journal_once(GlobalRecord::Escalated { session: sid, regions });
        self.straddlers[ix].phase = Phase::Granting;
        self.submitted_at.entry(sid).or_insert(ctx.now().as_micros());
        self.request_slice(ctx, ix);
    }

    fn on_granted(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        session: u64,
        region: u32,
        epoch: u64,
        values: Vec<(u32, bool)>,
    ) {
        if epoch != self.incarnation {
            return; // a dead incarnation's grant; the re-driven chain re-earns it
        }
        let Some(ix) = self.straddlers.iter().position(|s| s.sid == session) else { return };
        if self.straddlers[ix].phase != Phase::Granting {
            return; // a grant that raced a withdrawal; the release is out
        }
        let next = self.straddlers[ix].next;
        if next >= self.straddlers[ix].slices.len()
            || self.straddlers[ix].slices[next].region != region
        {
            return; // duplicate grant of an earlier slice in the chain
        }
        self.retire(ctx, fabric_tag(ix, next, false));
        self.journal_once(GlobalRecord::SliceGranted { session, region });
        for (c, v) in values {
            self.inner.fold_comp(CompId::from_index(c as usize), v);
        }
        self.straddlers[ix].next += 1;
        if self.straddlers[ix].next < self.straddlers[ix].slices.len() {
            self.request_slice(ctx, ix);
        } else {
            // Every slice held and the source configuration assembled from
            // the grants: run the full protocol against the local replicas.
            self.journal_once(GlobalRecord::Submitted { session });
            self.straddlers[ix].phase = Phase::Running;
            let sid = self.straddlers[ix].sid;
            self.inner.submit_session(ctx, sid);
            self.sweep(ctx);
        }
    }

    fn on_ack(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        session: u64,
        region: u32,
        epoch: u64,
    ) {
        if epoch != self.incarnation {
            return;
        }
        let Some((&tag, _)) = self.outstanding.iter().find(|(_, o)| {
            o.session == session
                && o.region == region
                && matches!(o.payload, FabricPayload::LockRelease { .. })
        }) else {
            return; // duplicate ack — the ladder is already retired
        };
        let o = self.retire(ctx, tag).expect("entry just found");
        if o.attempts == 0 {
            // Karn's rule: only never-retransmitted releases time the
            // round trip — an ack for any retransmission is ambiguous.
            let sample = ctx.now().as_micros().saturating_sub(o.sent_at);
            self.rtt.entry(region).or_default().observe(SimDuration::from_micros(sample));
        }
        self.journal_once(GlobalRecord::Released { session, region });
    }

    fn withdraw(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        match self.straddlers[ix].phase {
            Phase::Pending => {
                self.journal_once(GlobalRecord::Withdrawn { session: self.straddlers[ix].sid });
                self.straddlers[ix].phase = Phase::Cancelled;
                self.cancelled_at.insert(self.straddlers[ix].sid, ctx.now().as_micros());
            }
            Phase::Granting => {
                // Release every slice acquired or requested so far; a
                // still-queued request is cancelled by the region, a grant
                // in flight is answered by the (edge-FIFO) release behind it.
                self.journal_once(GlobalRecord::Withdrawn { session: self.straddlers[ix].sid });
                let upto = (self.straddlers[ix].next + 1).min(self.straddlers[ix].slices.len());
                self.release_slices(ctx, ix, upto);
                self.straddlers[ix].phase = Phase::Cancelled;
                self.cancelled_at.insert(self.straddlers[ix].sid, ctx.now().as_micros());
            }
            _ => {} // admitted or finished in the meantime — too late
        }
    }

    /// Detects straddlers whose inner session reached a terminal result and
    /// flows their final scope values back to the owning regions.
    fn sweep(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        for ix in 0..self.straddlers.len() {
            if self.straddlers[ix].phase == Phase::Running
                && self.inner.is_done(self.straddlers[ix].sid)
            {
                self.straddlers[ix].phase = Phase::Done;
                let n = self.straddlers[ix].slices.len();
                self.release_slices(ctx, ix, n);
            }
        }
    }

    /// Rebuilds one straddler's wrapper state from the durable journal
    /// after a crash, re-driving its handshake under the new incarnation.
    fn restore_straddler(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        let sid = self.straddlers[ix].sid;
        let mut escalated = false;
        let mut submitted = false;
        let mut terminal = false;
        let mut granted = 0usize;
        for rec in &self.global_journal {
            match rec {
                GlobalRecord::Escalated { session, .. } if *session == sid => escalated = true,
                GlobalRecord::SliceGranted { session, .. } if *session == sid => granted += 1,
                GlobalRecord::Submitted { session } if *session == sid => submitted = true,
                GlobalRecord::Withdrawn { session } if *session == sid => terminal = true,
                GlobalRecord::Abandoned { session, .. } if *session == sid => terminal = true,
                _ => {}
            }
        }
        let now_us = ctx.now().as_micros();
        let n = self.straddlers[ix].slices.len();
        if terminal {
            // Withdrawn or abandoned before the crash: re-issue the
            // releases that never got acknowledged.
            self.straddlers[ix].phase = Phase::Cancelled;
            self.straddlers[ix].next = granted;
            self.cancelled_at.entry(sid).or_insert(now_us);
            self.release_slices(ctx, ix, (granted + 1).min(n));
            return;
        }
        if submitted {
            // The inner journal replay already restored (or finished) the
            // session itself; the wrapper only re-drives the release flow.
            self.straddlers[ix].next = n;
            if self.inner.is_done(sid) {
                self.straddlers[ix].phase = Phase::Done;
                self.release_slices(ctx, ix, n);
            } else {
                self.straddlers[ix].phase = Phase::Running;
            }
        } else if escalated {
            // A partial ascending chain died with the old incarnation:
            // re-drive it from slice 0 under the new epoch. Regions still
            // holding old-epoch leases reclaim them (grant values re-fold
            // idempotently — the slices stayed locked throughout).
            self.straddlers[ix].phase = Phase::Granting;
            self.straddlers[ix].next = 0;
            self.request_slice(ctx, ix);
        } else {
            // Never escalated: requeue. The crash dropped the submit
            // timer, so re-arm it (or begin immediately if it is due).
            self.straddlers[ix].phase = Phase::Pending;
            self.straddlers[ix].next = 0;
            let due = self.straddlers[ix].submit_at.as_micros();
            if due > now_us {
                ctx.set_timer(
                    SimDuration::from_micros(due - now_us),
                    TAG_GLOBAL_SUBMIT + ix as u64,
                );
            } else {
                self.begin(ctx, ix);
            }
        }
        // Pending/Granting/Running straddlers keep their withdrawal
        // deadline across the crash.
        if matches!(self.straddlers[ix].phase, Phase::Pending | Phase::Granting) {
            if let Some(at) = self.straddlers[ix].cancel_at {
                let due = at.as_micros();
                if due > now_us {
                    ctx.set_timer(
                        SimDuration::from_micros(due - now_us),
                        TAG_GLOBAL_CANCEL + ix as u64,
                    );
                } else {
                    self.withdraw(ctx, ix);
                }
            }
        }
    }
}

impl Actor<Wire<ShardMsg>> for GlobalControl {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        self.inner.on_start(ctx);
        for ix in 0..self.straddlers.len() {
            ctx.set_timer(self.straddlers[ix].submit_at, TAG_GLOBAL_SUBMIT + ix as u64);
            if let Some(at) = self.straddlers[ix].cancel_at {
                ctx.set_timer(at, TAG_GLOBAL_CANCEL + ix as u64);
            }
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        match msg {
            Wire::App(m) => match m.payload {
                FabricPayload::LockGranted { session, region, epoch, values } => {
                    self.on_granted(ctx, session, region, epoch, values);
                }
                FabricPayload::ReleaseAck { session, region, epoch } => {
                    self.on_ack(ctx, session, region, epoch);
                }
                // The global tier never receives requests or releases.
                FabricPayload::LockRequest { .. } | FabricPayload::LockRelease { .. } => {}
            },
            other => {
                self.inner.on_message(ctx, from, other);
                self.sweep(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) {
        if tag >= TAG_INNER_BASE {
            self.inner.on_timer(ctx, tag);
            self.sweep(ctx);
        } else if tag >= TAG_GLOBAL_CANCEL {
            self.withdraw(ctx, (tag - TAG_GLOBAL_CANCEL) as usize);
        } else if tag >= TAG_GLOBAL_SUBMIT {
            self.begin(ctx, (tag - TAG_GLOBAL_SUBMIT) as usize);
        } else if tag >= TAG_FABRIC_BASE {
            self.on_fabric_timer(ctx, tag);
        } else {
            self.inner.on_timer(ctx, tag);
            self.sweep(ctx);
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        // The durable image — global journal, incarnation, lifecycle
        // instants, history counters — survives; in-flight ladders and RTT
        // estimates die with the process.
        self.inner.on_crash(now);
        self.outstanding.clear();
        self.rtt.clear();
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        self.incarnation += 1;
        self.inner.on_restart(ctx);
        // Replay straddlers in journal order (first appearance) so
        // re-driven handshakes hit the fabric in the same order the dead
        // incarnation decided them; never-journaled straddlers follow in
        // scenario order.
        let mut order: Vec<usize> = Vec::new();
        for rec in &self.global_journal {
            let sid = match rec {
                GlobalRecord::Escalated { session, .. } => *session,
                _ => continue,
            };
            if let Some(ix) = self.straddlers.iter().position(|s| s.sid == sid) {
                if !order.contains(&ix) {
                    order.push(ix);
                }
            }
        }
        for ix in 0..self.straddlers.len() {
            if !order.contains(&ix) {
                order.push(ix);
            }
        }
        for ix in order {
            self.restore_straddler(ctx, ix);
        }
        self.sweep(ctx);
    }
}

// ---------------------------------------------------------------------------
// Endpoints and the conservative executor
// ---------------------------------------------------------------------------

/// Everything a worker thread needs to *build* one endpoint — plain data,
/// since simulators are constructed inside the owning thread.
#[derive(Clone)]
struct EndpointPlan {
    id: u32,
    specs: Vec<SessionSpec>,
    straddlers: Vec<StraddlerPlan>,
    inbound: Vec<u32>,
    outbound: Vec<u32>,
    owned_groups: Vec<usize>,
    crash: Option<(SimTime, SimTime)>,
    is_global: bool,
}

#[derive(Clone)]
struct StraddlerPlan {
    sid: u64,
    priority: u8,
    submit_at: SimDuration,
    cancel_at: Option<SimDuration>,
    slices: Vec<Slice>,
}

/// One endpoint (a region or the global tier) under conservative execution.
struct Endpoint {
    id: u32,
    shard_tag: u32,
    sim: Simulator<Wire<ShardMsg>>,
    control_id: ActorId,
    relay_id: ActorId,
    outbox: Outbox,
    ring: Rc<RefCell<RingSink>>,
    /// Sharded bus clone for executor-level (fault) events.
    bus: Bus,
    inbound: Vec<u32>,
    outbound: Vec<u32>,
    staged: BTreeMap<u64, Vec<FabricEnvelope>>,
    ran_to_us: u64,
    budget_us: u64,
    done: bool,
    sessions: Vec<u64>,
    /// Components whose final values this endpoint is authoritative for:
    /// the full membership of every owned cluster.
    owned_comps: Vec<u32>,
    is_global: bool,
    /// Whether to render this endpoint's journal to text at distillation
    /// (mirrors [`FleetScenario::render_journal`]).
    render_journal: bool,
}

fn build_endpoint(
    scn: &FleetScenario,
    regions: usize,
    budget_us: u64,
    plan: &EndpointPlan,
) -> Endpoint {
    let world = Rc::new(scn.build_world());
    let seed = scn.seed.wrapping_add(u64::from(plan.id).wrapping_mul(SEED_STRIDE));
    let mut sim: Simulator<Wire<ShardMsg>> = Simulator::new(seed);
    sim.set_default_link(LinkConfig::reliable(scn.link_latency));

    let bus = Bus::new();
    let ring = Rc::new(RefCell::new(RingSink::new(1 << 18)));
    bus.attach(&ring);
    let shard_tag = plan.id + 1;
    let sharded = bus.sharded(shard_tag);

    // Replicate `run_fleet`'s exact actor layout — all agents, control at
    // the next index — so a one-region run is event-identical to the
    // unsharded driver; the fabric relay takes the slot after that.
    let procs = world.model.process_count();
    let control_id = ActorId::from_index(procs);
    let relay_id = ActorId::from_index(procs + 1);
    crate::driver::emit_domain_tag(&sharded, &world, control_id);
    let mut agents = Vec::with_capacity(procs);
    let mut arena = crate::arena::AgentArena::with_capacity(control_id, sharded.clone(), procs);
    for p in 0..procs {
        let timing = match scn.slow_agents.iter().find(|&&(ix, _)| ix == p) {
            Some(&(_, factor)) => scale_timing(AgentTiming::default(), factor),
            None => AgentTiming::default(),
        };
        arena.push_member(timing);
    }
    let arena_id = sim.add_arena(arena);
    for p in 0..procs {
        agents.push(sim.add_arena_member(&format!("agent-{p}"), arena_id, p as u32));
    }
    let inner = ControlActor::<ShardMsg>::new(
        Rc::clone(&world),
        agents,
        plan.specs.clone(),
        scn.timing,
        scn.serialize,
    )
    .with_resilience(scn.resilience)
    .with_bus(sharded.clone());
    let got = if plan.is_global {
        let straddlers = plan
            .straddlers
            .iter()
            .map(|s| Straddler {
                sid: s.sid,
                priority: s.priority,
                submit_at: s.submit_at,
                cancel_at: s.cancel_at,
                slices: s.slices.clone(),
                next: 0,
                phase: Phase::Pending,
            })
            .collect();
        sim.add_actor(
            "global-control",
            GlobalControl {
                inner,
                relay: relay_id,
                bus: sharded.clone(),
                straddlers,
                submitted_at: HashMap::new(),
                cancelled_at: HashMap::new(),
                global_journal: Vec::new(),
                incarnation: 0,
                retransmits: 0,
                abandoned: 0,
                orphaned_releases: 0,
                retry: RetryPolicy {
                    jitter_seed: scn.seed ^ 0x05AD_AFAB,
                    ..RetryPolicy::adaptive()
                },
                rtt: HashMap::new(),
                outstanding: HashMap::new(),
            },
        )
    } else {
        sim.add_actor(
            "control",
            RegionControl {
                inner,
                relay: relay_id,
                region_id: plan.id,
                global_ep: regions as u32,
                bus: sharded.clone(),
                foreign: BTreeMap::new(),
                released: HashMap::new(),
                lease_reclaims: 0,
                lease_deadline: HashMap::new(),
                lease_slots: Vec::new(),
                lease_expirations: 0,
            },
        )
    };
    assert_eq!(got, control_id, "control plane must sit after the agents");
    let outbox: Outbox = Rc::new(RefCell::new(Vec::new()));
    let got = sim.add_actor("fabric-relay", FabricRelay { outbox: Rc::clone(&outbox) });
    assert_eq!(got, relay_id, "fabric relay must sit after the control plane");

    if let Some((crash, restart)) = plan.crash {
        sim.crash_at(control_id, crash);
        sim.restart_at(control_id, restart);
    }

    Endpoint {
        id: plan.id,
        shard_tag,
        sim,
        control_id,
        relay_id,
        outbox,
        ring,
        bus: sharded,
        inbound: plan.inbound.clone(),
        outbound: plan.outbound.clone(),
        staged: BTreeMap::new(),
        ran_to_us: 0,
        budget_us,
        done: false,
        sessions: plan.specs.iter().map(|s| s.id).collect(),
        owned_comps: plan
            .owned_groups
            .iter()
            .flat_map(|&g| world.cluster_comps(g).iter().map(|&c| c as u32))
            .collect(),
        is_global: plan.is_global,
        render_journal: scn.render_journal,
    }
}

impl Endpoint {
    fn run_to(&mut self, us: u64) -> bool {
        if us <= self.ran_to_us && !(us == 0 && self.ran_to_us == 0 && !self.done) {
            return false;
        }
        self.sim.run_until(SimTime::from_micros(us));
        let progressed = us > self.ran_to_us;
        self.ran_to_us = us.max(self.ran_to_us);
        progressed
    }

    /// One conservative scheduling step: drain inbound fabric mail, inject
    /// every arrival-complete batch at its quantized instant (sorted by
    /// `(src, seq)`), and advance local virtual time to the horizon every
    /// inbound promise allows. Returns whether anything moved.
    fn step(&mut self, fabric: &Fabric) -> bool {
        let mut progressed = false;
        let safe = {
            let mut st = fabric.state.lock().unwrap();
            for &src in &self.inbound {
                let e = st.edges.get_mut(&(src, self.id)).expect("active inbound edge");
                for env in e.mail.drain(..) {
                    self.staged.entry(env.arrival_us).or_default().push(env);
                }
            }
            // GVT bookkeeping: mail leaves the globally visible mailboxes
            // here, so in the *same* critical section fold its earliest
            // arrival into this endpoint's published bound — an envelope
            // is never invisible to a concurrent `gvt()` scan.
            if fabric.fastpath && !self.outbound.is_empty() {
                if let Some(&t) = self.staged.keys().next() {
                    let b = st.local_bound.entry(self.id).or_insert(0);
                    *b = (*b).min(t);
                }
            }
            self.inbound
                .iter()
                .map(|&src| st.edges[&(src, self.id)].promise_us)
                .min()
                .unwrap_or(u64::MAX)
        };
        loop {
            let next_batch = self.staged.keys().next().copied();
            if let Some(t) = next_batch {
                // A batch is complete once every inbound edge promises no
                // further arrival at or before it.
                if t <= self.budget_us && safe > t {
                    if t > 0 {
                        self.run_to(t - 1);
                    }
                    let mut batch = self.staged.remove(&t).expect("just peeked");
                    batch.sort_by_key(|e| (e.src, e.seq));
                    let now = self.sim.now().as_micros();
                    let msgs: Vec<Wire<ShardMsg>> = batch
                        .into_iter()
                        .map(|env| Wire::App(ShardMsg { to: self.id, payload: env.payload }))
                        .collect();
                    self.sim.inject_batch(
                        self.relay_id,
                        self.control_id,
                        msgs,
                        SimDuration::from_micros(t - now),
                    );
                    progressed = true;
                    continue;
                }
            }
            let mut horizon = self.budget_us;
            if let Some(t) = next_batch {
                horizon = horizon.min(t.saturating_sub(1));
            }
            horizon = horizon.min(safe.saturating_sub(1));
            progressed |= self.run_to(horizon);
            break;
        }
        progressed |= self.flush(fabric, safe);
        if !self.done
            && self.ran_to_us >= self.budget_us
            && self.staged.keys().next().is_none_or(|&t| t > self.budget_us)
            && safe > self.budget_us
        {
            self.done = true;
            progressed = true;
        }
        progressed
    }

    /// Publishes outbox messages and refreshed arrival promises. The
    /// promise is the null message of the conservative protocol: arrival
    /// instant of the earliest message this endpoint could still send,
    /// derived from its next local event, its staged inbound arrivals, and
    /// what its own inbound edges promise.
    ///
    /// The fault plan is applied here, at the sender, as messages enter the
    /// fabric: drops consume the sequence number without mailing, delays
    /// push the arrival to a later quantum boundary (reordering it behind
    /// later sends), duplicates mail a second envelope one quantum later.
    /// Every decision is a pure hash of `(seed, src, dst, seq)`, so the
    /// lossy schedule is part of the scenario, not the execution.
    fn flush(&mut self, fabric: &Fabric, safe: u64) -> bool {
        if self.outbound.is_empty() {
            debug_assert!(self.outbox.borrow().is_empty(), "fabric send without an active edge");
            return false;
        }
        let out: Vec<(u32, u64, FabricPayload)> = self.outbox.borrow_mut().drain(..).collect();
        let next_ev = self.sim.next_event_at().map_or(u64::MAX, |t| t.as_micros());
        let next_staged = self.staged.keys().next().copied().unwrap_or(u64::MAX);
        let lb = next_ev.min(next_staged).min(safe);
        let mut progressed = false;
        let faults = &fabric.faults;
        let quantum = fabric.quantum_us;
        let mut fault_events: Vec<Event> = Vec::new();
        let mut st = fabric.state.lock().unwrap();
        for (dst, send_us, payload) in out {
            let e = st.edges.get_mut(&(self.id, dst)).expect("fabric send on an inactive edge");
            let seq = e.next_seq;
            e.next_seq += 1;
            e.sent += 1;
            let mut arrival_us = fabric.arrival_of(send_us);
            if faults.is_active() && faults.armed_at(send_us) {
                if faults.roll(fault_salt(self.id, dst, seq, SALT_DROP), faults.drop_per_mille) {
                    // The sequence number is consumed — retransmissions get
                    // their own, keeping replay deterministic.
                    e.dropped += 1;
                    fault_events.push(self.fault_event(
                        send_us,
                        payload.session(),
                        FleetEvent::FabricDropped { src: self.id, dst, seq },
                    ));
                    progressed = true;
                    continue;
                }
                if faults.roll(fault_salt(self.id, dst, seq, SALT_DELAY), faults.delay_per_mille) {
                    let span = u64::from(faults.max_delay_quanta.max(1));
                    let quanta = 1 + jitter_us(
                        faults.seed,
                        fault_salt(self.id, dst, seq, SALT_DELAY_AMT),
                        span,
                    );
                    // Still ≥ the published promise (which lower-bounds the
                    // *undelayed* arrival), so the conservative clock holds.
                    arrival_us += quanta * quantum;
                    e.delayed += 1;
                    fault_events.push(self.fault_event(
                        send_us,
                        payload.session(),
                        FleetEvent::FabricDelayed { src: self.id, dst, seq, quanta: quanta as u32 },
                    ));
                }
                if faults.roll(fault_salt(self.id, dst, seq, SALT_DUP), faults.dup_per_mille) {
                    let dup_seq = e.next_seq;
                    e.next_seq += 1;
                    e.sent += 1;
                    e.duplicated += 1;
                    e.mail.push(FabricEnvelope {
                        arrival_us: arrival_us + quantum,
                        src: self.id,
                        seq: dup_seq,
                        payload: payload.clone(),
                    });
                    fault_events.push(self.fault_event(
                        send_us,
                        payload.session(),
                        FleetEvent::FabricDuplicated { src: self.id, dst, seq },
                    ));
                }
            }
            e.mail.push(FabricEnvelope { arrival_us, src: self.id, seq, payload });
            progressed = true;
        }
        let mut promise = if lb > self.budget_us { u64::MAX } else { fabric.arrival_of(lb) };
        if fabric.fastpath {
            // Publish this endpoint's raw event horizon, then lift the
            // promise to the global bound when it clears the quantum-step
            // one — "no future sends" collapses the idle null-message walk
            // into a single jump. Scheduling-only: fingerprints are
            // asserted identical with the fast path on or off.
            st.local_bound.insert(self.id, next_ev.min(next_staged));
            let gvt = st.gvt();
            let gvt_promise = if gvt > self.budget_us { u64::MAX } else { fabric.arrival_of(gvt) };
            promise = promise.max(gvt_promise);
        }
        for &dst in &self.outbound {
            let e = st.edges.get_mut(&(self.id, dst)).expect("active outbound edge");
            if promise > e.promise_us {
                // Null-message suppression: each distinct promise value is
                // dropped at most once per edge, so the periodic re-flush
                // always lands the second attempt — slowed, never stopped.
                if promise != u64::MAX
                    && faults.null_drop_per_mille > 0
                    && faults.armed_at(promise)
                    && promise != e.last_dropped_promise
                    && faults.roll(
                        fault_salt(self.id, dst, promise, SALT_NULL),
                        faults.null_drop_per_mille,
                    )
                {
                    e.last_dropped_promise = promise;
                    e.nulls_dropped += 1;
                    continue;
                }
                e.promise_us = promise;
                st.promise_updates += 1;
                progressed = true;
            }
        }
        drop(st);
        // Emitted outside the fabric lock; ring order stays deterministic
        // because `run_to` never splits same-instant sim events across a
        // flush, so every fault event lands after all sim events at its
        // send instant regardless of how many flushes the wall clock saw.
        for ev in fault_events {
            self.bus.emit(ev);
        }
        if progressed {
            fabric.cv.notify_all();
        }
        progressed
    }

    /// A fault event stamped at the faulted message's virtual send instant,
    /// attributed to the fabric relay.
    fn fault_event(&self, send_us: u64, session: u64, ev: FleetEvent) -> Event {
        Event {
            at: SimTime::from_micros(send_us),
            actor: self.relay_id.index() as u32,
            session,
            shard: 0,
            payload: Payload::Fleet(ev),
        }
    }
}

// ---------------------------------------------------------------------------
// Distillation
// ---------------------------------------------------------------------------

/// Per-shard slice of a [`ShardReport`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard tag (region index + 1; the global tier is `regions + 1`).
    pub shard: u32,
    /// True for the global (straddler) tier.
    pub is_global: bool,
    /// Sessions owned by this shard.
    pub sessions: usize,
    /// Sessions that reached a terminal result here.
    pub completed: usize,
    /// Events this shard contributed to the merged stream.
    pub events: usize,
    /// Messages its simulator delivered.
    pub delivered: u64,
    /// Times its control plane was rebuilt from the journal.
    pub restores: u64,
    /// Plan-cache hits in its final control-plane incarnation.
    pub cache_hits: u64,
    /// Plan-cache misses in its final control-plane incarnation.
    pub cache_misses: u64,
}

/// Plain-data result a worker thread ships back for one endpoint.
struct EndpointOutcome {
    id: u32,
    shard_tag: u32,
    is_global: bool,
    events: Vec<Event>,
    journal_text: String,
    global_journal_text: String,
    results: Vec<SessionResult>,
    config: Vec<(u32, bool)>,
    intervals: Vec<(u64, Option<u64>)>,
    restores: u64,
    stats: NetStats,
    cache: PlanCacheStats,
    shed: u64,
    rejected: u64,
    breaker_trips: u64,
    suppressed_sends: u64,
    retransmits: u64,
    abandoned: u64,
    orphaned_releases: u64,
    lease_reclaims: u64,
    lease_expirations: u64,
    /// Lock-table + foreign-hold residue at quiescence (leak detector).
    residual_holds: u64,
}

fn distill_endpoint(ep: Endpoint) -> EndpointOutcome {
    let events = ep.ring.borrow().events();
    let (ctl, wrapper_submitted, wrapper_cancelled, global_journal_text, fabric_counters) =
        if ep.is_global {
            let g = ep.sim.actor::<GlobalControl>(ep.control_id).expect("global control present");
            (
                &g.inner,
                Some(&g.submitted_at),
                Some(&g.cancelled_at),
                encode_global_journal(&g.global_journal),
                (g.retransmits, g.abandoned, g.orphaned_releases, 0, 0, 0),
            )
        } else {
            let r = ep.sim.actor::<RegionControl>(ep.control_id).expect("region control present");
            (
                &r.inner,
                None,
                None,
                String::new(),
                (0, 0, 0, r.lease_reclaims, r.lease_expirations, r.foreign.len() as u64),
            )
        };
    let mut ids = ep.sessions.clone();
    ids.sort_unstable();
    let results: Vec<SessionResult> = ids
        .iter()
        .map(|&id| {
            let outcome = ctl.results.get(&id);
            let mut r = SessionResult {
                id,
                submitted_at: ctl.submitted_at.get(&id).map(|t| t.as_micros()),
                admitted_at: ctl.admitted_at.get(&id).map(|t| t.as_micros()),
                completed_at: ctl.completed_at.get(&id).map(|t| t.as_micros()),
                success: outcome.is_some_and(|o| o.success),
                gave_up: outcome.is_some_and(|o| o.gave_up),
                cancelled: outcome
                    .is_some_and(|o| o.warnings.iter().any(|w| w.contains("cancelled"))),
                shed: outcome.is_some_and(|o| o.warnings.iter().any(|w| w.contains("shed"))),
                admission: ctl.admissions.get(&id).copied(),
            };
            // Straddlers: submission happens at the wrapper (the inner spec
            // carries a sentinel), and a pre-submission withdrawal never
            // reaches the inner plane at all.
            if let Some(subs) = wrapper_submitted {
                if let Some(&t) = subs.get(&id) {
                    r.submitted_at = Some(r.submitted_at.map_or(t, |x| x.min(t)));
                }
            }
            if let Some(cans) = wrapper_cancelled {
                if let (Some(&t), None) = (cans.get(&id), r.completed_at) {
                    r.cancelled = true;
                    r.completed_at = Some(t);
                }
            }
            r
        })
        .collect();
    let config: Vec<(u32, bool)> = ep
        .owned_comps
        .iter()
        .map(|&c| (c, ctl.fleet_config.contains(CompId::from_index(c as usize))))
        .collect();
    let intervals: Vec<(u64, Option<u64>)> = ctl
        .admitted_at
        .iter()
        .map(|(id, at)| (at.as_micros(), ctl.completed_at.get(id).map(|t| t.as_micros())))
        .collect();
    EndpointOutcome {
        id: ep.id,
        shard_tag: ep.shard_tag,
        is_global: ep.is_global,
        events,
        journal_text: if ep.render_journal {
            encode_session_journal(&ctl.journal)
        } else {
            String::new()
        },
        global_journal_text,
        results,
        config,
        intervals,
        restores: ctl.restores,
        stats: ep.sim.stats(),
        cache: ctl.cache_stats(),
        shed: ctl.shed_count,
        rejected: ctl.rejected_count,
        breaker_trips: ctl.breaker_trips,
        suppressed_sends: ctl.suppressed_sends,
        retransmits: fabric_counters.0,
        abandoned: fabric_counters.1,
        orphaned_releases: fabric_counters.2,
        lease_reclaims: fabric_counters.3,
        lease_expirations: fabric_counters.4,
        residual_holds: fabric_counters.5 + ctl.lock_holder_count() as u64,
    }
}

fn run_worker(
    scn: &FleetScenario,
    regions: usize,
    budget_us: u64,
    plans: Vec<EndpointPlan>,
    fabric: &Fabric,
) -> Vec<EndpointOutcome> {
    let mut eps: Vec<Endpoint> =
        plans.iter().map(|p| build_endpoint(scn, regions, budget_us, p)).collect();
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for ep in &mut eps {
            if ep.done {
                continue;
            }
            while ep.step(fabric) {
                progressed = true;
            }
            all_done &= ep.done;
        }
        if all_done {
            break;
        }
        if !progressed {
            // Blocked on a peer's virtual clock: park until a promise or
            // message lands (timeout only as a lost-wakeup safety net).
            let st = fabric.state.lock().unwrap();
            let _ = fabric
                .cv
                .wait_timeout(st, std::time::Duration::from_millis(1))
                .expect("fabric lock poisoned");
        }
    }
    eps.into_iter().map(distill_endpoint).collect()
}

// ---------------------------------------------------------------------------
// Report and driver
// ---------------------------------------------------------------------------

/// Everything a sharded fleet run produced.
pub struct ShardReport {
    /// Per-session results across all shards, ascending by session id.
    pub results: Vec<SessionResult>,
    /// The fleet configuration merged from the regions' authoritative
    /// per-group values, as a bit string.
    pub final_config: String,
    /// The deterministically merged event stream: ordered by `(virtual
    /// time, shard, intra-shard order)`, every event stamped with its shard.
    pub events: Vec<Event>,
    /// FNV-1a fingerprint of the merged stream (shard tags included) —
    /// bit-for-bit identical across worker-thread counts.
    pub fingerprint: u64,
    /// Per-shard write-ahead journals `(shard tag, text)`.
    pub journals: Vec<(u32, String)>,
    /// The global tier's write-ahead journal (empty without straddlers) —
    /// the durable record every crash/restore replays.
    pub global_journal: String,
    /// Per-shard statistics, region order then the global tier.
    pub per_shard: Vec<ShardStats>,
    /// Cross-shard traffic counters.
    pub fabric: FabricStats,
    /// Control-plane restores summed over shards.
    pub restores: u64,
    /// Peak simultaneously admitted sessions across the whole fleet.
    pub max_concurrent: usize,
    /// First submission → last completion, virtual μs, across shards.
    pub makespan_us: u64,
    /// Sessions shed by bulkhead admission control (all shards).
    pub shed: u64,
    /// Sessions rejected behind open breakers (all shards).
    pub rejected: u64,
    /// Circuit-breaker trips (all shards).
    pub breaker_trips: u64,
    /// Protocol sends suppressed by open breakers (all shards).
    pub suppressed_sends: u64,
    /// Fabric retransmissions the global tier's ladder issued.
    pub retransmits: u64,
    /// Straddlers abandoned after the ladder exhausted against a region.
    pub abandoned: u64,
    /// Releases given up past the lease horizon (region presumed dead).
    pub orphaned_releases: u64,
    /// Region leases evicted from a dead global incarnation (all regions).
    pub lease_reclaims: u64,
    /// Foreign holds garbage-collected after a silent lease horizon (all
    /// regions) — each one a lock-table entry that PR 8 would have leaked.
    pub lease_expirations: u64,
    /// Lock-table + foreign-hold residue at quiescence, summed over all
    /// control planes. Zero after any run whose sessions all terminated:
    /// every grant was released, cancelled, or lease-expired.
    pub residual_holds: u64,
    /// Wall-clock duration of the parallel run.
    pub wall: std::time::Duration,
}

impl ShardReport {
    /// The result row for session `id`.
    pub fn session(&self, id: u64) -> Option<&SessionResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Sessions that committed their adaptation.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.success).count()
    }
}

/// FNV-1a fingerprint over the encoded event stream, shard tags included —
/// the bit-for-bit identity compared across worker-thread counts.
pub fn fingerprint_events(events: &[Event]) -> u64 {
    let mut h = FNV_BASIS;
    let mut line = String::with_capacity(128);
    for ev in events {
        line.clear();
        encode_event_into(&mut line, ev);
        line.push('\n');
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Like [`fingerprint_events`] with shard tags normalized to zero — the
/// identity compared between a one-region sharded run and the unsharded
/// [`run_fleet`](crate::run_fleet) driver.
pub fn fingerprint_events_unsharded(events: &[Event]) -> u64 {
    let mut h = FNV_BASIS;
    let mut line = String::with_capacity(128);
    for ev in events {
        let mut ev = ev.clone();
        ev.shard = 0;
        line.clear();
        encode_event_into(&mut line, &ev);
        line.push('\n');
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Runs `scenario` sharded across `threads` worker threads and reports.
///
/// Thread count is pure execution policy: any value produces bit-for-bit
/// identical results, journals, and event streams for a fixed scenario.
pub fn run_fleet_sharded(scenario: &ShardScenario, threads: usize) -> ShardReport {
    let fleet = &scenario.fleet;
    let regions = scenario.regions;
    assert!(threads >= 1, "at least one worker thread");
    assert!(regions >= 1 && regions <= fleet.groups.max(1), "1 ≤ regions ≤ groups");
    assert!(fleet.crash_control.is_none(), "sharded runs target faults via crash_region");
    assert!(fleet.faults.is_empty(), "sharded runs target faults via crash_region");
    assert!(!fleet.serialize, "the serial baseline is inherently unsharded");
    if let Some((r, _, _)) = scenario.crash_region {
        assert!(r < regions, "crash_region out of range");
    }
    let budget_us = fleet.time_budget.as_micros();
    let quantum_us = fleet.link_latency.as_micros().max(1);

    // Partition the workload by the fixed region map.
    let world = fleet.build_world();
    let mut per_region: Vec<Vec<SessionSpec>> = vec![Vec::new(); regions];
    let mut straddlers: Vec<(SessionSpec, Vec<usize>)> = Vec::new();
    for spec in &fleet.sessions {
        let mut rs: Vec<usize> = spec.flips.iter().map(|&(g, _)| scenario.region_of(g)).collect();
        rs.sort_unstable();
        rs.dedup();
        if rs.len() <= 1 {
            per_region[rs.first().copied().unwrap_or(0)].push(spec.clone());
        } else {
            straddlers.push((spec.clone(), rs));
        }
    }
    let involved: Vec<u32> = straddlers
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(|&r| r as u32))
        .collect::<BTreeSet<u32>>()
        .into_iter()
        .collect();
    let global_ep = regions as u32;

    let mut plans: Vec<EndpointPlan> = (0..regions)
        .map(|r| {
            let active = involved.contains(&(r as u32));
            EndpointPlan {
                id: r as u32,
                specs: per_region[r].clone(),
                straddlers: Vec::new(),
                inbound: if active { vec![global_ep] } else { Vec::new() },
                outbound: if active { vec![global_ep] } else { Vec::new() },
                owned_groups: (0..fleet.groups).filter(|&g| scenario.region_of(g) == r).collect(),
                crash: scenario.crash_region.and_then(|(cr, a, b)| (cr == r).then_some((a, b))),
                is_global: false,
            }
        })
        .collect();
    if !straddlers.is_empty() {
        // The inner scenario carries beyond-budget submission sentinels:
        // the wrapper owns the pre-submission lifecycle and submits only
        // once every region slice is held.
        let specs: Vec<SessionSpec> = straddlers
            .iter()
            .map(|(s, _)| SessionSpec {
                submit_at: SimDuration::from_micros(2 * budget_us + s.submit_at.as_micros()),
                ..s.clone()
            })
            .collect();
        let plan_straddlers: Vec<StraddlerPlan> = straddlers
            .iter()
            .map(|(s, rs)| StraddlerPlan {
                sid: s.id,
                priority: s.priority,
                submit_at: s.submit_at,
                cancel_at: s.cancel_at,
                slices: rs
                    .iter()
                    .map(|&r| {
                        let flips_r: Vec<(usize, bool)> = s
                            .flips
                            .iter()
                            .copied()
                            .filter(|&(g, _)| scenario.region_of(g) == r)
                            .collect();
                        let comps = world.scope_comps(&flips_r);
                        Slice {
                            region: r as u32,
                            resources: world.resources_for(&comps),
                            comps: comps.iter().map(|c| c.index() as u32).collect(),
                        }
                    })
                    .collect(),
            })
            .collect();
        plans.push(EndpointPlan {
            id: global_ep,
            specs,
            straddlers: plan_straddlers,
            inbound: involved.clone(),
            outbound: involved.clone(),
            owned_groups: Vec::new(),
            crash: scenario.crash_global,
            is_global: true,
        });
    }

    let fabric = Arc::new(Fabric::new(
        &involved,
        global_ep,
        quantum_us,
        scenario.fabric_faults.clone(),
        scenario.promise_fastpath,
    ));
    let started = Instant::now();
    let mut outcomes: Vec<EndpointOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let mine: Vec<EndpointPlan> =
                plans.iter().filter(|p| p.id as usize % threads == w).cloned().collect();
            if mine.is_empty() {
                continue;
            }
            let fabric = Arc::clone(&fabric);
            handles.push(scope.spawn(move || run_worker(fleet, regions, budget_us, mine, &fabric)));
        }
        for h in handles {
            outcomes.extend(h.join().expect("shard worker panicked"));
        }
    });
    let wall = started.elapsed();
    outcomes.sort_by_key(|o| o.id);

    // Deterministic event merge: (virtual time, shard, intra-shard order).
    let total_events: usize = outcomes.iter().map(|o| o.events.len()).sum();
    let mut keys: Vec<(u64, u32, usize)> = Vec::with_capacity(total_events);
    for (ox, o) in outcomes.iter().enumerate() {
        for (ix, e) in o.events.iter().enumerate() {
            keys.push((e.at.as_micros(), ox as u32, ix));
        }
    }
    keys.sort_unstable();
    let mut events: Vec<Event> = Vec::with_capacity(total_events);
    events.extend(keys.iter().map(|&(_, ox, ix)| outcomes[ox as usize].events[ix].clone()));
    let fingerprint = fingerprint_events(&events);

    // Regions are authoritative for their groups' component values (global
    // completions flowed back via `LockRelease`).
    let mut cfg = world.initial_config();
    for o in &outcomes {
        for &(c, present) in &o.config {
            if present {
                cfg.insert(CompId::from_index(c as usize));
            } else {
                cfg.remove(CompId::from_index(c as usize));
            }
        }
    }

    let mut results: Vec<SessionResult> = outcomes.iter().flat_map(|o| o.results.clone()).collect();
    results.sort_by_key(|r| r.id);
    let first_submit = results.iter().filter_map(|r| r.submitted_at).min();
    let last_complete = results.iter().filter_map(|r| r.completed_at).max();
    let makespan_us = match (first_submit, last_complete) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => 0,
    };
    let intervals: Vec<(u64, Option<u64>)> =
        outcomes.iter().flat_map(|o| o.intervals.iter().copied()).collect();

    let per_shard: Vec<ShardStats> = outcomes
        .iter()
        .map(|o| ShardStats {
            shard: o.shard_tag,
            is_global: o.is_global,
            sessions: o.results.len(),
            completed: o.results.iter().filter(|r| r.completed_at.is_some()).count(),
            events: o.events.len(),
            delivered: o.stats.delivered,
            restores: o.restores,
            cache_hits: o.cache.hits,
            cache_misses: o.cache.misses,
        })
        .collect();

    let fabric_stats = {
        let st = fabric.state.lock().unwrap();
        let mut per_edge: Vec<(u32, u32, u64)> =
            st.edges.iter().map(|(&(s, d), e)| (s + 1, d + 1, e.sent)).collect();
        per_edge.sort_unstable();
        FabricStats {
            messages: per_edge.iter().map(|&(_, _, n)| n).sum(),
            per_edge,
            promise_updates: st.promise_updates,
            dropped: st.edges.values().map(|e| e.dropped).sum(),
            duplicated: st.edges.values().map(|e| e.duplicated).sum(),
            delayed: st.edges.values().map(|e| e.delayed).sum(),
            nulls_dropped: st.edges.values().map(|e| e.nulls_dropped).sum(),
        }
    };

    ShardReport {
        final_config: cfg.to_bit_string(),
        fingerprint,
        journals: outcomes.iter().map(|o| (o.shard_tag, o.journal_text.clone())).collect(),
        global_journal: outcomes
            .iter()
            .find(|o| o.is_global)
            .map(|o| o.global_journal_text.clone())
            .unwrap_or_default(),
        restores: outcomes.iter().map(|o| o.restores).sum(),
        max_concurrent: max_concurrent(intervals),
        makespan_us,
        shed: outcomes.iter().map(|o| o.shed).sum(),
        rejected: outcomes.iter().map(|o| o.rejected).sum(),
        breaker_trips: outcomes.iter().map(|o| o.breaker_trips).sum(),
        suppressed_sends: outcomes.iter().map(|o| o.suppressed_sends).sum(),
        retransmits: outcomes.iter().map(|o| o.retransmits).sum(),
        abandoned: outcomes.iter().map(|o| o.abandoned).sum(),
        orphaned_releases: outcomes.iter().map(|o| o.orphaned_releases).sum(),
        lease_reclaims: outcomes.iter().map(|o| o.lease_reclaims).sum(),
        lease_expirations: outcomes.iter().map(|o| o.lease_expirations).sum(),
        residual_holds: outcomes.iter().map(|o| o.residual_holds).sum(),
        per_shard,
        fabric: fabric_stats,
        results,
        events,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{disjoint_wave, run_fleet};

    #[test]
    fn disjoint_wave_shards_and_matches_unsharded_config() {
        let fleet = FleetScenario::new(8, disjoint_wave(8, 1));
        let unsharded = run_fleet(&fleet);
        let scn = ShardScenario::new(fleet, 4);
        let report = run_fleet_sharded(&scn, 2);
        assert_eq!(report.succeeded(), 8, "results: {:?}", report.results);
        assert_eq!(report.final_config, unsharded.final_config);
        assert_eq!(report.fabric.messages, 0, "disjoint waves never cross the fabric");
        assert_eq!(report.per_shard.len(), 4, "no straddlers ⇒ no global tier");
    }

    #[test]
    fn thread_count_is_invisible() {
        let mut fleet = FleetScenario::new(8, disjoint_wave(8, 1));
        // A straddler across regions 0|1 exercises the fabric too.
        fleet.sessions.push(SessionSpec {
            id: 100,
            flips: vec![(1, true), (2, true)],
            priority: 1,
            submit_at: SimDuration::from_millis(2),
            cancel_at: None,
        });
        let scn = ShardScenario::new(fleet, 4);
        let a = run_fleet_sharded(&scn, 1);
        let b = run_fleet_sharded(&scn, 4);
        assert_eq!(a.fingerprint, b.fingerprint, "event streams must be bit-for-bit identical");
        assert_eq!(a.final_config, b.final_config);
        assert_eq!(a.journals, b.journals);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn one_region_is_event_identical_to_run_fleet() {
        let fleet = FleetScenario::new(4, disjoint_wave(4, 1));
        let unsharded = run_fleet(&fleet);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 1), 1);
        assert_eq!(
            fingerprint_events_unsharded(&report.events),
            fingerprint_events_unsharded(&unsharded.events),
            "one region replicates the unsharded run modulo shard tags"
        );
        assert_eq!(report.final_config, unsharded.final_config);
    }

    #[test]
    fn straddling_session_escalates_and_commits() {
        // Groups 0..4 over 2 regions; session 9 straddles groups 1 and 2
        // (regions 0 and 1) while local sessions churn the same regions.
        let mut sessions = disjoint_wave(4, 1);
        sessions.push(SessionSpec {
            id: 9,
            flips: vec![(1, true), (2, true)],
            priority: 0,
            submit_at: SimDuration::from_millis(5),
            cancel_at: None,
        });
        let fleet = FleetScenario::new(4, sessions);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 2), 2);
        assert_eq!(report.succeeded(), 5, "results: {:?}", report.results);
        assert_eq!(report.final_config, "10101010");
        assert!(report.fabric.messages >= 4, "request/grant per slice + releases crossed");
        let global = report.per_shard.iter().find(|s| s.is_global).expect("global tier present");
        assert_eq!(global.sessions, 1);
        assert_eq!(global.completed, 1);
    }

    #[test]
    fn straddler_cancelled_before_grants_releases_slices() {
        // One long-running local session holds region 0's scope; the
        // straddler queues behind it and withdraws before the grant lands.
        let sessions = vec![
            SessionSpec {
                id: 1,
                flips: vec![(0, true)],
                priority: 0,
                submit_at: SimDuration::ZERO,
                cancel_at: None,
            },
            SessionSpec {
                id: 2,
                flips: vec![(0, false), (3, true)],
                priority: 0,
                submit_at: SimDuration::from_millis(1),
                cancel_at: Some(SimDuration::from_millis(4)),
            },
        ];
        let fleet = FleetScenario::new(4, sessions);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 2), 2);
        let s2 = report.session(2).expect("straddler reported");
        assert!(s2.cancelled && !s2.success, "results: {:?}", report.results);
        assert!(report.session(1).unwrap().success);
        // The withdrawn straddler's slices were released: group 0 moved by
        // session 1 only, group 3 stayed Old.
        assert_eq!(report.final_config, "01010110");
    }

    /// A fleet with straddlers across both regions — the fabric-exercising
    /// workload the fault tests below run lossy and lossless.
    fn straddling_fleet() -> FleetScenario {
        let mut sessions = disjoint_wave(4, 1);
        sessions.push(SessionSpec {
            id: 9,
            flips: vec![(1, true), (2, true)],
            priority: 0,
            submit_at: SimDuration::from_millis(5),
            cancel_at: None,
        });
        sessions.push(SessionSpec {
            id: 10,
            flips: vec![(0, true), (3, false)],
            priority: 1,
            submit_at: SimDuration::from_millis(9),
            cancel_at: None,
        });
        FleetScenario::new(4, sessions)
    }

    fn chaotic_faults(seed: u64) -> FabricFaultPlan {
        FabricFaultPlan {
            seed,
            drop_per_mille: 250,
            dup_per_mille: 250,
            delay_per_mille: 250,
            max_delay_quanta: 4,
            null_drop_per_mille: 100,
            ..FabricFaultPlan::default()
        }
    }

    #[test]
    fn fabric_codec_round_trips() {
        let msgs = vec![
            FabricPayload::LockRequest {
                session: 9,
                resources: vec![3, 7],
                comps: vec![2, 3],
                priority: 1,
                epoch: 2,
            },
            FabricPayload::LockRequest {
                session: 1,
                resources: Vec::new(),
                comps: Vec::new(),
                priority: 0,
                epoch: 0,
            },
            FabricPayload::LockGranted {
                session: 9,
                region: 1,
                epoch: 2,
                values: vec![(2, true), (3, false)],
            },
            FabricPayload::LockRelease { session: 9, epoch: 2, values: Vec::new() },
            FabricPayload::ReleaseAck { session: 9, region: 1, epoch: 2 },
        ];
        for msg in msgs {
            let line = encode_fabric_msg(&msg);
            let back = parse_fabric_msg(&line).unwrap_or_else(|e| panic!("{e}\nline: {line}"));
            assert_eq!(back, msg, "line: {line}");
        }
        assert!(parse_fabric_msg("lock_request session=1").is_err(), "missing fields rejected");
        assert!(parse_fabric_msg("bogus x=1").is_err(), "unknown verb rejected");
    }

    #[test]
    fn lossy_fabric_converges_to_lossless_outcomes() {
        let lossless = run_fleet_sharded(&ShardScenario::new(straddling_fleet(), 2), 2);
        let mut scn = ShardScenario::new(straddling_fleet(), 2);
        scn.fabric_faults = chaotic_faults(7);
        let lossy = run_fleet_sharded(&scn, 2);
        assert!(
            lossy.fabric.dropped + lossy.fabric.duplicated + lossy.fabric.delayed > 0,
            "the chaos plan must actually bite: {:?}",
            lossy.fabric
        );
        assert_eq!(lossy.final_config, lossless.final_config);
        assert_eq!(lossy.succeeded(), lossless.succeeded(), "results: {:?}", lossy.results);
        for (a, b) in lossy.results.iter().zip(&lossless.results) {
            assert_eq!((a.id, a.success, a.gave_up), (b.id, b.success, b.gave_up));
        }
    }

    #[test]
    fn lossy_fabric_is_thread_invariant() {
        let mut scn = ShardScenario::new(straddling_fleet(), 2);
        scn.fabric_faults = chaotic_faults(11);
        let a = run_fleet_sharded(&scn, 1);
        let b = run_fleet_sharded(&scn, 3);
        assert_eq!(a.fingerprint, b.fingerprint, "lossy runs must stay bit-for-bit identical");
        assert_eq!(a.journals, b.journals);
        assert_eq!(a.global_journal, b.global_journal);
        assert_eq!(a.results, b.results);
        assert_eq!(
            (a.fabric.dropped, a.fabric.duplicated, a.fabric.delayed),
            (b.fabric.dropped, b.fabric.duplicated, b.fabric.delayed),
            "fault decisions are scenario, not scheduling"
        );
    }

    #[test]
    fn promise_fastpath_is_invisible() {
        let mut scn = ShardScenario::new(straddling_fleet(), 2);
        scn.promise_fastpath = false;
        let slow = run_fleet_sharded(&scn, 2);
        scn.promise_fastpath = true;
        let fast = run_fleet_sharded(&scn, 2);
        assert_eq!(slow.fingerprint, fast.fingerprint, "the fast path is scheduling-only");
        assert_eq!(slow.results, fast.results);
        assert_eq!(slow.journals, fast.journals);
        assert_eq!(slow.final_config, fast.final_config);
    }

    #[test]
    fn global_crash_mid_handshake_recovers_straddlers() {
        // Crash the global tier right as session 9's slice chain is being
        // acquired; the journal-driven restore re-drives it under a bumped
        // incarnation and the regions reclaim their old-epoch leases.
        let baseline = run_fleet_sharded(&ShardScenario::new(straddling_fleet(), 2), 2);
        let mut scn = ShardScenario::new(straddling_fleet(), 2);
        scn.crash_global = Some((SimTime::from_micros(5_500), SimTime::from_micros(12_000)));
        let report = run_fleet_sharded(&scn, 2);
        assert_eq!(report.succeeded(), baseline.succeeded(), "results: {:?}", report.results);
        assert_eq!(report.final_config, baseline.final_config);
        assert!(report.restores >= 1, "the global tier restored from its journal");
        assert!(
            !report.global_journal.is_empty(),
            "escalations are journaled ahead of the fabric traffic"
        );
        // Determinism holds across the crash too.
        let again = run_fleet_sharded(&scn, 4);
        assert_eq!(report.fingerprint, again.fingerprint);
        assert_eq!(report.global_journal, again.global_journal);
    }

    #[test]
    fn no_admitted_session_ends_without_a_journaled_outcome() {
        let mut scn = ShardScenario::new(straddling_fleet(), 2);
        scn.fabric_faults = chaotic_faults(3);
        scn.crash_global = Some((SimTime::from_micros(6_000), SimTime::from_micros(14_000)));
        let report = run_fleet_sharded(&scn, 2);
        for r in &report.results {
            assert!(
                r.completed_at.is_some() || r.cancelled,
                "session {} vanished without a terminal verdict: {:?}",
                r.id,
                report.results
            );
        }
    }
}
