//! Sharded control plane: the fleet runtime split across OS threads with a
//! deterministic cross-shard fabric.
//!
//! [`run_fleet`](crate::run_fleet) drives the whole fleet through one
//! simulator on one thread. This module refactors that single loop into
//! **shards**: the group space is cut into `regions` contiguous blocks, and
//! each region runs its own simulator — its own agents, its own
//! [`ControlActor`] (scope-lock domain, plan cache, journal) — pumped by a
//! real OS thread. Sessions whose scope stays inside one region never
//! synchronize with anything; sessions that straddle regions escalate to a
//! thin **global tier** that acquires per-region scope slices over the
//! fabric before running the full protocol.
//!
//! ## Determinism
//!
//! The whole point of the refactor is that parallelism must not perturb
//! behavior: the same scenario at 1, 2, 4, or 8 worker threads produces
//! bit-for-bit identical final configurations, journals, and event streams.
//! Three mechanisms carry that guarantee:
//!
//! * **Fixed logical partition.** `regions` is part of the scenario, not of
//!   the execution; worker threads multiplex endpoints (`endpoint id %
//!   threads`), so thread count never changes which simulator owns what.
//! * **Deterministic fabric merge.** Cross-shard messages are timestamped
//!   at the sender, mapped to a quantized virtual arrival instant, and
//!   injected into the receiver sorted by `(arrival, source shard, per-edge
//!   sequence)` — wall-clock interleaving cannot reorder them.
//! * **Conservative virtual clocks.** Each endpoint advances only as far as
//!   every inbound fabric edge *promises* silence (a null-message protocol
//!   with one fabric latency of lookahead). Edges that no straddling
//!   session touches promise silence statically, so straddler-free
//!   workloads free-run with zero synchronization — the source of the
//!   near-linear thread scaling in `bench_shard`.
//!
//! Each region replicates the exact actor layout of [`run_fleet`] (all
//! agents, control plane at index `2·groups`) plus an idle fabric relay, so
//! a `regions = 1` run is event-identical (modulo shard tags) to the
//! unsharded driver.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sada_expr::CompId;
use sada_obs::{encode_event, Bus, Event, RingSink};
use sada_proto::{encode_session_journal, AgentTiming, ScriptedAgent, Wire};
use sada_simnet::{Actor, ActorId, Context, LinkConfig, NetStats, SimDuration, SimTime, Simulator};

use crate::cache::PlanCacheStats;
use crate::control::{ControlActor, SessionSpec};
use crate::driver::{max_concurrent, scale_timing, FleetScenario, SessionResult};
use crate::world::FleetWorld;

/// Default region count: matches the 8-thread top rung of the scaling
/// benchmark, and divides the benchmark fleets evenly.
pub const DEFAULT_REGIONS: usize = 8;

/// Endpoint-seed stride (the 64-bit golden ratio), so endpoint 0 keeps the
/// scenario seed (the `regions = 1` ≡ `run_fleet` equivalence) while the
/// rest get decorrelated streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A sharded fleet experiment: the underlying scenario plus the logical
/// partition and an optional region-targeted crash fault.
#[derive(Debug, Clone)]
pub struct ShardScenario {
    /// The fleet workload (groups, sessions, timing, resilience).
    pub fleet: FleetScenario,
    /// Number of regions the group space is cut into (contiguous blocks).
    /// Part of the *scenario*: results are invariant in worker threads, not
    /// in region count.
    pub regions: usize,
    /// Crash/restart instants for one region's control plane.
    pub crash_region: Option<(usize, SimTime, SimTime)>,
}

impl ShardScenario {
    /// Wraps `fleet` in a `regions`-way partition with no crash fault.
    pub fn new(fleet: FleetScenario, regions: usize) -> Self {
        ShardScenario { fleet, regions, crash_region: None }
    }

    /// The region owning `group`: contiguous blocks, first blocks one
    /// group larger when the division is uneven.
    pub fn region_of(&self, group: usize) -> usize {
        group * self.regions / self.fleet.groups.max(1)
    }
}

// ---------------------------------------------------------------------------
// Cross-shard fabric
// ---------------------------------------------------------------------------

/// What crosses the fabric: only lock escalation. Regions and the global
/// tier never exchange protocol traffic — a globally run session drives the
/// global endpoint's own agent replicas, and only the scope-slice handshake
/// (request / grant-with-values / release-with-values) is distributed.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // the shared `Lock` prefix is the point: this IS the lock protocol
enum FabricPayload {
    /// Global tier → region: hold this scope slice under `session`.
    LockRequest { session: u64, resources: Vec<u32>, comps: Vec<u32>, priority: u8 },
    /// Region → global tier: the slice is held; `values` carries the
    /// region's current component states so the global planner starts from
    /// the authoritative source configuration.
    LockGranted { session: u64, values: Vec<(u32, bool)> },
    /// Global tier → region: the session finished (or withdrew); `values`
    /// carries the final component states to fold into the region's
    /// durable fleet configuration.
    LockRelease { session: u64, values: Vec<(u32, bool)> },
}

/// The app-level message an endpoint's wrapper hands its fabric relay.
#[derive(Debug, Clone)]
struct ShardMsg {
    to: u32,
    payload: FabricPayload,
}

/// A fabric message staged at the receiver, keyed for the deterministic
/// merge: `(arrival, src, seq)` is a total order no wall-clock interleaving
/// can disturb.
struct FabricEnvelope {
    arrival_us: u64,
    src: u32,
    seq: u64,
    payload: FabricPayload,
}

#[derive(Default)]
struct EdgeState {
    mail: Vec<FabricEnvelope>,
    /// Arrival-instant promise: no future message on this edge will arrive
    /// *before* this virtual time. `u64::MAX` once the sender is done.
    promise_us: u64,
    next_seq: u64,
    sent: u64,
}

struct FabricState {
    edges: HashMap<(u32, u32), EdgeState>,
    promise_updates: u64,
}

/// The shared cross-shard message fabric: bounded per-edge mailboxes plus
/// the conservative-clock promises, guarded by one mutex (traffic is rare —
/// only lock escalation crosses shards).
struct Fabric {
    state: Mutex<FabricState>,
    cv: Condvar,
    /// Fabric latency *and* arrival quantum, μs (the link latency).
    quantum_us: u64,
}

impl Fabric {
    fn new(involved: &[u32], global: u32, quantum_us: u64) -> Self {
        let mut edges = HashMap::new();
        for &r in involved {
            for key in [(global, r), (r, global)] {
                edges.insert(key, EdgeState { promise_us: quantum_us, ..EdgeState::default() });
            }
        }
        Fabric {
            state: Mutex::new(FabricState { edges, promise_updates: 0 }),
            cv: Condvar::new(),
            quantum_us,
        }
    }

    /// Fabric delivery instant for a message sent at `send_us`: the next
    /// quantum boundary at least one fabric latency later. Monotone in the
    /// send instant, so each edge is FIFO by construction.
    fn arrival_of(&self, send_us: u64) -> u64 {
        let q = self.quantum_us;
        (send_us + 2 * q - 1) / q * q
    }
}

/// Cross-shard traffic counters for a finished run. Message counts are
/// deterministic; `promise_updates` counts observed clock advances and
/// varies with wall-clock scheduling (diagnostic only).
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Total messages that crossed the fabric.
    pub messages: u64,
    /// Per directed edge `(src shard tag, dst shard tag, messages)`.
    pub per_edge: Vec<(u32, u32, u64)>,
    /// Null-message promise advances observed (wall-clock dependent).
    pub promise_updates: u64,
}

/// The in-sim half of the fabric: an idle actor sitting after the control
/// plane. Outbound cross-shard messages are addressed to it over the normal
/// (latency-bearing) link and surface in a buffer the executor drains;
/// inbound messages are injected *from* it, so crash/partition semantics
/// apply exactly like actor traffic.
type Outbox = Rc<RefCell<Vec<(u32, u64, FabricPayload)>>>;

struct FabricRelay {
    outbox: Outbox,
}

impl Actor<Wire<ShardMsg>> for FabricRelay {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        _from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        if let Wire::App(m) = msg {
            self.outbox.borrow_mut().push((m.to, ctx.now().as_micros(), m.payload));
        }
    }
}

// ---------------------------------------------------------------------------
// Region wrapper
// ---------------------------------------------------------------------------

/// A scope slice held (or queued) in this region on behalf of a globally
/// escalated session.
struct ForeignHold {
    resources: Vec<u32>,
    comps: Vec<u32>,
    priority: u8,
    /// `LockGranted` already sent back to the global tier.
    acked: bool,
}

/// Region control plane: the plain [`ControlActor`] plus the fabric-facing
/// lock-escalation shim. Every delegated callback is followed by a sweep
/// that turns newly granted foreign holds into `LockGranted` replies (the
/// inner grant cascade skips ids without a scenario entry).
struct RegionControl {
    inner: ControlActor<ShardMsg>,
    relay: ActorId,
    global_ep: u32,
    foreign: BTreeMap<u64, ForeignHold>,
}

impl RegionControl {
    fn grant(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, sid: u64) {
        let Some(hold) = self.foreign.get_mut(&sid) else { return };
        hold.acked = true;
        let values: Vec<(u32, bool)> = hold
            .comps
            .iter()
            .map(|&c| (c, self.inner.fleet_config.contains(CompId::from_index(c as usize))))
            .collect();
        ctx.send(
            self.relay,
            Wire::App(ShardMsg {
                to: self.global_ep,
                payload: FabricPayload::LockGranted { session: sid, values },
            }),
        );
    }

    fn sweep(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        let pending: Vec<u64> =
            self.foreign.iter().filter(|(_, h)| !h.acked).map(|(&s, _)| s).collect();
        for sid in pending {
            if self.inner.locks_mut().is_held(sid) {
                self.grant(ctx, sid);
            }
        }
    }

    fn on_fabric(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, payload: FabricPayload) {
        match payload {
            FabricPayload::LockRequest { session, resources, comps, priority } => {
                let held = self.inner.locks_mut().try_acquire(session, &resources, priority);
                self.foreign
                    .insert(session, ForeignHold { resources, comps, priority, acked: false });
                if held {
                    self.grant(ctx, session);
                }
            }
            FabricPayload::LockRelease { session, values } => {
                for (c, v) in values {
                    self.inner.fold_comp(CompId::from_index(c as usize), v);
                }
                let granted = if self.inner.locks_mut().is_held(session) {
                    self.inner.locks_mut().release(session)
                } else {
                    // The slice was still queued (a withdrawal raced the
                    // grant): drop the queue entry instead.
                    self.inner.locks_mut().cancel(session).unwrap_or_default()
                };
                self.foreign.remove(&session);
                for g in granted {
                    if self.foreign.contains_key(&g) {
                        self.grant(ctx, g);
                    } else {
                        self.inner.admit_granted(ctx, g);
                    }
                }
            }
            FabricPayload::LockGranted { .. } => {} // regions never receive grants
        }
    }
}

impl Actor<Wire<ShardMsg>> for RegionControl {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        self.inner.on_start(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        match msg {
            Wire::App(m) => self.on_fabric(ctx, m.payload),
            other => self.inner.on_message(ctx, from, other),
        }
        self.sweep(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) {
        self.inner.on_timer(ctx, tag);
        self.sweep(ctx);
    }

    fn on_crash(&mut self, now: SimTime) {
        // Foreign-hold bookkeeping is wrapper state and survives the crash
        // (the global tier journals the escalation on its side); the inner
        // volatile image — including the lock table — dies.
        self.inner.on_crash(now);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        // Re-seize granted escalations *before* journal replay, so restored
        // or requeued local sessions cannot steal the slices. Granted holds
        // are disjoint from local in-flight scopes (they were concurrently
        // held when the plane died), so both re-acquisitions must succeed.
        let held: Vec<(u64, Vec<u32>, u8)> = self
            .foreign
            .iter()
            .filter(|(_, h)| h.acked)
            .map(|(&s, h)| (s, h.resources.clone(), h.priority))
            .collect();
        for (sid, res, prio) in held {
            let got = self.inner.locks_mut().try_acquire(sid, &res, prio);
            assert!(got, "escalated holds are disjoint from local in-flight scopes");
        }
        self.inner.on_restart(ctx);
        // Still-queued escalation requests rejoin the queue (or are granted
        // outright if the crash resolved their conflict).
        let queued: Vec<(u64, Vec<u32>, u8)> = self
            .foreign
            .iter()
            .filter(|(_, h)| !h.acked)
            .map(|(&s, h)| (s, h.resources.clone(), h.priority))
            .collect();
        for (sid, res, prio) in queued {
            self.inner.locks_mut().try_acquire(sid, &res, prio);
        }
        self.sweep(ctx);
    }
}

// ---------------------------------------------------------------------------
// Global tier
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Granting,
    Running,
    Done,
    Cancelled,
}

/// One region's share of a straddling session's scope.
#[derive(Debug, Clone)]
struct Slice {
    region: u32,
    resources: Vec<u32>,
    comps: Vec<u32>,
}

struct Straddler {
    sid: u64,
    priority: u8,
    submit_at: SimDuration,
    cancel_at: Option<SimDuration>,
    /// Ascending region order — slices are acquired strictly sequentially,
    /// so escalation is deadlock-free by the usual ordered-2PL argument.
    slices: Vec<Slice>,
    next: usize,
    phase: Phase,
}

/// Wrapper timer namespaces. The inner control plane owns `1 << 62` and
/// `1 << 63` plus small dynamic tags; the global tier claims two bands in
/// between for the pre-submission lifecycle of straddling sessions.
const TAG_GLOBAL_SUBMIT: u64 = 1 << 61;
const TAG_GLOBAL_CANCEL: u64 = 3 << 60;
const TAG_INNER_BASE: u64 = 1 << 62;

/// The thin global tier: a full [`ControlActor`] over its own replica of
/// the fleet's agents, driving only the straddling sessions. Each straddler
/// submits through a lock-escalation handshake — per-region scope slices
/// acquired in ascending region order, grants carrying the regions'
/// authoritative component values, releases carrying the final ones back.
struct GlobalControl {
    inner: ControlActor<ShardMsg>,
    relay: ActorId,
    straddlers: Vec<Straddler>,
    /// Wrapper-level lifecycle instants (μs) for phases the inner control
    /// plane never sees: real submission time (the inner spec carries a
    /// beyond-budget sentinel) and pre-submission withdrawals.
    submitted_at: HashMap<u64, u64>,
    cancelled_at: HashMap<u64, u64>,
}

impl GlobalControl {
    fn send(&self, ctx: &mut Context<'_, Wire<ShardMsg>>, to: u32, payload: FabricPayload) {
        ctx.send(self.relay, Wire::App(ShardMsg { to, payload }));
    }

    fn request_slice(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        let s = &self.straddlers[ix];
        let sl = s.slices[s.next].clone();
        let payload = FabricPayload::LockRequest {
            session: s.sid,
            resources: sl.resources,
            comps: sl.comps,
            priority: s.priority,
        };
        self.send(ctx, sl.region, payload);
    }

    /// Sends `LockRelease` (final component values included) for the first
    /// `upto` slices of straddler `ix`.
    fn release_slices(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize, upto: usize) {
        let s = &self.straddlers[ix];
        let sid = s.sid;
        let msgs: Vec<(u32, FabricPayload)> = s.slices[..upto]
            .iter()
            .map(|sl| {
                let values: Vec<(u32, bool)> = sl
                    .comps
                    .iter()
                    .map(|&c| (c, self.inner.fleet_config.contains(CompId::from_index(c as usize))))
                    .collect();
                (sl.region, FabricPayload::LockRelease { session: sid, values })
            })
            .collect();
        for (region, payload) in msgs {
            self.send(ctx, region, payload);
        }
    }

    fn begin(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        if self.straddlers[ix].phase != Phase::Pending {
            return;
        }
        self.straddlers[ix].phase = Phase::Granting;
        self.submitted_at.insert(self.straddlers[ix].sid, ctx.now().as_micros());
        self.request_slice(ctx, ix);
    }

    fn on_granted(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        session: u64,
        values: Vec<(u32, bool)>,
    ) {
        let Some(ix) = self.straddlers.iter().position(|s| s.sid == session) else { return };
        if self.straddlers[ix].phase != Phase::Granting {
            return; // a grant that raced a withdrawal; the release is out
        }
        for (c, v) in values {
            self.inner.fold_comp(CompId::from_index(c as usize), v);
        }
        self.straddlers[ix].next += 1;
        if self.straddlers[ix].next < self.straddlers[ix].slices.len() {
            self.request_slice(ctx, ix);
        } else {
            // Every slice held and the source configuration assembled from
            // the grants: run the full protocol against the local replicas.
            self.straddlers[ix].phase = Phase::Running;
            let sid = self.straddlers[ix].sid;
            self.inner.submit_session(ctx, sid);
            self.sweep(ctx);
        }
    }

    fn withdraw(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, ix: usize) {
        match self.straddlers[ix].phase {
            Phase::Pending => {
                self.straddlers[ix].phase = Phase::Cancelled;
                self.cancelled_at.insert(self.straddlers[ix].sid, ctx.now().as_micros());
            }
            Phase::Granting => {
                // Release every slice acquired or requested so far; a
                // still-queued request is cancelled by the region, a grant
                // in flight is answered by the (edge-FIFO) release behind it.
                let upto = (self.straddlers[ix].next + 1).min(self.straddlers[ix].slices.len());
                self.release_slices(ctx, ix, upto);
                self.straddlers[ix].phase = Phase::Cancelled;
                self.cancelled_at.insert(self.straddlers[ix].sid, ctx.now().as_micros());
            }
            _ => {} // admitted or finished in the meantime — too late
        }
    }

    /// Detects straddlers whose inner session reached a terminal result and
    /// flows their final scope values back to the owning regions.
    fn sweep(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        for ix in 0..self.straddlers.len() {
            if self.straddlers[ix].phase == Phase::Running
                && self.inner.is_done(self.straddlers[ix].sid)
            {
                self.straddlers[ix].phase = Phase::Done;
                let n = self.straddlers[ix].slices.len();
                self.release_slices(ctx, ix, n);
            }
        }
    }
}

impl Actor<Wire<ShardMsg>> for GlobalControl {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>) {
        self.inner.on_start(ctx);
        for ix in 0..self.straddlers.len() {
            ctx.set_timer(self.straddlers[ix].submit_at, TAG_GLOBAL_SUBMIT + ix as u64);
            if let Some(at) = self.straddlers[ix].cancel_at {
                ctx.set_timer(at, TAG_GLOBAL_CANCEL + ix as u64);
            }
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Wire<ShardMsg>>,
        from: ActorId,
        msg: Wire<ShardMsg>,
    ) {
        match msg {
            Wire::App(m) => {
                if let FabricPayload::LockGranted { session, values } = m.payload {
                    self.on_granted(ctx, session, values);
                }
            }
            other => {
                self.inner.on_message(ctx, from, other);
                self.sweep(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<ShardMsg>>, tag: u64) {
        if tag >= TAG_INNER_BASE {
            self.inner.on_timer(ctx, tag);
            self.sweep(ctx);
        } else if tag >= TAG_GLOBAL_CANCEL {
            self.withdraw(ctx, (tag - TAG_GLOBAL_CANCEL) as usize);
        } else if tag >= TAG_GLOBAL_SUBMIT {
            self.begin(ctx, (tag - TAG_GLOBAL_SUBMIT) as usize);
        } else {
            self.inner.on_timer(ctx, tag);
            self.sweep(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Endpoints and the conservative executor
// ---------------------------------------------------------------------------

/// Everything a worker thread needs to *build* one endpoint — plain data,
/// since simulators are constructed inside the owning thread.
#[derive(Clone)]
struct EndpointPlan {
    id: u32,
    specs: Vec<SessionSpec>,
    straddlers: Vec<StraddlerPlan>,
    inbound: Vec<u32>,
    outbound: Vec<u32>,
    owned_groups: Vec<usize>,
    crash: Option<(SimTime, SimTime)>,
    is_global: bool,
}

#[derive(Clone)]
struct StraddlerPlan {
    sid: u64,
    priority: u8,
    submit_at: SimDuration,
    cancel_at: Option<SimDuration>,
    slices: Vec<Slice>,
}

/// One endpoint (a region or the global tier) under conservative execution.
struct Endpoint {
    id: u32,
    shard_tag: u32,
    sim: Simulator<Wire<ShardMsg>>,
    control_id: ActorId,
    relay_id: ActorId,
    outbox: Outbox,
    ring: Rc<RefCell<RingSink>>,
    inbound: Vec<u32>,
    outbound: Vec<u32>,
    staged: BTreeMap<u64, Vec<FabricEnvelope>>,
    ran_to_us: u64,
    budget_us: u64,
    done: bool,
    sessions: Vec<u64>,
    owned_groups: Vec<usize>,
    is_global: bool,
}

fn build_endpoint(
    scn: &FleetScenario,
    regions: usize,
    budget_us: u64,
    plan: &EndpointPlan,
) -> Endpoint {
    let world = Rc::new(FleetWorld::build(scn.groups));
    let seed = scn.seed.wrapping_add(u64::from(plan.id).wrapping_mul(SEED_STRIDE));
    let mut sim: Simulator<Wire<ShardMsg>> = Simulator::new(seed);
    sim.set_default_link(LinkConfig::reliable(scn.link_latency));

    let bus = Bus::new();
    let ring = Rc::new(RefCell::new(RingSink::new(1 << 18)));
    bus.attach(&ring);
    let shard_tag = plan.id + 1;
    let sharded = bus.sharded(shard_tag);

    // Replicate `run_fleet`'s exact actor layout — all agents, control at
    // index 2·groups — so a one-region run is event-identical to the
    // unsharded driver; the fabric relay takes the next slot.
    let control_id = ActorId::from_index(2 * scn.groups);
    let relay_id = ActorId::from_index(2 * scn.groups + 1);
    let mut agents = Vec::with_capacity(2 * scn.groups);
    for p in 0..2 * scn.groups {
        let timing = match scn.slow_agents.iter().find(|&&(ix, _)| ix == p) {
            Some(&(_, factor)) => scale_timing(AgentTiming::default(), factor),
            None => AgentTiming::default(),
        };
        let agent = ScriptedAgent::new(control_id, timing).with_bus(sharded.clone());
        agents.push(sim.add_actor(&format!("agent-{p}"), agent));
    }
    let inner = ControlActor::<ShardMsg>::new(
        Rc::clone(&world),
        agents,
        plan.specs.clone(),
        scn.timing,
        scn.serialize,
    )
    .with_resilience(scn.resilience)
    .with_bus(sharded.clone());
    let got = if plan.is_global {
        let straddlers = plan
            .straddlers
            .iter()
            .map(|s| Straddler {
                sid: s.sid,
                priority: s.priority,
                submit_at: s.submit_at,
                cancel_at: s.cancel_at,
                slices: s.slices.clone(),
                next: 0,
                phase: Phase::Pending,
            })
            .collect();
        sim.add_actor(
            "global-control",
            GlobalControl {
                inner,
                relay: relay_id,
                straddlers,
                submitted_at: HashMap::new(),
                cancelled_at: HashMap::new(),
            },
        )
    } else {
        sim.add_actor(
            "control",
            RegionControl {
                inner,
                relay: relay_id,
                global_ep: regions as u32,
                foreign: BTreeMap::new(),
            },
        )
    };
    assert_eq!(got, control_id, "control plane must sit after the agents");
    let outbox: Outbox = Rc::new(RefCell::new(Vec::new()));
    let got = sim.add_actor("fabric-relay", FabricRelay { outbox: Rc::clone(&outbox) });
    assert_eq!(got, relay_id, "fabric relay must sit after the control plane");

    if let Some((crash, restart)) = plan.crash {
        sim.crash_at(control_id, crash);
        sim.restart_at(control_id, restart);
    }

    Endpoint {
        id: plan.id,
        shard_tag,
        sim,
        control_id,
        relay_id,
        outbox,
        ring,
        inbound: plan.inbound.clone(),
        outbound: plan.outbound.clone(),
        staged: BTreeMap::new(),
        ran_to_us: 0,
        budget_us,
        done: false,
        sessions: plan.specs.iter().map(|s| s.id).collect(),
        owned_groups: plan.owned_groups.clone(),
        is_global: plan.is_global,
    }
}

impl Endpoint {
    fn run_to(&mut self, us: u64) -> bool {
        if us <= self.ran_to_us && !(us == 0 && self.ran_to_us == 0 && !self.done) {
            return false;
        }
        self.sim.run_until(SimTime::from_micros(us));
        let progressed = us > self.ran_to_us;
        self.ran_to_us = us.max(self.ran_to_us);
        progressed
    }

    /// One conservative scheduling step: drain inbound fabric mail, inject
    /// every arrival-complete batch at its quantized instant (sorted by
    /// `(src, seq)`), and advance local virtual time to the horizon every
    /// inbound promise allows. Returns whether anything moved.
    fn step(&mut self, fabric: &Fabric) -> bool {
        let mut progressed = false;
        let safe = {
            let mut st = fabric.state.lock().unwrap();
            for &src in &self.inbound {
                let e = st.edges.get_mut(&(src, self.id)).expect("active inbound edge");
                for env in e.mail.drain(..) {
                    self.staged.entry(env.arrival_us).or_default().push(env);
                }
            }
            self.inbound
                .iter()
                .map(|&src| st.edges[&(src, self.id)].promise_us)
                .min()
                .unwrap_or(u64::MAX)
        };
        loop {
            let next_batch = self.staged.keys().next().copied();
            if let Some(t) = next_batch {
                // A batch is complete once every inbound edge promises no
                // further arrival at or before it.
                if t <= self.budget_us && safe > t {
                    if t > 0 {
                        self.run_to(t - 1);
                    }
                    let mut batch = self.staged.remove(&t).expect("just peeked");
                    batch.sort_by_key(|e| (e.src, e.seq));
                    let now = self.sim.now().as_micros();
                    for env in batch {
                        self.sim.inject(
                            self.relay_id,
                            self.control_id,
                            Wire::App(ShardMsg { to: self.id, payload: env.payload }),
                            SimDuration::from_micros(t - now),
                        );
                    }
                    progressed = true;
                    continue;
                }
            }
            let mut horizon = self.budget_us;
            if let Some(t) = next_batch {
                horizon = horizon.min(t.saturating_sub(1));
            }
            horizon = horizon.min(safe.saturating_sub(1));
            progressed |= self.run_to(horizon);
            break;
        }
        progressed |= self.flush(fabric, safe);
        if !self.done
            && self.ran_to_us >= self.budget_us
            && self.staged.keys().next().is_none_or(|&t| t > self.budget_us)
            && safe > self.budget_us
        {
            self.done = true;
            progressed = true;
        }
        progressed
    }

    /// Publishes outbox messages and refreshed arrival promises. The
    /// promise is the null message of the conservative protocol: arrival
    /// instant of the earliest message this endpoint could still send,
    /// derived from its next local event, its staged inbound arrivals, and
    /// what its own inbound edges promise.
    fn flush(&mut self, fabric: &Fabric, safe: u64) -> bool {
        if self.outbound.is_empty() {
            debug_assert!(self.outbox.borrow().is_empty(), "fabric send without an active edge");
            return false;
        }
        let out: Vec<(u32, u64, FabricPayload)> = self.outbox.borrow_mut().drain(..).collect();
        let next_ev = self.sim.next_event_at().map_or(u64::MAX, |t| t.as_micros());
        let next_staged = self.staged.keys().next().copied().unwrap_or(u64::MAX);
        let lb = next_ev.min(next_staged).min(safe);
        let mut progressed = false;
        let mut st = fabric.state.lock().unwrap();
        for (dst, send_us, payload) in out {
            let e = st.edges.get_mut(&(self.id, dst)).expect("fabric send on an inactive edge");
            let env = FabricEnvelope {
                arrival_us: fabric.arrival_of(send_us),
                src: self.id,
                seq: e.next_seq,
                payload,
            };
            e.next_seq += 1;
            e.sent += 1;
            e.mail.push(env);
            progressed = true;
        }
        let promise = if lb > self.budget_us { u64::MAX } else { fabric.arrival_of(lb) };
        for &dst in &self.outbound {
            let e = st.edges.get_mut(&(self.id, dst)).expect("active outbound edge");
            if promise > e.promise_us {
                e.promise_us = promise;
                st.promise_updates += 1;
                progressed = true;
            }
        }
        drop(st);
        if progressed {
            fabric.cv.notify_all();
        }
        progressed
    }
}

// ---------------------------------------------------------------------------
// Distillation
// ---------------------------------------------------------------------------

/// Per-shard slice of a [`ShardReport`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard tag (region index + 1; the global tier is `regions + 1`).
    pub shard: u32,
    /// True for the global (straddler) tier.
    pub is_global: bool,
    /// Sessions owned by this shard.
    pub sessions: usize,
    /// Sessions that reached a terminal result here.
    pub completed: usize,
    /// Events this shard contributed to the merged stream.
    pub events: usize,
    /// Messages its simulator delivered.
    pub delivered: u64,
    /// Times its control plane was rebuilt from the journal.
    pub restores: u64,
    /// Plan-cache hits in its final control-plane incarnation.
    pub cache_hits: u64,
    /// Plan-cache misses in its final control-plane incarnation.
    pub cache_misses: u64,
}

/// Plain-data result a worker thread ships back for one endpoint.
struct EndpointOutcome {
    id: u32,
    shard_tag: u32,
    is_global: bool,
    events: Vec<Event>,
    journal_text: String,
    results: Vec<SessionResult>,
    config: Vec<(u32, bool)>,
    intervals: Vec<(u64, Option<u64>)>,
    restores: u64,
    stats: NetStats,
    cache: PlanCacheStats,
    shed: u64,
    rejected: u64,
    breaker_trips: u64,
    suppressed_sends: u64,
}

fn distill_endpoint(ep: Endpoint) -> EndpointOutcome {
    let events = ep.ring.borrow().events();
    let (ctl, wrapper_submitted, wrapper_cancelled) = if ep.is_global {
        let g = ep.sim.actor::<GlobalControl>(ep.control_id).expect("global control present");
        (&g.inner, Some(&g.submitted_at), Some(&g.cancelled_at))
    } else {
        let r = ep.sim.actor::<RegionControl>(ep.control_id).expect("region control present");
        (&r.inner, None, None)
    };
    let mut ids = ep.sessions.clone();
    ids.sort_unstable();
    let results: Vec<SessionResult> = ids
        .iter()
        .map(|&id| {
            let outcome = ctl.results.get(&id);
            let mut r = SessionResult {
                id,
                submitted_at: ctl.submitted_at.get(&id).map(|t| t.as_micros()),
                admitted_at: ctl.admitted_at.get(&id).map(|t| t.as_micros()),
                completed_at: ctl.completed_at.get(&id).map(|t| t.as_micros()),
                success: outcome.is_some_and(|o| o.success),
                gave_up: outcome.is_some_and(|o| o.gave_up),
                cancelled: outcome
                    .is_some_and(|o| o.warnings.iter().any(|w| w.contains("cancelled"))),
                shed: outcome.is_some_and(|o| o.warnings.iter().any(|w| w.contains("shed"))),
                admission: ctl.admissions.get(&id).copied(),
            };
            // Straddlers: submission happens at the wrapper (the inner spec
            // carries a sentinel), and a pre-submission withdrawal never
            // reaches the inner plane at all.
            if let Some(subs) = wrapper_submitted {
                if let Some(&t) = subs.get(&id) {
                    r.submitted_at = Some(r.submitted_at.map_or(t, |x| x.min(t)));
                }
            }
            if let Some(cans) = wrapper_cancelled {
                if let (Some(&t), None) = (cans.get(&id), r.completed_at) {
                    r.cancelled = true;
                    r.completed_at = Some(t);
                }
            }
            r
        })
        .collect();
    let config: Vec<(u32, bool)> = ep
        .owned_groups
        .iter()
        .flat_map(|&g| [2 * g as u32, 2 * g as u32 + 1])
        .map(|c| (c, ctl.fleet_config.contains(CompId::from_index(c as usize))))
        .collect();
    let intervals: Vec<(u64, Option<u64>)> = ctl
        .admitted_at
        .iter()
        .map(|(id, at)| (at.as_micros(), ctl.completed_at.get(id).map(|t| t.as_micros())))
        .collect();
    EndpointOutcome {
        id: ep.id,
        shard_tag: ep.shard_tag,
        is_global: ep.is_global,
        events,
        journal_text: encode_session_journal(&ctl.journal),
        results,
        config,
        intervals,
        restores: ctl.restores,
        stats: ep.sim.stats(),
        cache: ctl.cache_stats(),
        shed: ctl.shed_count,
        rejected: ctl.rejected_count,
        breaker_trips: ctl.breaker_trips,
        suppressed_sends: ctl.suppressed_sends,
    }
}

fn run_worker(
    scn: &FleetScenario,
    regions: usize,
    budget_us: u64,
    plans: Vec<EndpointPlan>,
    fabric: &Fabric,
) -> Vec<EndpointOutcome> {
    let mut eps: Vec<Endpoint> =
        plans.iter().map(|p| build_endpoint(scn, regions, budget_us, p)).collect();
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for ep in &mut eps {
            if ep.done {
                continue;
            }
            while ep.step(fabric) {
                progressed = true;
            }
            all_done &= ep.done;
        }
        if all_done {
            break;
        }
        if !progressed {
            // Blocked on a peer's virtual clock: park until a promise or
            // message lands (timeout only as a lost-wakeup safety net).
            let st = fabric.state.lock().unwrap();
            let _ = fabric
                .cv
                .wait_timeout(st, std::time::Duration::from_millis(1))
                .expect("fabric lock poisoned");
        }
    }
    eps.into_iter().map(distill_endpoint).collect()
}

// ---------------------------------------------------------------------------
// Report and driver
// ---------------------------------------------------------------------------

/// Everything a sharded fleet run produced.
pub struct ShardReport {
    /// Per-session results across all shards, ascending by session id.
    pub results: Vec<SessionResult>,
    /// The fleet configuration merged from the regions' authoritative
    /// per-group values, as a bit string.
    pub final_config: String,
    /// The deterministically merged event stream: ordered by `(virtual
    /// time, shard, intra-shard order)`, every event stamped with its shard.
    pub events: Vec<Event>,
    /// FNV-1a fingerprint of the merged stream (shard tags included) —
    /// bit-for-bit identical across worker-thread counts.
    pub fingerprint: u64,
    /// Per-shard write-ahead journals `(shard tag, text)`.
    pub journals: Vec<(u32, String)>,
    /// Per-shard statistics, region order then the global tier.
    pub per_shard: Vec<ShardStats>,
    /// Cross-shard traffic counters.
    pub fabric: FabricStats,
    /// Control-plane restores summed over shards.
    pub restores: u64,
    /// Peak simultaneously admitted sessions across the whole fleet.
    pub max_concurrent: usize,
    /// First submission → last completion, virtual μs, across shards.
    pub makespan_us: u64,
    /// Sessions shed by bulkhead admission control (all shards).
    pub shed: u64,
    /// Sessions rejected behind open breakers (all shards).
    pub rejected: u64,
    /// Circuit-breaker trips (all shards).
    pub breaker_trips: u64,
    /// Protocol sends suppressed by open breakers (all shards).
    pub suppressed_sends: u64,
    /// Wall-clock duration of the parallel run.
    pub wall: std::time::Duration,
}

impl ShardReport {
    /// The result row for session `id`.
    pub fn session(&self, id: u64) -> Option<&SessionResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Sessions that committed their adaptation.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.success).count()
    }
}

/// FNV-1a fingerprint over the encoded event stream, shard tags included —
/// the bit-for-bit identity compared across worker-thread counts.
pub fn fingerprint_events(events: &[Event]) -> u64 {
    let mut h = FNV_BASIS;
    for ev in events {
        for b in encode_event(ev).bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Like [`fingerprint_events`] with shard tags normalized to zero — the
/// identity compared between a one-region sharded run and the unsharded
/// [`run_fleet`](crate::run_fleet) driver.
pub fn fingerprint_events_unsharded(events: &[Event]) -> u64 {
    let stripped: Vec<Event> = events
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.shard = 0;
            e
        })
        .collect();
    fingerprint_events(&stripped)
}

/// Runs `scenario` sharded across `threads` worker threads and reports.
///
/// Thread count is pure execution policy: any value produces bit-for-bit
/// identical results, journals, and event streams for a fixed scenario.
pub fn run_fleet_sharded(scenario: &ShardScenario, threads: usize) -> ShardReport {
    let fleet = &scenario.fleet;
    let regions = scenario.regions;
    assert!(threads >= 1, "at least one worker thread");
    assert!(regions >= 1 && regions <= fleet.groups.max(1), "1 ≤ regions ≤ groups");
    assert!(fleet.crash_control.is_none(), "sharded runs target faults via crash_region");
    assert!(fleet.faults.is_empty(), "sharded runs target faults via crash_region");
    assert!(!fleet.serialize, "the serial baseline is inherently unsharded");
    if let Some((r, _, _)) = scenario.crash_region {
        assert!(r < regions, "crash_region out of range");
    }
    let budget_us = fleet.time_budget.as_micros();
    let quantum_us = fleet.link_latency.as_micros().max(1);

    // Partition the workload by the fixed region map.
    let world = FleetWorld::build(fleet.groups);
    let mut per_region: Vec<Vec<SessionSpec>> = vec![Vec::new(); regions];
    let mut straddlers: Vec<(SessionSpec, Vec<usize>)> = Vec::new();
    for spec in &fleet.sessions {
        let mut rs: Vec<usize> = spec.flips.iter().map(|&(g, _)| scenario.region_of(g)).collect();
        rs.sort_unstable();
        rs.dedup();
        if rs.len() <= 1 {
            per_region[rs.first().copied().unwrap_or(0)].push(spec.clone());
        } else {
            straddlers.push((spec.clone(), rs));
        }
    }
    let involved: Vec<u32> = straddlers
        .iter()
        .flat_map(|(_, rs)| rs.iter().map(|&r| r as u32))
        .collect::<BTreeSet<u32>>()
        .into_iter()
        .collect();
    let global_ep = regions as u32;

    let mut plans: Vec<EndpointPlan> = (0..regions)
        .map(|r| {
            let active = involved.contains(&(r as u32));
            EndpointPlan {
                id: r as u32,
                specs: per_region[r].clone(),
                straddlers: Vec::new(),
                inbound: if active { vec![global_ep] } else { Vec::new() },
                outbound: if active { vec![global_ep] } else { Vec::new() },
                owned_groups: (0..fleet.groups).filter(|&g| scenario.region_of(g) == r).collect(),
                crash: scenario.crash_region.and_then(|(cr, a, b)| (cr == r).then_some((a, b))),
                is_global: false,
            }
        })
        .collect();
    if !straddlers.is_empty() {
        // The inner scenario carries beyond-budget submission sentinels:
        // the wrapper owns the pre-submission lifecycle and submits only
        // once every region slice is held.
        let specs: Vec<SessionSpec> = straddlers
            .iter()
            .map(|(s, _)| SessionSpec {
                submit_at: SimDuration::from_micros(2 * budget_us + s.submit_at.as_micros()),
                ..s.clone()
            })
            .collect();
        let plan_straddlers: Vec<StraddlerPlan> = straddlers
            .iter()
            .map(|(s, rs)| StraddlerPlan {
                sid: s.id,
                priority: s.priority,
                submit_at: s.submit_at,
                cancel_at: s.cancel_at,
                slices: rs
                    .iter()
                    .map(|&r| {
                        let flips_r: Vec<(usize, bool)> = s
                            .flips
                            .iter()
                            .copied()
                            .filter(|&(g, _)| scenario.region_of(g) == r)
                            .collect();
                        let comps = world.scope_comps(&flips_r);
                        Slice {
                            region: r as u32,
                            resources: world.resources_for(&comps),
                            comps: comps.iter().map(|c| c.index() as u32).collect(),
                        }
                    })
                    .collect(),
            })
            .collect();
        plans.push(EndpointPlan {
            id: global_ep,
            specs,
            straddlers: plan_straddlers,
            inbound: involved.clone(),
            outbound: involved.clone(),
            owned_groups: Vec::new(),
            crash: None,
            is_global: true,
        });
    }

    let fabric = Arc::new(Fabric::new(&involved, global_ep, quantum_us));
    let started = Instant::now();
    let mut outcomes: Vec<EndpointOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let mine: Vec<EndpointPlan> =
                plans.iter().filter(|p| p.id as usize % threads == w).cloned().collect();
            if mine.is_empty() {
                continue;
            }
            let fabric = Arc::clone(&fabric);
            handles.push(scope.spawn(move || run_worker(fleet, regions, budget_us, mine, &fabric)));
        }
        for h in handles {
            outcomes.extend(h.join().expect("shard worker panicked"));
        }
    });
    let wall = started.elapsed();
    outcomes.sort_by_key(|o| o.id);

    // Deterministic event merge: (virtual time, shard, intra-shard order).
    let mut keys: Vec<(u64, u32, usize)> = Vec::new();
    for (ox, o) in outcomes.iter().enumerate() {
        for (ix, e) in o.events.iter().enumerate() {
            keys.push((e.at.as_micros(), ox as u32, ix));
        }
    }
    keys.sort_unstable();
    let events: Vec<Event> =
        keys.iter().map(|&(_, ox, ix)| outcomes[ox as usize].events[ix].clone()).collect();
    let fingerprint = fingerprint_events(&events);

    // Regions are authoritative for their groups' component values (global
    // completions flowed back via `LockRelease`).
    let mut cfg = world.initial_config();
    for o in &outcomes {
        for &(c, present) in &o.config {
            if present {
                cfg.insert(CompId::from_index(c as usize));
            } else {
                cfg.remove(CompId::from_index(c as usize));
            }
        }
    }

    let mut results: Vec<SessionResult> = outcomes.iter().flat_map(|o| o.results.clone()).collect();
    results.sort_by_key(|r| r.id);
    let first_submit = results.iter().filter_map(|r| r.submitted_at).min();
    let last_complete = results.iter().filter_map(|r| r.completed_at).max();
    let makespan_us = match (first_submit, last_complete) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => 0,
    };
    let intervals: Vec<(u64, Option<u64>)> =
        outcomes.iter().flat_map(|o| o.intervals.iter().copied()).collect();

    let per_shard: Vec<ShardStats> = outcomes
        .iter()
        .map(|o| ShardStats {
            shard: o.shard_tag,
            is_global: o.is_global,
            sessions: o.results.len(),
            completed: o.results.iter().filter(|r| r.completed_at.is_some()).count(),
            events: o.events.len(),
            delivered: o.stats.delivered,
            restores: o.restores,
            cache_hits: o.cache.hits,
            cache_misses: o.cache.misses,
        })
        .collect();

    let fabric_stats = {
        let st = fabric.state.lock().unwrap();
        let mut per_edge: Vec<(u32, u32, u64)> =
            st.edges.iter().map(|(&(s, d), e)| (s + 1, d + 1, e.sent)).collect();
        per_edge.sort_unstable();
        FabricStats {
            messages: per_edge.iter().map(|&(_, _, n)| n).sum(),
            per_edge,
            promise_updates: st.promise_updates,
        }
    };

    ShardReport {
        final_config: cfg.to_bit_string(),
        fingerprint,
        journals: outcomes.iter().map(|o| (o.shard_tag, o.journal_text.clone())).collect(),
        restores: outcomes.iter().map(|o| o.restores).sum(),
        max_concurrent: max_concurrent(intervals),
        makespan_us,
        shed: outcomes.iter().map(|o| o.shed).sum(),
        rejected: outcomes.iter().map(|o| o.rejected).sum(),
        breaker_trips: outcomes.iter().map(|o| o.breaker_trips).sum(),
        suppressed_sends: outcomes.iter().map(|o| o.suppressed_sends).sum(),
        per_shard,
        fabric: fabric_stats,
        results,
        events,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{disjoint_wave, run_fleet};

    #[test]
    fn disjoint_wave_shards_and_matches_unsharded_config() {
        let fleet = FleetScenario::new(8, disjoint_wave(8, 1));
        let unsharded = run_fleet(&fleet);
        let scn = ShardScenario::new(fleet, 4);
        let report = run_fleet_sharded(&scn, 2);
        assert_eq!(report.succeeded(), 8, "results: {:?}", report.results);
        assert_eq!(report.final_config, unsharded.final_config);
        assert_eq!(report.fabric.messages, 0, "disjoint waves never cross the fabric");
        assert_eq!(report.per_shard.len(), 4, "no straddlers ⇒ no global tier");
    }

    #[test]
    fn thread_count_is_invisible() {
        let mut fleet = FleetScenario::new(8, disjoint_wave(8, 1));
        // A straddler across regions 0|1 exercises the fabric too.
        fleet.sessions.push(SessionSpec {
            id: 100,
            flips: vec![(1, true), (2, true)],
            priority: 1,
            submit_at: SimDuration::from_millis(2),
            cancel_at: None,
        });
        let scn = ShardScenario::new(fleet, 4);
        let a = run_fleet_sharded(&scn, 1);
        let b = run_fleet_sharded(&scn, 4);
        assert_eq!(a.fingerprint, b.fingerprint, "event streams must be bit-for-bit identical");
        assert_eq!(a.final_config, b.final_config);
        assert_eq!(a.journals, b.journals);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn one_region_is_event_identical_to_run_fleet() {
        let fleet = FleetScenario::new(4, disjoint_wave(4, 1));
        let unsharded = run_fleet(&fleet);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 1), 1);
        assert_eq!(
            fingerprint_events_unsharded(&report.events),
            fingerprint_events_unsharded(&unsharded.events),
            "one region replicates the unsharded run modulo shard tags"
        );
        assert_eq!(report.final_config, unsharded.final_config);
    }

    #[test]
    fn straddling_session_escalates_and_commits() {
        // Groups 0..4 over 2 regions; session 9 straddles groups 1 and 2
        // (regions 0 and 1) while local sessions churn the same regions.
        let mut sessions = disjoint_wave(4, 1);
        sessions.push(SessionSpec {
            id: 9,
            flips: vec![(1, true), (2, true)],
            priority: 0,
            submit_at: SimDuration::from_millis(5),
            cancel_at: None,
        });
        let fleet = FleetScenario::new(4, sessions);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 2), 2);
        assert_eq!(report.succeeded(), 5, "results: {:?}", report.results);
        assert_eq!(report.final_config, "10101010");
        assert!(report.fabric.messages >= 4, "request/grant per slice + releases crossed");
        let global = report.per_shard.iter().find(|s| s.is_global).expect("global tier present");
        assert_eq!(global.sessions, 1);
        assert_eq!(global.completed, 1);
    }

    #[test]
    fn straddler_cancelled_before_grants_releases_slices() {
        // One long-running local session holds region 0's scope; the
        // straddler queues behind it and withdraws before the grant lands.
        let sessions = vec![
            SessionSpec {
                id: 1,
                flips: vec![(0, true)],
                priority: 0,
                submit_at: SimDuration::ZERO,
                cancel_at: None,
            },
            SessionSpec {
                id: 2,
                flips: vec![(0, false), (3, true)],
                priority: 0,
                submit_at: SimDuration::from_millis(1),
                cancel_at: Some(SimDuration::from_millis(4)),
            },
        ];
        let fleet = FleetScenario::new(4, sessions);
        let report = run_fleet_sharded(&ShardScenario::new(fleet, 2), 2);
        let s2 = report.session(2).expect("straddler reported");
        assert!(s2.cancelled && !s2.success, "results: {:?}", report.results);
        assert!(report.session(1).unwrap().success);
        // The withdrawn straddler's slices were released: group 0 moved by
        // session 1 only, group 3 stayed Old.
        assert_eq!(report.final_config, "01010110");
    }
}
