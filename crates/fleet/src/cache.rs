//! The fleet-wide plan cache: scope-normalized memoization of lazy plans.
//!
//! Many fleet sessions pose *isomorphic* planning problems — flip group 7
//! forward looks exactly like flip group 3 forward once the component names
//! are erased. The cache exploits this: a session's planning query is
//! normalized by relabeling its scope's components onto dense local ids
//! (scope components sorted ascending → `0, 1, …`), and the cache key is
//! the normalized *instance* — the in-scope invariants printed over local
//! ids, the scoped action repertoire as (removes, adds, cost) triples over
//! local ids, and the local projections of the two endpoints. Sessions over
//! disjoint-but-identical scopes therefore share cache entries.
//!
//! A cached value stores the plan as a sequence of indices into the
//! session's *scoped action list* (whose order is the world's action order,
//! hence identical across isomorphic scopes). Denormalization replays those
//! indices from the requester's own global source configuration, so the
//! returned [`Path`](sada_plan::Path) is bit-for-bit what a fresh search
//! would have produced — the search is deterministic and depends only on
//! the normalized instance (property-tested in `tests/fleet_props.rs`).
//! Replay validation after a crash re-derives plans by re-querying the
//! planner, so cached and fresh answers **must** coincide; a denormalized
//! plan that fails to re-apply (which the isomorphism argument rules out)
//! is treated as a miss and recomputed, never trusted.
//!
//! ## Coherence
//!
//! * **Safety**: a key only captures in-scope state, so the cache is
//!   consulted *after* both endpoints pass a full global safety check, and
//!   [`ScopeNormalizer::new`] refuses to normalize (returns `None`,
//!   disabling the cache for that session) whenever any invariant's support
//!   straddles the scope boundary — in-scope verdicts are then a pure
//!   function of in-scope bits.
//! * **Invalidation**: entries encode the action repertoire and invariants
//!   in the key, and [`PlanCache::invalidate`] drops everything when the
//!   world is swapped out from under the control plane.
//! * **Crash faults**: the cache is volatile state. A restored control
//!   plane starts cold (fresh cache), so cached paths are never treated as
//!   authoritative against the durable journal.

use std::collections::HashMap;

use sada_expr::{CompId, Config, Expr, InvariantSet};
use sada_plan::Action;

/// A normalized planning instance: the full problem statement over
/// scope-local component ids. Two sessions with equal keys pose the same
/// search problem and receive the same (relabeled) answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// In-scope invariants, printed over local ids (`c0`, `c1`, …).
    pub invs: Vec<String>,
    /// Scoped actions as (removes, adds, cost) over local ids, in scoped
    /// (= world) order.
    pub actions: Vec<(Config, Config, u64)>,
    /// Local projection of the source configuration.
    pub source: Config,
    /// Local projection of the target configuration.
    pub target: Config,
}

/// A memoized plan: indices into the session's scoped action list, in step
/// order, plus the total cost. `action_ixs` is scope-independent — the
/// scoped list has the same order under every isomorphic scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedPlan {
    /// Scoped-action index of each step.
    pub action_ixs: Vec<u32>,
    /// Total path cost.
    pub cost: u64,
}

/// Cache activity counters, surfaced in the fleet report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries inserted after a miss.
    pub insertions: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Whole-cache invalidations (world changed).
    pub invalidations: u64,
}

/// What a cache interaction was, for the observability stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheNoteKind {
    /// Lookup answered from the cache.
    Hit,
    /// Lookup missed; the session planned from scratch.
    Miss,
    /// An entry was evicted to make room.
    Evicted,
}

/// One cache interaction, tagged with the session that caused it. The
/// control plane drains these and emits them as
/// [`FleetEvent`](sada_obs::FleetEvent)s with simulated-time stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheNote {
    /// Session whose planning query interacted with the cache.
    pub session: u64,
    /// What happened.
    pub kind: CacheNoteKind,
}

#[derive(Debug, Clone)]
struct Slot {
    plan: Option<CachedPlan>,
    last_used: u64,
}

/// A bounded LRU cache of normalized planning instances, shared by every
/// session of one control-plane incarnation (`Rc<RefCell<PlanCache>>`).
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Slot>,
    capacity: usize,
    clock: u64,
    stats: PlanCacheStats,
    notes: Vec<CacheNote>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache is a contradiction");
        PlanCache {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            stats: PlanCacheStats::default(),
            notes: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a normalized instance. `Some(None)` is a *negative* hit —
    /// the instance is known to have no safe path. Records a hit or miss.
    pub fn lookup(&mut self, key: &PlanKey, session: u64) -> Option<Option<CachedPlan>> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.stats.hits += 1;
                self.notes.push(CacheNote { session, kind: CacheNoteKind::Hit });
                Some(slot.plan.clone())
            }
            None => {
                self.stats.misses += 1;
                self.notes.push(CacheNote { session, kind: CacheNoteKind::Miss });
                None
            }
        }
    }

    /// Memoizes the answer for a normalized instance (`None` = no safe
    /// path), evicting the least-recently-used entry at capacity.
    pub fn insert(&mut self, key: PlanKey, plan: Option<CachedPlan>, session: u64) {
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
                self.notes.push(CacheNote { session, kind: CacheNoteKind::Evicted });
            }
        }
        self.stats.insertions += 1;
        self.entries.insert(key, Slot { plan, last_used: self.clock });
    }

    /// Drops every entry. Call when the world's action repertoire or
    /// invariant set changes — the keys embed both, but stale isomorphic
    /// answers from a *previous* world must not survive a swap.
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.stats.invalidations += 1;
    }

    /// Drains the pending interaction notes (for event emission).
    pub fn take_notes(&mut self) -> Vec<CacheNote> {
        std::mem::take(&mut self.notes)
    }

    /// Activity counters so far.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

/// Relabels one session's scope onto dense local component ids and builds
/// normalized cache keys. Construction fails (`None`) when any invariant's
/// support straddles the scope boundary — in-scope safety would then depend
/// on out-of-scope bits and the normalized key would under-identify the
/// problem, so the session simply plans uncached.
#[derive(Debug, Clone)]
pub struct ScopeNormalizer {
    /// Scope components, ascending; position = local id.
    locals: Vec<CompId>,
    /// In-scope invariants printed over local ids, in world order.
    invs: Vec<String>,
    /// Scoped actions over local ids, in scoped order.
    actions: Vec<(Config, Config, u64)>,
}

impl ScopeNormalizer {
    /// A normalizer for `scope` under `inv`, over the `scoped` action list
    /// (every scoped action's touched set must lie inside `scope`).
    ///
    /// Compiles the invariant set itself; sessions on the hot path should
    /// use [`ScopeNormalizer::from_compiled`] with the world's shared
    /// kernels instead.
    pub fn new(
        inv: &InvariantSet,
        width: usize,
        scope: &[CompId],
        scoped: &[Action],
    ) -> Option<Self> {
        let compiled = inv.compile(width);
        Self::from_compiled(inv, &compiled, scope, scoped)
    }

    /// A normalizer for `scope` built from the world's already-compiled
    /// kernels: no per-session invariant compilation, no width-sized
    /// allocations — cost scales with the scope, not the world.
    ///
    /// Partitions invariants by support exactly as [`ScopeNormalizer::new`]:
    /// disjoint predicates are skipped (constant across the session, checked
    /// globally at the endpoints), in-scope predicates are relabeled into
    /// the key in world order, straddlers abort normalization (`None`).
    pub fn from_compiled<'a>(
        inv: &InvariantSet,
        compiled: &sada_expr::CompiledInvariants,
        scope: &[CompId],
        scoped: impl IntoIterator<Item = &'a Action>,
    ) -> Option<Self> {
        let mut locals: Vec<CompId> = scope.to_vec();
        locals.sort_unstable();
        locals.dedup();
        // The inverted support index yields exactly the predicates whose
        // support intersects the scope, ascending (= world order).
        let mut cand: Vec<u32> =
            locals.iter().flat_map(|&c| compiled.preds_of_comp(c).iter().copied()).collect();
        cand.sort_unstable();
        cand.dedup();
        let mut invs = Vec::with_capacity(cand.len());
        for pix in cand {
            let support = compiled.preds()[pix as usize].support();
            if !support.iter().all(|c| locals.binary_search(c).is_ok()) {
                return None;
            }
            invs.push(relabel(&inv.exprs()[pix as usize], &locals).to_string());
        }
        let nz = ScopeNormalizer { locals, invs, actions: Vec::new() };
        let actions = scoped
            .into_iter()
            .map(|a| (nz.project_ids(a.removes()), nz.project_ids(a.adds()), a.cost()))
            .collect();
        Some(ScopeNormalizer { actions, ..nz })
    }

    /// Number of local component ids (= scope size).
    pub fn local_width(&self) -> usize {
        self.locals.len()
    }

    /// The local projection of a global configuration: bit `l` is the
    /// membership of the scope's `l`-th component; out-of-scope bits drop.
    pub fn project(&self, cfg: &Config) -> Config {
        let mut out = Config::empty(self.locals.len().max(1));
        for (l, &c) in self.locals.iter().enumerate() {
            if cfg.contains(c) {
                out.insert(CompId::from_index(l));
            }
        }
        out
    }

    /// [`ScopeNormalizer::project`] for a sparse in-scope id list.
    ///
    /// # Panics
    ///
    /// Panics if an id lies outside the scope (scoped actions touch only
    /// scope components by construction).
    pub fn project_ids(&self, ids: &[CompId]) -> Config {
        let mut out = Config::empty(self.locals.len().max(1));
        for &c in ids {
            let l =
                self.locals.binary_search(&c).expect("scoped action touches only scope components");
            out.insert(CompId::from_index(l));
        }
        out
    }

    /// The normalized cache key for one planning query.
    pub fn key(&self, source: &Config, target: &Config) -> PlanKey {
        PlanKey {
            invs: self.invs.clone(),
            actions: self.actions.clone(),
            source: self.project(source),
            target: self.project(target),
        }
    }
}

/// `expr` with every variable replaced by its local id (its position in the
/// sorted `locals` list). Only called on expressions whose support lies
/// inside the scope.
fn relabel(expr: &Expr, locals: &[CompId]) -> Expr {
    let all = |es: &[Expr]| es.iter().map(|e| relabel(e, locals)).collect();
    match expr {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(c) => {
            let l = locals.binary_search(c).expect("relabel called on an out-of-scope variable");
            Expr::Var(CompId::from_index(l))
        }
        Expr::Not(e) => Expr::Not(Box::new(relabel(e, locals))),
        Expr::And(es) => Expr::And(all(es)),
        Expr::Or(es) => Expr::Or(all(es)),
        Expr::Xor(es) => Expr::Xor(all(es)),
        Expr::ExactlyOne(es) => Expr::ExactlyOne(all(es)),
        Expr::Implies(a, b) => {
            Expr::Implies(Box::new(relabel(a, locals)), Box::new(relabel(b, locals)))
        }
        Expr::Iff(a, b) => Expr::Iff(Box::new(relabel(a, locals)), Box::new(relabel(b, locals))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::Universe;

    fn two_group_world() -> (Universe, InvariantSet, Vec<Action>) {
        let mut u = Universe::new();
        for g in 0..2 {
            u.intern(&format!("Old{g}"));
            u.intern(&format!("New{g}"));
        }
        let inv =
            InvariantSet::parse(&["one_of(Old0, New0)", "one_of(Old1, New1)"], &mut u).unwrap();
        let mut actions = Vec::new();
        for g in 0..2u32 {
            let old = u.config_of(&[&format!("Old{g}")]);
            let new = u.config_of(&[&format!("New{g}")]);
            actions.push(Action::replace(2 * g, &format!("fwd{g}"), &old, &new, 1));
            actions.push(Action::replace(2 * g + 1, &format!("back{g}"), &new, &old, 1));
        }
        (u, inv, actions)
    }

    fn scoped_for(scope: &[CompId], actions: &[Action], width: usize) -> Vec<Action> {
        let mut cfg = Config::empty(width);
        for &c in scope {
            cfg.insert(c);
        }
        actions.iter().filter(|a| a.touches_only(&cfg)).cloned().collect()
    }

    #[test]
    fn isomorphic_scopes_normalize_to_the_same_key() {
        let (u, inv, actions) = two_group_world();
        let g0: Vec<CompId> = vec![u.id("Old0").unwrap(), u.id("New0").unwrap()];
        let g1: Vec<CompId> = vec![u.id("Old1").unwrap(), u.id("New1").unwrap()];
        let s0 = scoped_for(&g0, &actions, u.len());
        let s1 = scoped_for(&g1, &actions, u.len());
        let n0 = ScopeNormalizer::new(&inv, u.len(), &g0, &s0).unwrap();
        let n1 = ScopeNormalizer::new(&inv, u.len(), &g1, &s1).unwrap();
        let init = u.config_of(&["Old0", "Old1"]);
        let k0 = n0.key(&init, &u.config_of(&["New0", "Old1"]));
        let k1 = n1.key(&init, &u.config_of(&["Old0", "New1"]));
        assert_eq!(k0, k1, "flip-group-0 and flip-group-1 are the same problem");
        // Differing directions are *different* problems.
        let k1b = n1.key(&u.config_of(&["Old0", "New1"]), &init);
        assert_ne!(k0, k1b);
    }

    #[test]
    fn straddling_invariants_disable_normalization() {
        let (mut u, _, actions) = two_group_world();
        // A cross-group invariant whose support spans both scopes.
        let inv = InvariantSet::parse(&["one_of(Old0, New0)", "Old0 => Old1"], &mut u).unwrap();
        let g0: Vec<CompId> = vec![u.id("Old0").unwrap(), u.id("New0").unwrap()];
        let s0 = scoped_for(&g0, &actions, u.len());
        assert!(ScopeNormalizer::new(&inv, u.len(), &g0, &s0).is_none());
        // The full-span scope contains the straddler and normalizes fine.
        let all: Vec<CompId> = (0..u.len()).map(CompId::from_index).collect();
        let sall = scoped_for(&all, &actions, u.len());
        assert!(ScopeNormalizer::new(&inv, u.len(), &all, &sall).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let (u, inv, actions) = two_group_world();
        let g0: Vec<CompId> = vec![u.id("Old0").unwrap(), u.id("New0").unwrap()];
        let s0 = scoped_for(&g0, &actions, u.len());
        let nz = ScopeNormalizer::new(&inv, u.len(), &g0, &s0).unwrap();
        let a = u.config_of(&["Old0"]);
        let b = u.config_of(&["New0"]);
        let mut cache = PlanCache::new(2);
        let k_ab = nz.key(&a, &b);
        let k_ba = nz.key(&b, &a);
        let k_aa = nz.key(&a, &a);
        cache.insert(k_ab.clone(), None, 1);
        cache.insert(k_ba.clone(), None, 1);
        assert!(cache.lookup(&k_ab, 1).is_some(), "touch k_ab so k_ba is coldest");
        cache.insert(k_aa.clone(), None, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&k_ba, 1).is_none(), "k_ba was evicted");
        assert!(cache.lookup(&k_ab, 1).is_some());
        assert!(cache.lookup(&k_aa, 1).is_some());
        let stats = cache.stats();
        assert_eq!((stats.insertions, stats.evictions), (3, 1));
        let kinds: Vec<CacheNoteKind> = cache.take_notes().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&CacheNoteKind::Evicted));
        assert!(cache.take_notes().is_empty(), "notes drain once");
    }

    #[test]
    fn invalidate_empties_the_cache_but_keeps_counters() {
        let (u, inv, actions) = two_group_world();
        let g0: Vec<CompId> = vec![u.id("Old0").unwrap(), u.id("New0").unwrap()];
        let s0 = scoped_for(&g0, &actions, u.len());
        let nz = ScopeNormalizer::new(&inv, u.len(), &g0, &s0).unwrap();
        let key = nz.key(&u.config_of(&["Old0"]), &u.config_of(&["New0"]));
        let mut cache = PlanCache::new(8);
        cache.insert(key.clone(), Some(CachedPlan { action_ixs: vec![0], cost: 1 }), 7);
        assert!(cache.lookup(&key, 7).is_some());
        cache.invalidate();
        assert!(cache.is_empty());
        assert!(cache.lookup(&key, 7).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 1, 1));
    }
}
