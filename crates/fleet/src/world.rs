//! The fleet world: many independent component groups, each its own
//! collaborative set, hosted pairwise across agent processes.
//!
//! Group `g` consists of components `Old{g}` and `New{g}` under the
//! dependency invariant `one_of(Old{g}, New{g})`, with a forward replace
//! action (id `2g`) and a backward one (id `2g+1`). `Old{g}` lives on
//! process `2g` and `New{g}` on process `2g+1`, so every step has **two**
//! participants and the realization protocol runs real adapt/resume
//! barriers rather than the solo fast path.

use sada_expr::{CompId, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, CollabIndex};

/// Static description of a fleet: universe, invariants, actions, placement,
/// and the collaborative-set index used for scope extraction.
pub struct FleetWorld {
    /// Component universe: `Old{g}`, `New{g}` interned in group order.
    pub universe: Universe,
    /// One `one_of(Old{g}, New{g})` invariant per group.
    pub inv: InvariantSet,
    /// Forward (`2g`) and backward (`2g+1`) replace actions, cost 1.
    pub actions: Vec<Action>,
    /// Placement: `Old{g}` on process `2g`, `New{g}` on process `2g+1`.
    pub model: SystemModel,
    /// Process id index → agent index (identity here).
    pub agent_of_process: Vec<usize>,
    /// Collaborative-set partition (one set per group).
    pub index: CollabIndex,
    /// Number of component groups.
    pub groups: usize,
}

impl FleetWorld {
    /// Builds a world of `groups` independent groups.
    pub fn build(groups: usize) -> Self {
        assert!(groups > 0, "a fleet needs at least one group");
        let mut universe = Universe::with_capacity(2 * groups);
        let mut sources = Vec::with_capacity(groups);
        for g in 0..groups {
            universe.intern(&format!("Old{g}"));
            universe.intern(&format!("New{g}"));
            sources.push(format!("one_of(Old{g}, New{g})"));
        }
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let inv = InvariantSet::parse(&refs, &mut universe).expect("fleet invariants parse");
        let mut actions = Vec::with_capacity(2 * groups);
        let mut model = SystemModel::new();
        let mut agent_of_process = Vec::with_capacity(2 * groups);
        for g in 0..groups {
            let old = universe.config_of(&[&format!("Old{g}")]);
            let new = universe.config_of(&[&format!("New{g}")]);
            actions.push(Action::replace(2 * g as u32, &format!("fwd{g}"), &old, &new, 1));
            actions.push(Action::replace(2 * g as u32 + 1, &format!("back{g}"), &new, &old, 1));
            let p_old = model.add_process(&format!("p{}", 2 * g));
            let p_new = model.add_process(&format!("p{}", 2 * g + 1));
            model.place(old.iter().next().unwrap(), p_old);
            model.place(new.iter().next().unwrap(), p_new);
            agent_of_process.push(2 * g);
            agent_of_process.push(2 * g + 1);
        }
        let index = CollabIndex::new(&universe, &inv, &actions);
        FleetWorld { universe, inv, actions, model, agent_of_process, index, groups }
    }

    /// The `Old{g}` component.
    pub fn old(&self, g: usize) -> CompId {
        self.universe.id(&format!("Old{g}")).expect("group in range")
    }

    /// The `New{g}` component.
    pub fn newer(&self, g: usize) -> CompId {
        self.universe.id(&format!("New{g}")).expect("group in range")
    }

    /// The boot configuration: every group on its `Old` component.
    pub fn initial_config(&self) -> Config {
        let mut cfg = self.universe.empty_config();
        for g in 0..self.groups {
            cfg.insert(self.old(g));
        }
        cfg
    }

    /// `current` with each flipped group moved to `New` (`true`) or `Old`
    /// (`false`); unflipped groups keep their membership.
    pub fn target_for(&self, current: &Config, flips: &[(usize, bool)]) -> Config {
        let mut cfg = current.clone();
        for &(g, to_new) in flips {
            let (add, del) =
                if to_new { (self.newer(g), self.old(g)) } else { (self.old(g), self.newer(g)) };
            cfg.insert(add);
            cfg.remove(del);
        }
        cfg
    }

    /// The adaptation scope of a flip set: every flipped group's components,
    /// expanded to full collaborative sets (sorted, deduplicated).
    pub fn scope_comps(&self, flips: &[(usize, bool)]) -> Vec<CompId> {
        self.index.expand(flips.iter().map(|&(g, _)| self.old(g)))
    }

    /// The lock resources of a scope: the component ids themselves plus the
    /// hosting processes (offset past the component id space so the two
    /// namespaces cannot collide). Locking hosts as well as components means
    /// two sessions can never concurrently drive the *same agent process*
    /// through conflicting barriers.
    pub fn resources_for(&self, scope: &[CompId]) -> Vec<u32> {
        let offset = self.universe.len() as u32;
        let mut out: Vec<u32> = Vec::with_capacity(scope.len() * 2);
        for &c in scope {
            out.push(c.index() as u32);
            if let Some(p) = self.model.host_of(c) {
                out.push(offset + p.0);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_independent_collaborative_sets() {
        let w = FleetWorld::build(4);
        assert_eq!(w.index.sets().len(), 4);
        assert_eq!(w.universe.len(), 8);
        assert_eq!(w.model.process_count(), 8);
        assert_ne!(w.index.set_of(w.old(0)), w.index.set_of(w.old(1)));
        assert_eq!(w.index.set_of(w.old(2)), w.index.set_of(w.newer(2)));
    }

    #[test]
    fn initial_config_is_safe_and_targets_flip() {
        let w = FleetWorld::build(3);
        let init = w.initial_config();
        assert!(w.inv.satisfied_by(&init));
        let t = w.target_for(&init, &[(1, true)]);
        assert!(w.inv.satisfied_by(&t));
        assert!(t.contains(w.newer(1)) && !t.contains(w.old(1)));
        assert!(t.contains(w.old(0)) && t.contains(w.old(2)));
        let back = w.target_for(&t, &[(1, false)]);
        assert_eq!(back, init);
    }

    #[test]
    fn scopes_and_resources_are_disjoint_across_groups() {
        let w = FleetWorld::build(5);
        let a = w.resources_for(&w.scope_comps(&[(0, true)]));
        let b = w.resources_for(&w.scope_comps(&[(1, true), (2, true)]));
        assert_eq!(a.len(), 4, "two comps + two hosts");
        assert_eq!(b.len(), 8);
        assert!(a.iter().all(|r| !b.contains(r)));
        // Same group from either direction yields the same scope.
        assert_eq!(w.scope_comps(&[(3, true)]), w.scope_comps(&[(3, false)]));
    }
}
