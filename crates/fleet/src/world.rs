//! The fleet world: component clusters, each its own collaborative set,
//! hosted across agent processes.
//!
//! Historically this module hard-coded one shape — the paper's video
//! multicast cloned `N` times (`Old{g}`/`New{g}` under
//! `one_of(Old{g}, New{g})`). That shape is now just one [`WorldSpec`]:
//! a declarative description of components, invariants, actions with
//! *two* cost columns (milliseconds and watts), cluster structure, and
//! placement, from which [`FleetWorld::from_spec`] compiles the runtime
//! world. The seeded scenario generator (`sada-scenario`) emits specs for
//! the serverless codec-fleet and IaaS-migration domains through the same
//! entry point, so every domain runs on the identical safety machinery.
//!
//! A **cluster** is the unit the fleet drivers flip: a set of components
//! with two named modes (`on_false`, the boot mode, and `on_true`, the
//! alternate). Session flips `(g, to_true)` move cluster `g` between its
//! modes. Generators must keep each cluster's invariants and actions
//! confined to the cluster's components so clusters remain independent
//! collaborative sets — the property region partitioning and the plan
//! cache's scope normalizer rely on.

use sada_expr::{CompId, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, CollabIndex, Search};

/// Which adaptation domain a world models. Tagged into the observability
/// stream (non-video domains) so event consumers can tell workloads apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// The paper's video-multicast case study, cloned per group.
    Video,
    /// Serverless fleet: per-function codecs hot-swapped under load.
    Serverless,
    /// IaaS migration: live VM/host reconfiguration with network-bound
    /// costs and an optional energy objective.
    Iaas,
}

impl Domain {
    /// Stable numeric tag used by the observability codec.
    pub fn tag(self) -> u32 {
        match self {
            Domain::Video => 0,
            Domain::Serverless => 1,
            Domain::Iaas => 2,
        }
    }

    /// Inverse of [`Domain::tag`].
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            0 => Some(Domain::Video),
            1 => Some(Domain::Serverless),
            2 => Some(Domain::Iaas),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Video => "video",
            Domain::Serverless => "serverless",
            Domain::Iaas => "iaas",
        }
    }
}

/// Which of an action's two cost columns MAP minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize milliseconds of adaptation disruption (the paper's model).
    LatencyMs,
    /// Minimize watts drawn by the reconfiguration (energy-aware IaaS).
    EnergyWatts,
}

impl Objective {
    /// Stable numeric tag used by the observability codec.
    pub fn tag(self) -> u32 {
        match self {
            Objective::LatencyMs => 0,
            Objective::EnergyWatts => 1,
        }
    }

    /// Inverse of [`Objective::tag`].
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            0 => Some(Objective::LatencyMs),
            1 => Some(Objective::EnergyWatts),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            Objective::LatencyMs => "latency_ms",
            Objective::EnergyWatts => "energy_watts",
        }
    }
}

/// One component: a unique name and the process hosting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompSpec {
    /// Unique component name (interned into the universe in declaration
    /// order, so indices into `WorldSpec::comps` are `CompId` indices).
    pub name: String,
    /// Hosting process index. Processes are created densely `0..=max`.
    pub process: usize,
}

/// One adaptive action over component indices, with both cost columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSpec {
    /// Human-readable label, e.g. `"vm3: hostA -> transit"`.
    pub name: String,
    /// Component indices removed by the action.
    pub removes: Vec<usize>,
    /// Component indices added by the action.
    pub adds: Vec<usize>,
    /// Latency cost column (paper's "Cost (ms)").
    pub cost_ms: u64,
    /// Energy cost column (watts drawn during the step).
    pub cost_watts: u64,
}

/// A flip unit: the components of one cluster and its two modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// All component indices of the cluster (one collaborative set).
    pub comps: Vec<usize>,
    /// Components present in the boot mode (flip direction `false`).
    pub on_false: Vec<usize>,
    /// Components present in the alternate mode (flip direction `true`).
    pub on_true: Vec<usize>,
}

/// Declarative description of a fleet world, compiled by
/// [`FleetWorld::from_spec`]. The video clone, the serverless codec fleet
/// and the IaaS-migration domain are all instances of this one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSpec {
    /// Which domain the spec models (observability tag).
    pub domain: Domain,
    /// Which cost column MAP minimizes.
    pub objective: Objective,
    /// Components in interning order.
    pub comps: Vec<CompSpec>,
    /// Invariant sources over component names (parsed as one set).
    pub invariants: Vec<String>,
    /// Action repertoire; an action's **position is its id** (the planner
    /// compiles `ActionId` indices back into this table).
    pub actions: Vec<ActionSpec>,
    /// Flip units. Every component belongs to exactly one cluster.
    pub clusters: Vec<ClusterSpec>,
}

impl WorldSpec {
    /// The classic video world: `groups` independent `Old/New` pairs, one
    /// `one_of` invariant and a forward/backward replace pair per group,
    /// each component on its own process.
    pub fn video(groups: usize) -> Self {
        assert!(groups > 0, "a fleet needs at least one group");
        let mut comps = Vec::with_capacity(2 * groups);
        let mut invariants = Vec::with_capacity(groups);
        let mut actions = Vec::with_capacity(2 * groups);
        let mut clusters = Vec::with_capacity(groups);
        for g in 0..groups {
            comps.push(CompSpec { name: format!("Old{g}"), process: 2 * g });
            comps.push(CompSpec { name: format!("New{g}"), process: 2 * g + 1 });
            invariants.push(format!("one_of(Old{g}, New{g})"));
            actions.push(ActionSpec {
                name: format!("fwd{g}"),
                removes: vec![2 * g],
                adds: vec![2 * g + 1],
                cost_ms: 1,
                cost_watts: 1,
            });
            actions.push(ActionSpec {
                name: format!("back{g}"),
                removes: vec![2 * g + 1],
                adds: vec![2 * g],
                cost_ms: 1,
                cost_watts: 1,
            });
            clusters.push(ClusterSpec {
                comps: vec![2 * g, 2 * g + 1],
                on_false: vec![2 * g],
                on_true: vec![2 * g + 1],
            });
        }
        WorldSpec {
            domain: Domain::Video,
            objective: Objective::LatencyMs,
            comps,
            invariants,
            actions,
            clusters,
        }
    }

    /// Number of hosting processes (dense `0..=max` over `comps`).
    pub fn process_count(&self) -> usize {
        self.comps.iter().map(|c| c.process + 1).max().unwrap_or(0)
    }
}

/// Static description of a fleet: universe, invariants, actions, placement,
/// the collaborative-set index used for scope extraction, and the spec the
/// world was compiled from.
pub struct FleetWorld {
    /// Component universe, interned in `spec.comps` order.
    pub universe: Universe,
    /// Compiled invariant set.
    pub inv: InvariantSet,
    /// Action table; **an action's id equals its index** (the planner
    /// relies on this when mapping plan steps back to actions).
    pub actions: Vec<Action>,
    /// Placement of components onto agent processes.
    pub model: SystemModel,
    /// Process id index → agent index (identity here).
    pub agent_of_process: Vec<usize>,
    /// Collaborative-set partition (one set per cluster).
    pub index: CollabIndex,
    /// The compiled planning context over the whole world — invariant
    /// kernels, action index, inverted touch index — built **once** here
    /// and shared by every session (scoped planners restrict it to their
    /// action subset instead of compiling their own).
    pub search: Search,
    /// Number of flip units (`spec.clusters.len()`).
    pub groups: usize,
    /// The declarative spec this world was compiled from.
    pub spec: WorldSpec,
}

impl FleetWorld {
    /// Builds the classic video world of `groups` independent groups.
    pub fn build(groups: usize) -> Self {
        Self::from_spec(WorldSpec::video(groups))
    }

    /// Compiles a [`WorldSpec`] into a runtime world, choosing the action
    /// cost column named by the spec's objective.
    ///
    /// # Panics
    ///
    /// Panics on malformed specs: duplicate component names, invariants
    /// mentioning undeclared components, out-of-range action or cluster
    /// indices, a component in zero or multiple clusters, or an initial
    /// configuration that violates the invariants.
    pub fn from_spec(spec: WorldSpec) -> Self {
        assert!(!spec.comps.is_empty(), "a world needs at least one component");
        assert!(!spec.clusters.is_empty(), "a world needs at least one cluster");
        let mut universe = Universe::with_capacity(spec.comps.len());
        for c in &spec.comps {
            universe.intern(&c.name);
        }
        assert_eq!(universe.len(), spec.comps.len(), "component names must be unique");
        let refs: Vec<&str> = spec.invariants.iter().map(String::as_str).collect();
        let inv = InvariantSet::parse(&refs, &mut universe).expect("world invariants parse");
        assert_eq!(
            universe.len(),
            spec.comps.len(),
            "invariants may only mention declared components"
        );
        let mut actions = Vec::with_capacity(spec.actions.len());
        for (ix, a) in spec.actions.iter().enumerate() {
            let mut removes = Vec::with_capacity(a.removes.len());
            for &c in &a.removes {
                assert!(c < spec.comps.len(), "action {}: removes out of range", a.name);
                removes.push(CompId::from_index(c));
            }
            let mut adds = Vec::with_capacity(a.adds.len());
            for &c in &a.adds {
                assert!(c < spec.comps.len(), "action {}: adds out of range", a.name);
                adds.push(CompId::from_index(c));
            }
            let cost = match spec.objective {
                Objective::LatencyMs => a.cost_ms,
                Objective::EnergyWatts => a.cost_watts,
            }
            .max(1);
            // Sparse construction: the dense `Config` round trip here cost
            // O(actions × width) — gigabytes of churn at 100k groups.
            actions.push(Action::from_ids(ix as u32, &a.name, removes, adds, cost));
        }
        let process_count = spec.process_count();
        let mut model = SystemModel::with_capacity(process_count, spec.comps.len());
        let procs: Vec<_> =
            (0..process_count).map(|p| model.add_process(&format!("p{p}"))).collect();
        for (ix, c) in spec.comps.iter().enumerate() {
            model.place(CompId::from_index(ix), procs[c.process]);
        }
        let agent_of_process: Vec<usize> = (0..process_count).collect();
        // Every component must belong to exactly one cluster: region
        // ownership and distillation cover the universe exactly once.
        let mut owner = vec![usize::MAX; spec.comps.len()];
        for (g, cl) in spec.clusters.iter().enumerate() {
            assert!(!cl.comps.is_empty(), "cluster {g} is empty");
            for &c in &cl.comps {
                assert!(c < spec.comps.len(), "cluster {g}: comp out of range");
                assert_eq!(owner[c], usize::MAX, "comp {c} in multiple clusters");
                owner[c] = g;
            }
            for &c in cl.on_false.iter().chain(cl.on_true.iter()) {
                assert!(cl.comps.contains(&c), "cluster {g}: mode comp outside cluster");
            }
        }
        assert!(owner.iter().all(|&g| g != usize::MAX), "every comp needs a cluster");
        let index = CollabIndex::new(&universe, &inv, &actions);
        let search = Search::new(&inv, &actions, universe.len());
        let groups = spec.clusters.len();
        let world = FleetWorld {
            universe,
            inv,
            actions,
            model,
            agent_of_process,
            index,
            search,
            groups,
            spec,
        };
        assert!(
            world.inv.satisfied_by(&world.initial_config()),
            "initial configuration violates the invariants"
        );
        world
    }

    /// The spec's domain.
    pub fn domain(&self) -> Domain {
        self.spec.domain
    }

    /// The spec's cost objective.
    pub fn objective(&self) -> Objective {
        self.spec.objective
    }

    /// Component indices of cluster `g` (the flip unit's full membership).
    pub fn cluster_comps(&self, g: usize) -> &[usize] {
        &self.spec.clusters[g].comps
    }

    /// The agent index driving `c`'s hosting process, if placed.
    pub fn agent_for(&self, c: CompId) -> Option<usize> {
        self.model.host_of(c).map(|p| self.agent_of_process[p.0 as usize])
    }

    /// The `Old{g}` component (video worlds only).
    pub fn old(&self, g: usize) -> CompId {
        self.universe.id(&format!("Old{g}")).expect("group in range")
    }

    /// The `New{g}` component (video worlds only).
    pub fn newer(&self, g: usize) -> CompId {
        self.universe.id(&format!("New{g}")).expect("group in range")
    }

    /// The boot configuration: every cluster in its `on_false` mode.
    pub fn initial_config(&self) -> Config {
        let mut cfg = self.universe.empty_config();
        for cl in &self.spec.clusters {
            for &c in &cl.on_false {
                cfg.insert(CompId::from_index(c));
            }
        }
        cfg
    }

    /// `current` with each flipped cluster moved to its `on_true` (`true`)
    /// or `on_false` (`false`) mode; unflipped clusters keep their
    /// membership.
    pub fn target_for(&self, current: &Config, flips: &[(usize, bool)]) -> Config {
        let mut cfg = current.clone();
        for &(g, to_true) in flips {
            let cl = &self.spec.clusters[g];
            let mode = if to_true { &cl.on_true } else { &cl.on_false };
            for &c in &cl.comps {
                if mode.contains(&c) {
                    cfg.insert(CompId::from_index(c));
                } else {
                    cfg.remove(CompId::from_index(c));
                }
            }
        }
        cfg
    }

    /// The adaptation scope of a flip set: every flipped cluster's
    /// components, expanded to full collaborative sets (sorted,
    /// deduplicated).
    pub fn scope_comps(&self, flips: &[(usize, bool)]) -> Vec<CompId> {
        self.index.expand(
            flips
                .iter()
                .flat_map(|&(g, _)| self.spec.clusters[g].comps.iter().copied())
                .map(CompId::from_index),
        )
    }

    /// The lock resources of a scope: the component ids themselves plus the
    /// hosting processes (offset past the component id space so the two
    /// namespaces cannot collide). Locking hosts as well as components means
    /// two sessions can never concurrently drive the *same agent process*
    /// through conflicting barriers.
    pub fn resources_for(&self, scope: &[CompId]) -> Vec<u32> {
        let offset = self.universe.len() as u32;
        let mut out: Vec<u32> = Vec::with_capacity(scope.len() * 2);
        for &c in scope {
            out.push(c.index() as u32);
            if let Some(p) = self.model.host_of(c) {
                out.push(offset + p.0);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_independent_collaborative_sets() {
        let w = FleetWorld::build(4);
        assert_eq!(w.index.sets().len(), 4);
        assert_eq!(w.universe.len(), 8);
        assert_eq!(w.model.process_count(), 8);
        assert_ne!(w.index.set_of(w.old(0)), w.index.set_of(w.old(1)));
        assert_eq!(w.index.set_of(w.old(2)), w.index.set_of(w.newer(2)));
        assert_eq!(w.domain(), Domain::Video);
        assert_eq!(w.objective(), Objective::LatencyMs);
    }

    #[test]
    fn initial_config_is_safe_and_targets_flip() {
        let w = FleetWorld::build(3);
        let init = w.initial_config();
        assert!(w.inv.satisfied_by(&init));
        let t = w.target_for(&init, &[(1, true)]);
        assert!(w.inv.satisfied_by(&t));
        assert!(t.contains(w.newer(1)) && !t.contains(w.old(1)));
        assert!(t.contains(w.old(0)) && t.contains(w.old(2)));
        let back = w.target_for(&t, &[(1, false)]);
        assert_eq!(back, init);
    }

    #[test]
    fn scopes_and_resources_are_disjoint_across_groups() {
        let w = FleetWorld::build(5);
        let a = w.resources_for(&w.scope_comps(&[(0, true)]));
        let b = w.resources_for(&w.scope_comps(&[(1, true), (2, true)]));
        assert_eq!(a.len(), 4, "two comps + two hosts");
        assert_eq!(b.len(), 8);
        assert!(a.iter().all(|r| !b.contains(r)));
        // Same group from either direction yields the same scope.
        assert_eq!(w.scope_comps(&[(3, true)]), w.scope_comps(&[(3, false)]));
    }

    /// A three-mode migration cluster sharing hosts: the spec compiler must
    /// handle multi-comp clusters, shared processes, and the energy column.
    fn migration_spec(objective: Objective) -> WorldSpec {
        WorldSpec {
            domain: Domain::Iaas,
            objective,
            comps: vec![
                CompSpec { name: "vm0_src".into(), process: 0 },
                CompSpec { name: "vm0_transit".into(), process: 0 },
                CompSpec { name: "vm0_dst".into(), process: 1 },
            ],
            invariants: vec!["one_of(vm0_src, vm0_transit, vm0_dst)".into()],
            actions: vec![
                ActionSpec {
                    name: "precopy".into(),
                    removes: vec![0],
                    adds: vec![1],
                    cost_ms: 40,
                    cost_watts: 9,
                },
                ActionSpec {
                    name: "switch".into(),
                    removes: vec![1],
                    adds: vec![2],
                    cost_ms: 15,
                    cost_watts: 3,
                },
                ActionSpec {
                    name: "rollback".into(),
                    removes: vec![2],
                    adds: vec![0],
                    cost_ms: 55,
                    cost_watts: 12,
                },
            ],
            clusters: vec![ClusterSpec {
                comps: vec![0, 1, 2],
                on_false: vec![0],
                on_true: vec![2],
            }],
        }
    }

    #[test]
    fn from_spec_compiles_multi_mode_clusters_and_objectives() {
        let w = FleetWorld::from_spec(migration_spec(Objective::LatencyMs));
        assert_eq!(w.groups, 1);
        assert_eq!(w.model.process_count(), 2);
        assert_eq!(w.actions[0].cost(), 40);
        // Two comps share process 0; the third lives on process 1.
        assert_eq!(w.agent_for(CompId::from_index(0)), Some(0));
        assert_eq!(w.agent_for(CompId::from_index(1)), Some(0));
        assert_eq!(w.agent_for(CompId::from_index(2)), Some(1));
        let init = w.initial_config();
        assert!(w.inv.satisfied_by(&init));
        let t = w.target_for(&init, &[(0, true)]);
        assert!(t.contains(CompId::from_index(2)) && !t.contains(CompId::from_index(0)));
        // The whole cluster is one scope; resources cover both hosts.
        assert_eq!(w.scope_comps(&[(0, true)]).len(), 3);
        assert_eq!(w.resources_for(&w.scope_comps(&[(0, true)])).len(), 5);

        let e = FleetWorld::from_spec(migration_spec(Objective::EnergyWatts));
        assert_eq!(e.actions[0].cost(), 9, "energy objective selects the watt column");
        assert_eq!(e.objective(), Objective::EnergyWatts);
    }
}
