//! Fabric chaos: the cross-shard lock handshake under seeded message
//! faults (drop / duplicate / delay-burst / null suppression) combined
//! with a global-tier crash and a region crash — with straddlers allowed
//! onto the faulted region.
//!
//! The contract under chaos is the same as without it, because the fault
//! plan is *scenario*, not execution:
//!
//! 1. **Bit-for-bit determinism** — fingerprints, per-shard journals, the
//!    global journal, and per-session results are identical at 1/2/4/8
//!    worker threads for a fixed lossy scenario.
//! 2. **Convergence** — a lossy run lands the identical final
//!    configuration and per-session verdicts as its lossless twin: the
//!    retransmission ladder plus idempotent grant/release application make
//!    the fabric exactly-once in effect.
//! 3. **No vanished sessions** — every admitted session ends with a
//!    journaled terminal verdict, even when the ladder exhausts against a
//!    dead region and the straddler is abandoned.
//!
//! Seed count: `SADA_CHAOS_SEEDS` overrides the default sweep width;
//! `SADA_FULL_CHAOS=1` runs the long soak. Replay one seed by fixing the
//! fault-plan seed printed in a failure message (the plan is the scenario).

use proptest::prelude::*;
use sada_fleet::{
    encode_fabric_msg, parse_fabric_msg, run_fleet_sharded, FabricFaultPlan, FabricPayload,
    FleetScenario, SessionSpec, ShardReport, ShardScenario,
};
use sada_simnet::{SimDuration, SimTime};

const GROUPS: usize = 8;
const REGIONS: usize = 4;

fn sweep_seeds() -> u64 {
    if let Ok(v) = std::env::var("SADA_CHAOS_SEEDS") {
        return v.parse().expect("SADA_CHAOS_SEEDS must be a number");
    }
    if std::env::var("SADA_FULL_CHAOS").is_ok_and(|v| v == "1") {
        60
    } else {
        20
    }
}

/// Locals on groups 0..6 plus two straddlers, one of which crosses the
/// faulted region. Every flip targets `true`, so the final configuration
/// is order-independent: lossy timing shifts admission order, never the
/// destination.
fn chaos_fleet(seed: u64) -> FleetScenario {
    let mut sessions: Vec<SessionSpec> = (0..6)
        .map(|g| SessionSpec {
            id: g as u64 + 1,
            flips: vec![(g, true)],
            priority: (seed >> (g % 8)) as u8 % 4,
            submit_at: SimDuration::from_micros((seed.rotate_left(g as u32) % 4_000) + 500),
            cancel_at: None,
        })
        .collect();
    // Regions 0 | 1 — region 1 is the one that crashes.
    sessions.push(SessionSpec {
        id: 100,
        flips: vec![(1, true), (2, true)],
        priority: 1,
        submit_at: SimDuration::from_millis(5),
        cancel_at: None,
    });
    // Regions 2 | 3 — crosses the healthy half of the fleet.
    sessions.push(SessionSpec {
        id: 101,
        flips: vec![(5, true), (6, true)],
        priority: 0,
        submit_at: SimDuration::from_millis(12),
        cancel_at: None,
    });
    let mut fleet = FleetScenario::new(GROUPS, sessions);
    fleet.seed = seed;
    fleet.time_budget = SimDuration::from_secs(40);
    fleet
}

fn chaos_faults(seed: u64) -> FabricFaultPlan {
    FabricFaultPlan {
        seed,
        drop_per_mille: 200,
        dup_per_mille: 200,
        delay_per_mille: 200,
        max_delay_quanta: 4,
        null_drop_per_mille: 100,
        ..FabricFaultPlan::default()
    }
}

/// The full chaos scenario: fabric faults + global-tier crash + region-1
/// crash, straddler 100 squarely on the faulted region.
fn chaos_scenario(seed: u64) -> ShardScenario {
    let mut scn = ShardScenario::new(chaos_fleet(seed), REGIONS);
    scn.fabric_faults = chaos_faults(seed ^ 0xFAB);
    scn.crash_global =
        Some((SimTime::from_micros(6_000 + (seed % 5) * 700), SimTime::from_micros(400_000)));
    scn.crash_region =
        Some((1, SimTime::from_micros(8_000 + (seed % 3) * 900), SimTime::from_micros(700_000)));
    scn
}

fn assert_all_concluded(report: &ShardReport, ctxt: &str) {
    for r in &report.results {
        assert!(
            r.completed_at.is_some() || r.cancelled,
            "{ctxt}: session {} vanished without a terminal verdict: {:?}",
            r.id,
            report.results
        );
    }
    // Quiescence: once every session has a verdict, no control plane may
    // still hold lock-table entries or foreign holds — orphaned releases
    // are garbage-collected by lease expiry, everything else by the
    // ordinary release path.
    assert_eq!(
        report.residual_holds, 0,
        "{ctxt}: lock table not empty at quiescence ({} residual holds)",
        report.residual_holds
    );
}

/// Sweep: for each seed the lossy, doubly-crashed run is bit-for-bit
/// identical across 1/2/4/8 worker threads and converges to its lossless
/// twin's verdicts and final configuration.
#[test]
fn chaos_sweep_is_deterministic_and_convergent() {
    for seed in 1..=sweep_seeds() {
        let scn = chaos_scenario(seed);
        let base = run_fleet_sharded(&scn, 1);
        assert_all_concluded(&base, &format!("seed {seed}"));
        for threads in [2, 4, 8] {
            let run = run_fleet_sharded(&scn, threads);
            assert_eq!(
                run.fingerprint, base.fingerprint,
                "seed {seed}, threads {threads}: event streams diverged"
            );
            assert_eq!(run.journals, base.journals, "seed {seed}, threads {threads}");
            assert_eq!(run.global_journal, base.global_journal, "seed {seed}, threads {threads}");
            assert_eq!(run.results, base.results, "seed {seed}, threads {threads}");
            assert_eq!(run.final_config, base.final_config, "seed {seed}, threads {threads}");
        }
        // Lossless twin: same crashes, faults off. Timing differs (the
        // ladder stretches the handshake), verdicts and the destination
        // configuration may not.
        let mut lossless = chaos_scenario(seed);
        lossless.fabric_faults = FabricFaultPlan::default();
        let twin = run_fleet_sharded(&lossless, 2);
        assert_eq!(base.final_config, twin.final_config, "seed {seed}: configs diverged");
        assert_eq!(base.succeeded(), twin.succeeded(), "seed {seed}: verdicts diverged");
        for (a, b) in base.results.iter().zip(&twin.results) {
            assert_eq!(
                (a.id, a.success, a.gave_up),
                (b.id, b.success, b.gave_up),
                "seed {seed}: session verdict diverged"
            );
        }
    }
}

/// Duplicate-delivery idempotence: with *every* fabric message duplicated,
/// grant/release application still lands the lossless outcome — duplicate
/// grants re-fold identical values, duplicate releases re-ack, tombstones
/// swallow resurrection attempts.
#[test]
fn duplicate_delivery_is_idempotent() {
    for seed in [1u64, 9, 23] {
        let mut scn = ShardScenario::new(chaos_fleet(seed), REGIONS);
        scn.fabric_faults =
            FabricFaultPlan { seed, dup_per_mille: 1000, ..FabricFaultPlan::default() };
        let dup = run_fleet_sharded(&scn, 2);
        assert!(dup.fabric.duplicated > 0, "seed {seed}: the dup plan must bite");
        let clean = run_fleet_sharded(&ShardScenario::new(chaos_fleet(seed), REGIONS), 2);
        assert_eq!(dup.final_config, clean.final_config, "seed {seed}");
        assert_eq!(dup.succeeded(), clean.succeeded(), "seed {seed}: {:?}", dup.results);
        assert_eq!(dup.abandoned, 0, "seed {seed}: duplicates never abandon anything");
        assert_all_concluded(&dup, &format!("dup seed {seed}"));
    }
}

/// The GVT promise fast path is pure scheduling: lossy runs with it on and
/// off produce identical fingerprints, journals, and results.
#[test]
fn promise_fastpath_is_invisible_under_chaos() {
    for seed in [2u64, 14] {
        let mut scn = chaos_scenario(seed);
        scn.promise_fastpath = true;
        let fast = run_fleet_sharded(&scn, 2);
        scn.promise_fastpath = false;
        let slow = run_fleet_sharded(&scn, 2);
        assert_eq!(fast.fingerprint, slow.fingerprint, "seed {seed}");
        assert_eq!(fast.journals, slow.journals, "seed {seed}");
        assert_eq!(fast.global_journal, slow.global_journal, "seed {seed}");
        assert_eq!(fast.results, slow.results, "seed {seed}");
    }
}

/// A region that stays dead past the lease horizon: the straddler's
/// request ladder exhausts, the session is *abandoned* with a journaled
/// rejection — it does not vanish — and the whole faulted run stays
/// thread-invariant.
#[test]
fn straddler_onto_a_dead_region_is_abandoned_not_lost() {
    let mut scn = ShardScenario::new(chaos_fleet(4), REGIONS);
    // Region 1 dies before straddler 100 escalates and stays down past the
    // ~9.4 s ladder horizon.
    scn.crash_region = Some((1, SimTime::from_millis(4), SimTime::from_millis(25_000)));
    let a = run_fleet_sharded(&scn, 2);
    assert_eq!(a.abandoned, 1, "straddler 100 exhausted its ladder: {:?}", a.results);
    let s100 = a.session(100).expect("straddler reported");
    assert!(!s100.success && s100.completed_at.is_some(), "a clean journaled rejection");
    assert!(a.global_journal.contains("abandoned"), "journal: {}", a.global_journal);
    assert_all_concluded(&a, "dead region");
    let b = run_fleet_sharded(&scn, 4);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.results, b.results);
    assert_eq!(a.global_journal, b.global_journal);
}

/// The orphaned-release leak (PR 8 headroom) and its garbage collection:
/// region 1 grants straddler 100's slice, then dies mid-session and stays
/// down past the release ladder. The global tier's release orphans; the
/// restarted region re-seizes the hold, hears nothing for a full lease
/// horizon, and garbage-collects it — lock table empty at quiescence, one
/// `LeaseExpired` event in the stream, bit-for-bit across thread counts.
#[test]
fn orphaned_release_is_reclaimed_by_lease_expiry() {
    let mut scn = ShardScenario::new(chaos_fleet(4), REGIONS);
    // Crash after the slice is granted (handshake completes within ~10 ms)
    // but before the straddler finishes; restart only after the global
    // tier's release ladder has exhausted (~9.4 s past completion).
    scn.crash_region = Some((1, SimTime::from_millis(20), SimTime::from_millis(22_000)));
    let a = run_fleet_sharded(&scn, 2);
    assert_eq!(a.orphaned_releases, 1, "the release ladder must exhaust: {:?}", a.results);
    assert_eq!(a.lease_expirations, 1, "the re-seized hold must be garbage-collected");
    assert_eq!(a.residual_holds, 0, "lock table empty at quiescence");
    assert_all_concluded(&a, "orphaned release");
    let expired = a
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.payload,
                sada_obs::Payload::Fleet(sada_obs::FleetEvent::LeaseExpired { session: 100, .. })
            )
        })
        .count();
    assert_eq!(expired, 1, "exactly one LeaseExpired event for straddler 100");
    let b = run_fleet_sharded(&scn, 4);
    assert_eq!(a.fingerprint, b.fingerprint, "lease GC must stay thread-invariant");
    assert_eq!(a.results, b.results);
}

fn arb_values() -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0u32..64, any::<bool>()), 0..6)
}

fn arb_payload() -> impl Strategy<Value = FabricPayload> {
    prop_oneof![
        (
            any::<u64>(),
            prop::collection::vec(0u32..64, 0..5),
            prop::collection::vec(0u32..64, 0..5),
            any::<u8>(),
            any::<u64>(),
        )
            .prop_map(|(session, resources, comps, priority, epoch)| {
                FabricPayload::LockRequest { session, resources, comps, priority, epoch }
            }),
        (any::<u64>(), 0u32..16, any::<u64>(), arb_values()).prop_map(
            |(session, region, epoch, values)| FabricPayload::LockGranted {
                session,
                region,
                epoch,
                values
            }
        ),
        (any::<u64>(), any::<u64>(), arb_values()).prop_map(|(session, epoch, values)| {
            FabricPayload::LockRelease { session, epoch, values }
        }),
        (any::<u64>(), 0u32..16, any::<u64>()).prop_map(|(session, region, epoch)| {
            FabricPayload::ReleaseAck { session, region, epoch }
        }),
    ]
}

proptest! {
    /// The fabric-message text codec is the identity on round trips.
    #[test]
    fn fabric_codec_round_trips(msg in arb_payload()) {
        let line = encode_fabric_msg(&msg);
        prop_assert!(!line.contains('\n'), "one line per message: {line:?}");
        let back = match parse_fabric_msg(&line) {
            Ok(back) => back,
            Err(e) => return Err(TestCaseError::fail(format!("{e}\nline: {line}"))),
        };
        prop_assert_eq!(back, msg, "line: {}", line);
    }
}
