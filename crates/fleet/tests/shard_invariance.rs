//! Shard-count and thread-count invariance of the sharded control plane.
//!
//! The refactor's contract: worker-thread count is pure execution policy —
//! for a fixed scenario, 1/2/4/8 threads produce **bit-for-bit identical**
//! final configurations, per-shard journals, and merged event streams
//! (compared by FNV fingerprint). Region count, by contrast, changes which
//! control plane runs each session (and therefore event interleavings),
//! but must never change *outcomes*: the same sessions succeed and the
//! fleet lands in the same final configuration. A chaos leg crashes one
//! region's control plane mid-run and checks the crash stays contained and
//! the whole faulted run replays deterministically under real parallelism.

use proptest::prelude::*;
use sada_fleet::{
    fingerprint_events, fingerprint_events_unsharded, run_fleet, run_fleet_sharded, FleetScenario,
    SessionSpec, ShardScenario,
};
use sada_simnet::{SimDuration, SimTime};

/// A forward-only adaptation wave: every group flips Old → New exactly
/// once, so final configurations are order-independent and comparable
/// across different partitions of the same workload.
fn forward_wave(groups: usize, seed: u64) -> Vec<SessionSpec> {
    (0..groups)
        .map(|g| SessionSpec {
            id: g as u64 + 1,
            flips: vec![(g, true)],
            priority: (seed >> (g % 8)) as u8 % 4,
            submit_at: SimDuration::from_micros(
                (seed.rotate_left(g as u32) % 5_000) * (g as u64 + 1),
            ),
            cancel_at: None,
        })
        .collect()
}

/// A mixed workload for the bit-for-bit legs: locals on every group plus
/// straddlers that cross region boundaries, some of them withdrawn.
fn mixed_scenario(groups: usize, regions: usize, seed: u64) -> ShardScenario {
    let mut sessions = forward_wave(groups, seed);
    let mut next = groups as u64 + 1;
    // One straddler per adjacent region pair: last group of region r with
    // first group of region r+1 (contiguous-block partition).
    for r in 0..regions.saturating_sub(1) {
        let last = (r + 1) * groups / regions - 1;
        let first = (r + 1) * groups / regions;
        if first >= groups || last >= first {
            continue;
        }
        sessions.push(SessionSpec {
            id: next,
            flips: vec![(last, false), (first, false)],
            priority: 1,
            submit_at: SimDuration::from_millis(40 + 3 * r as u64),
            cancel_at: (r % 2 == 1).then(|| SimDuration::from_millis(41 + 3 * r as u64)),
        });
        next += 1;
    }
    let mut fleet = FleetScenario::new(groups, sessions);
    fleet.seed = seed;
    ShardScenario::new(fleet, regions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Worker-thread count is invisible: fingerprints, journals, results,
    /// and the final configuration are bit-for-bit identical at 1/2/4/8
    /// threads for the same scenario (locals + straddlers + withdrawals).
    #[test]
    fn thread_count_never_changes_anything(
        groups in 4usize..9,
        regions_ix in 0usize..3,
        seed in 1u64..u64::MAX,
    ) {
        let regions = [2, 3, 4][regions_ix].min(groups);
        let scn = mixed_scenario(groups, regions, seed);
        let base = run_fleet_sharded(&scn, 1);
        for threads in [2, 4, 8] {
            let run = run_fleet_sharded(&scn, threads);
            prop_assert_eq!(run.fingerprint, base.fingerprint, "threads={}", threads);
            prop_assert_eq!(&run.journals, &base.journals, "threads={}", threads);
            prop_assert_eq!(&run.results, &base.results, "threads={}", threads);
            prop_assert_eq!(&run.final_config, &base.final_config, "threads={}", threads);
            prop_assert_eq!(run.fabric.messages, base.fabric.messages, "threads={}", threads);
        }
    }

    /// Region count changes *placement*, never *outcomes*: a forward-only
    /// wave lands every partition in the identical final configuration with
    /// every session committed.
    #[test]
    fn region_count_never_changes_outcomes(
        groups in 8usize..13,
        seed in 1u64..u64::MAX,
    ) {
        let fleet = FleetScenario::new(groups, forward_wave(groups, seed));
        let mut configs = Vec::new();
        for regions in [1usize, 2, 4, 8] {
            let scn = ShardScenario::new(fleet.clone(), regions.min(groups));
            let run = run_fleet_sharded(&scn, 4);
            prop_assert_eq!(run.succeeded(), groups, "regions={}: {:?}", regions, run.results);
            configs.push(run.final_config);
        }
        prop_assert!(configs.windows(2).all(|w| w[0] == w[1]), "configs: {configs:?}");
    }
}

/// One region on one thread replays the unsharded driver exactly: same
/// final configuration and an event stream identical modulo shard tags.
#[test]
fn single_region_matches_run_fleet() {
    for seed in [3u64, 17, 99] {
        let mut fleet = FleetScenario::new(6, forward_wave(6, seed));
        fleet.seed = seed;
        let unsharded = run_fleet(&fleet);
        let sharded = run_fleet_sharded(&ShardScenario::new(fleet, 1), 1);
        assert_eq!(
            fingerprint_events_unsharded(&sharded.events),
            fingerprint_events_unsharded(&unsharded.events),
            "seed {seed}: one region must replicate the unsharded run"
        );
        assert_eq!(sharded.final_config, unsharded.final_config);
    }
}

/// Chaos leg: region 1's control plane crashes mid-run and restores from
/// its journal. The crash stays contained — every other region's event
/// stream is byte-identical to the fault-free run — and the faulted run
/// itself replays bit-for-bit under real parallelism.
#[test]
fn region_crash_is_contained_and_replays_deterministically() {
    let groups = 8;
    let regions = 4;
    // Locals only *here* because the containment assertion needs a quiet
    // fabric: a straddler handshake entangles other regions' event streams
    // by design. Straddlers crossing the faulted region — once forbidden
    // because their lock traffic into a dead control plane was silently
    // dropped — are covered by `straddlers_cross_the_crashed_region`.
    let mut fleet = FleetScenario::new(groups, forward_wave(groups, 7));
    fleet.seed = 7;
    fleet.time_budget = SimDuration::from_secs(40);
    let healthy = run_fleet_sharded(&ShardScenario::new(fleet.clone(), regions), 2);

    let mut scn = ShardScenario::new(fleet, regions);
    // Groups 2..4 live in region 1; crash its control plane mid-protocol.
    scn.crash_region = Some((1, SimTime::from_micros(9_000), SimTime::from_millis(600)));
    let a = run_fleet_sharded(&scn, 4);
    assert_eq!(a.restores, 1, "the crashed region's control plane restores once");
    assert_eq!(a.succeeded(), groups, "journal replay finishes every session: {:?}", a.results);
    assert_eq!(a.final_config, healthy.final_config);

    // Containment: regions 0, 2, 3 never observe the fault.
    for shard in [1u32, 3, 4] {
        let pick = |run: &sada_fleet::ShardReport| {
            run.events.iter().filter(|e| e.shard == shard).cloned().collect::<Vec<_>>()
        };
        assert_eq!(
            fingerprint_events(&pick(&a)),
            fingerprint_events(&pick(&healthy)),
            "shard {shard} must be undisturbed by region 1's crash"
        );
    }

    // Determinism under faults: same scenario, different thread counts,
    // identical streams.
    let b = run_fleet_sharded(&scn, 1);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.journals, b.journals);
    assert_eq!(a.results, b.results);
}

/// Regression for the formerly forbidden case: straddlers whose scope
/// crosses the *faulted* region. One straddler already holds its region-1
/// slice when that control plane dies — the lease survives the crash and
/// is re-seized on restart. The other escalates while the region is down,
/// and only the fabric retransmission ladder gets its handshake through
/// (pre-ladder, that traffic was silently dropped and the session hung).
#[test]
fn straddlers_cross_the_crashed_region() {
    let groups = 8;
    let regions = 4;
    let mut sessions = forward_wave(groups, 5);
    // Escalates early: its slice is held across the crash window.
    sessions.push(SessionSpec {
        id: 100,
        flips: vec![(3, false), (4, false)], // regions 1 | 2
        priority: 1,
        submit_at: SimDuration::from_millis(2),
        cancel_at: None,
    });
    // Escalates into the dead region at 20 ms (crash at 9 ms, restart at
    // 600 ms): every first-attempt request is lost in the crash shadow.
    sessions.push(SessionSpec {
        id: 101,
        flips: vec![(2, true), (5, true)], // regions 1 | 2
        priority: 0,
        submit_at: SimDuration::from_millis(20),
        cancel_at: None,
    });
    let mut fleet = FleetScenario::new(groups, sessions);
    fleet.seed = 5;
    fleet.time_budget = SimDuration::from_secs(40);
    let mut scn = ShardScenario::new(fleet, regions);
    scn.crash_region = Some((1, SimTime::from_millis(9), SimTime::from_millis(600)));
    let a = run_fleet_sharded(&scn, 4);
    assert_eq!(a.restores, 1, "region 1 restores once");
    assert_eq!(
        a.succeeded(),
        groups + 2,
        "every session completes, straddlers included: {:?}",
        a.results
    );
    assert!(!a.global_journal.is_empty(), "escalations journaled at the global tier");
    assert!(a.retransmits > 0, "the ladder carried the handshake into the dead region");

    // Determinism under the combined fault: thread count stays invisible.
    let b = run_fleet_sharded(&scn, 1);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.journals, b.journals);
    assert_eq!(a.global_journal, b.global_journal);
    assert_eq!(a.results, b.results);
}
