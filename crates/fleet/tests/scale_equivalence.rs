//! Equivalence properties for the scale hot path.
//!
//! The hot-path rework (struct-of-arrays agent arena, batched bus/fabric
//! delivery, timer wheel) must be *fingerprint-invisible*: batching is an
//! execution optimization, never a semantic change. Two properties pin
//! that down:
//!
//! 1. At the simnet layer, `inject_batch` is bit-for-bit the same as the
//!    equivalent loop of `inject` calls — event streams, traces, and
//!    network counters all match, crashed-destination drops included.
//! 2. At the fleet layer, a sharded run (whose fabric now injects whole
//!    sorted batches per arrival instant) produces byte-identical merged
//!    event streams at 1, 2, and 4 worker threads, with fabric chaos and
//!    a region crash in play.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use sada_fleet::{run_fleet_sharded, FabricFaultPlan, FleetScenario, SessionSpec, ShardScenario};
use sada_obs::{Bus, RingSink};
use sada_simnet::{Actor, ActorId, Context, SimDuration, SimTime, Simulator};

/// Echoes nothing; just records what it saw, so delivery order is the
/// entire observable behaviour.
struct Recorder {
    got: Vec<(u64, u32)>,
}

impl Actor<u32> for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ActorId, msg: u32) {
        self.got.push((ctx.now().as_micros(), from.index() as u32 * 1000 + msg));
    }
}

/// Runs one simulation delivering `msgs` to a recorder (optionally crashed
/// first), via `inject_batch` or a per-message `inject` loop, and returns
/// every observable artifact.
fn run_injection(
    seed: u64,
    msgs: &[u32],
    delay_us: u64,
    crash_dest: bool,
    batched: bool,
) -> (Vec<(u64, u32)>, String, u64, u64) {
    let mut sim: Simulator<u32> = Simulator::new(seed);
    let bus = Bus::new();
    let ring = Rc::new(RefCell::new(RingSink::new(1 << 12)));
    bus.attach(&ring);
    sim.set_bus(bus);
    let src = sim.add_actor("src", Recorder { got: Vec::new() });
    let dst = sim.add_actor("dst", Recorder { got: Vec::new() });
    if crash_dest {
        sim.crash_at(dst, SimTime::ZERO);
    }
    sim.run_for(SimDuration::from_micros(1));
    let delay = SimDuration::from_micros(delay_us);
    if batched {
        sim.inject_batch(src, dst, msgs.to_vec(), delay);
    } else {
        for &m in msgs {
            sim.inject(src, dst, m, delay);
        }
    }
    sim.run();
    let got = sim.actor::<Recorder>(dst).map(|r| r.got.clone()).unwrap_or_default();
    let trace: String = ring.borrow().events().iter().map(|e| format!("{e:?}\n")).collect();
    let stats = sim.stats();
    (got, trace, stats.delivered, stats.dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `inject_batch` ≡ the equivalent `inject` loop: same deliveries in
    /// the same order, same event stream, same counters — on both the
    /// delivery path and the crashed-destination drop path.
    #[test]
    fn batched_injection_is_bit_identical_to_per_message_injection(
        seed in 1u64..u64::MAX,
        msgs in prop::collection::vec(0u32..1000, 0..40),
        delay_us in 0u64..50_000,
        crash_dest in any::<bool>(),
    ) {
        let batched = run_injection(seed, &msgs, delay_us, crash_dest, true);
        let looped = run_injection(seed, &msgs, delay_us, crash_dest, false);
        prop_assert_eq!(batched, looped);
    }
}

const GROUPS: usize = 8;
const REGIONS: usize = 4;

/// Locals plus two straddlers (one across the region that crashes), with
/// seeded fabric loss/duplication/delay — the adversarial workload for the
/// batched fabric-injection path.
fn chaos_scenario(seed: u64) -> ShardScenario {
    let mut sessions: Vec<SessionSpec> = (0..6)
        .map(|g| SessionSpec {
            id: g as u64 + 1,
            flips: vec![(g, true)],
            priority: (seed >> (g % 8)) as u8 % 4,
            submit_at: SimDuration::from_micros((seed.rotate_left(g as u32) % 4_000) + 500),
            cancel_at: None,
        })
        .collect();
    sessions.push(SessionSpec {
        id: 100,
        flips: vec![(1, true), (2, true)],
        priority: 1,
        submit_at: SimDuration::from_millis(5),
        cancel_at: None,
    });
    sessions.push(SessionSpec {
        id: 101,
        flips: vec![(5, true), (6, true)],
        priority: 0,
        submit_at: SimDuration::from_millis(12),
        cancel_at: None,
    });
    let mut fleet = FleetScenario::new(GROUPS, sessions);
    fleet.seed = seed;
    fleet.time_budget = SimDuration::from_secs(40);
    let mut scn = ShardScenario::new(fleet, REGIONS);
    scn.fabric_faults = FabricFaultPlan {
        seed: seed ^ 0xFAB,
        drop_per_mille: 200,
        dup_per_mille: 200,
        delay_per_mille: 200,
        max_delay_quanta: 4,
        null_drop_per_mille: 100,
        ..FabricFaultPlan::default()
    };
    scn.crash_region =
        Some((1, SimTime::from_micros(8_000 + (seed % 3) * 900), SimTime::from_micros(700_000)));
    scn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batched fabric injection stays thread-count invariant under chaos:
    /// 1/2/4 workers give byte-identical merged streams, journals, and
    /// results even with fabric faults and a region crash in play.
    #[test]
    fn chaotic_sharded_runs_are_thread_count_invariant(seed in 1u64..u64::MAX) {
        let scn = chaos_scenario(seed);
        let base = run_fleet_sharded(&scn, 1);
        for threads in [2usize, 4] {
            let run = run_fleet_sharded(&scn, threads);
            prop_assert_eq!(run.fingerprint, base.fingerprint, "threads={}", threads);
            prop_assert_eq!(&run.final_config, &base.final_config, "threads={}", threads);
            prop_assert_eq!(&run.results, &base.results, "threads={}", threads);
            prop_assert_eq!(&run.journals, &base.journals, "threads={}", threads);
            prop_assert_eq!(&run.global_journal, &base.global_journal, "threads={}", threads);
        }
    }
}
