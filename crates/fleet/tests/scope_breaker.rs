//! Per-scope circuit breaker: a flapping collaborative set trips *its own*
//! breaker — disjoint scopes keep admitting — and admission doubles as the
//! half-open probe that heals it once the scope recovers.

use sada_fleet::{run_fleet, Admission, FleetResilience, FleetScenario, SessionSpec};
use sada_resilience::BreakerConfig;
use sada_simnet::{ActorId, FaultPlan, SimDuration, SimTime};

fn session(id: u64, group: usize, forward: bool, at_ms: u64) -> SessionSpec {
    SessionSpec {
        id,
        flips: vec![(group, forward)],
        priority: 0,
        submit_at: SimDuration::from_millis(at_ms),
        cancel_at: None,
    }
}

/// Group 0's first agent crashes mid-step under sessions 1 and 2 (each
/// starts against a live agent, then burns its retry ladder against the
/// silent process), so the group-0 scope accumulates two failed outcomes
/// and trips its breaker. While it is open, session 3 is rejected fail-fast
/// (`ScopeRejected`), yet group-2 sessions — disjoint scope, same control
/// plane — admit and commit normally. After the cooldown session 4 is let
/// through as the half-open probe, succeeds against the healthy agent, and
/// closes the breaker for good.
#[test]
fn flapping_scope_trips_alone_and_heals_via_probe() {
    // A session whose step loses its agent exhausts every alternate path
    // and rolls back to source at ≈22.6 s after submission; the two crash
    // windows below each swallow one group-0 session's whole recovery
    // ladder. Virtual time is free, so the timeline is generous.
    let sessions = vec![
        session(1, 0, true, 0),        // fails: agent dies mid-step, rollback ≈22.6 s
        session(2, 0, true, 24_000),   // fails: second strike trips the breaker ≈46.6 s
        session(3, 0, true, 51_000),   // open breaker: rejected fail-fast
        session(4, 0, true, 62_000),   // half-open probe: agent healthy, succeeds
        session(5, 0, false, 66_000),  // breaker closed again: normal admission
        session(10, 2, true, 24_000),  // disjoint scope, same window: succeeds
        session(11, 2, false, 51_000), // still admitting while scope 0 is open
    ];
    let mut scenario = FleetScenario::new(4, sessions);
    scenario.resilience = FleetResilience {
        breaker: None, // isolate the scope gate from the per-agent gate
        scope_breaker: Some(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(8),
            cooldown_cap: SimDuration::from_secs(8),
            ..BreakerConfig::default()
        }),
        bulkhead: Default::default(),
    };
    // Two crash windows, each opening mid-step of one group-0 session and
    // outlasting its whole recovery ladder.
    let agent0 = ActorId::from_index(0);
    scenario.faults = FaultPlan::new()
        .crash(agent0, SimTime::from_micros(6_000))
        .restart(agent0, SimTime::from_micros(23_000_000))
        .crash(agent0, SimTime::from_micros(24_006_000))
        .restart(agent0, SimTime::from_micros(50_000_000));
    scenario.time_budget = SimDuration::from_secs(90);

    let report = run_fleet(&scenario);
    let outcome = |id: u64| report.session(id).expect("session reported");

    assert!(!outcome(1).success, "results: {:?}", report.results);
    assert!(!outcome(2).success, "results: {:?}", report.results);
    assert_eq!(report.scope_breaker_trips, 1, "two strikes trip the scope breaker once");

    // Open breaker: session 3 is terminated at admission with the typed
    // verdict, without ever queueing protocol work.
    assert!(!outcome(3).success && !outcome(3).gave_up);
    assert_eq!(outcome(3).admission, Some(Admission::Rejected));
    assert_eq!(report.rejected, 1);

    // Disjoint scope on the same control plane admits normally throughout.
    assert!(outcome(10).success && outcome(11).success, "results: {:?}", report.results);
    assert_eq!(outcome(10).admission, Some(Admission::Admitted));
    assert_eq!(outcome(11).admission, Some(Admission::Admitted));

    // Half-open probe heals the scope; later sessions admit normally.
    assert!(outcome(4).success, "probe succeeds against the recovered agent");
    assert!(outcome(5).success, "breaker closed after the probe");
    assert_eq!(outcome(4).admission, Some(Admission::Admitted));
    assert_eq!(outcome(5).admission, Some(Admission::Admitted));
}
