//! Scale sweep for the hot path: the same strided adaptation workload at
//! 1k/10k/100k groups, flat and sharded.
//!
//! Each row runs `sessions = min(2 x groups, 2048)` single-group sessions
//! strided across the whole group range, so under `run_fleet_sharded` every
//! region owns an equal slice of the offered load. Per row this bench
//! records:
//!
//! * flat `run_fleet` throughput — committed sessions/sec and delivered
//!   events/sec against wall clock;
//! * peak live heap for the row (a counting global allocator, high-water
//!   mark reset at row start) divided by the agent count — the
//!   bytes-per-agent figure the smoke gate pins;
//! * the sharded wall clock at 1 worker thread, plus the event-stream
//!   fingerprint at 1/2/4/8 threads, asserted byte-identical (thread count
//!   is pure execution policy, never schedule-visible).
//!
//! Set `SADA_BENCH_SMOKE=1` to run only the 10k-group row and assert the
//! bytes-per-agent ceiling — the CI memory-regression gate. The full sweep
//! (including the 100k row) writes `BENCH_scale.json` at the repository
//! root.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use sada_fleet::{run_fleet, run_fleet_sharded, FleetScenario, SessionSpec, ShardScenario};
use sada_obs::SimDuration;

const REGIONS: usize = 8;
const SEED: u64 = 42;
const SESSION_CAP: usize = 2048;
const SPACING_US: u64 = 37;
/// Smoke-gate ceiling on flat peak-heap bytes per agent at the 10k row.
/// Measured ~1.6 KiB/agent; 8 KiB leaves headroom for allocator noise
/// while still failing loudly on an accidental per-agent heap object or a
/// dense-`Config` round trip sneaking back into the hot path.
const SMOKE_BYTES_PER_AGENT_CEILING: u64 = 8 * 1024;

// ---------------------------------------------------------------------------
// Counting allocator: peak live heap per row
// ---------------------------------------------------------------------------

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

/// Drops the high-water mark back to the current live size, so the next
/// row's peak measures that row alone.
fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_heap() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// CI smoke mode: the 10k row + ceiling assert only.
fn smoke() -> bool {
    std::env::var_os("SADA_BENCH_SMOKE").is_some()
}

/// A strided adaptation storm: sessions spread evenly over the whole group
/// range (distinct groups, so no lock conflicts and every session commits),
/// each scope inside one region — the free-running scaling configuration.
fn strided_fleet(groups: usize) -> FleetScenario {
    let sessions = SESSION_CAP.min(2 * groups);
    let specs: Vec<SessionSpec> = (0..sessions)
        .map(|i| SessionSpec {
            id: i as u64 + 1,
            // Stride across the full range: region r owns a contiguous
            // slice of groups, so this lands sessions/REGIONS sessions in
            // every region instead of packing them all into region 0.
            flips: vec![(i * groups / sessions, i % 2 == 0)],
            priority: (i % 4) as u8,
            submit_at: SimDuration::from_micros(SPACING_US * i as u64),
            cancel_at: None,
        })
        .collect();
    let mut fleet = FleetScenario::new(groups, specs);
    fleet.seed = SEED;
    fleet.time_budget = SimDuration::from_secs(10);
    // The journal text alone is O(sessions x components) — hundreds of MB
    // at 100k groups. The durable journal (and with it crash recovery,
    // events, fingerprints) is unaffected.
    fleet.render_journal = false;
    fleet
}

struct Row {
    groups: usize,
    agents: usize,
    sessions: usize,
    flat_wall_us: u128,
    sessions_per_sec: f64,
    events_per_sec: f64,
    peak_heap_bytes: u64,
    bytes_per_agent: u64,
    shard_wall_us_1t: u128,
    shard_sessions_per_sec_1t: f64,
    fingerprint: u64,
}

/// One sweep row: flat throughput + peak heap, then the sharded
/// thread-identity sweep.
fn run_row(groups: usize, threads: &[usize]) -> Row {
    let fleet = strided_fleet(groups);
    let sessions = fleet.sessions.len();
    let agents = 2 * groups;

    reset_peak();
    let t = std::time::Instant::now();
    let flat = run_fleet(&fleet);
    let flat_wall = t.elapsed();
    let peak = peak_heap();
    let ok = flat.results.iter().filter(|s| s.success).count();
    assert_eq!(ok, sessions, "{groups} groups: the strided storm must commit every session");

    let scn = ShardScenario::new(fleet, REGIONS);
    let mut runs = Vec::new();
    for &n in threads {
        let t = std::time::Instant::now();
        let r = run_fleet_sharded(&scn, n);
        runs.push((n, t.elapsed(), r));
    }
    let (_, base_wall, base) = &runs[0];
    assert_eq!(
        base.succeeded(),
        sessions,
        "{groups} groups: sharded run must commit every session"
    );
    let active = base.per_shard.iter().filter(|s| !s.is_global && s.sessions > 0).count();
    assert_eq!(active, REGIONS, "{groups} groups: the stride must load every region");
    for (n, _, r) in &runs {
        assert_eq!(
            r.fingerprint, base.fingerprint,
            "{groups} groups: {n} threads changed the event stream"
        );
        assert_eq!(
            r.final_config, base.final_config,
            "{groups} groups: {n} threads changed the final configuration"
        );
    }

    Row {
        groups,
        agents,
        sessions,
        flat_wall_us: flat_wall.as_micros(),
        sessions_per_sec: ok as f64 / flat_wall.as_secs_f64().max(1e-9),
        events_per_sec: flat.events.len() as f64 / flat_wall.as_secs_f64().max(1e-9),
        peak_heap_bytes: peak,
        bytes_per_agent: peak / agents as u64,
        shard_wall_us_1t: base_wall.as_micros(),
        shard_sessions_per_sec_1t: base.succeeded() as f64 / base_wall.as_secs_f64().max(1e-9),
        fingerprint: base.fingerprint,
    }
}

fn write_bench_json(rows: &[Row]) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"groups\": {}, \"agents\": {}, \"sessions\": {}, \
                 \"flat_wall_us\": {}, \"sessions_per_sec\": {:.1}, \
                 \"events_per_sec\": {:.1}, \"peak_heap_bytes\": {}, \
                 \"bytes_per_agent\": {}, \"shard_wall_us_1t\": {}, \
                 \"shard_sessions_per_sec_1t\": {:.1}, \"fingerprint\": \"{:#018x}\"}}",
                r.groups,
                r.agents,
                r.sessions,
                r.flat_wall_us,
                r.sessions_per_sec,
                r.events_per_sec,
                r.peak_heap_bytes,
                r.bytes_per_agent,
                r.shard_wall_us_1t,
                r.shard_sessions_per_sec_1t,
                r.fingerprint,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"workload\": \"min(2 x groups, {SESSION_CAP}) \
         single-group sessions strided across the group range ({REGIONS} regions under \
         sharding; 2 agents per group); flat run_fleet for throughput and peak heap, \
         run_fleet_sharded at 1/2/4/8 threads with fingerprints asserted identical\",\n  \
         \"host_cores\": {cores},\n  \"thread_sweep\": [1, 2, 4, 8],\n  \
         \"smoke_bytes_per_agent_ceiling\": {SMOKE_BYTES_PER_AGENT_CEILING},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n"),
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}:\n{json}");
}

fn bench_scale(c: &mut Criterion) {
    if smoke() {
        return;
    }
    // Criterion timing on the smallest row only; the 10k/100k rows are
    // single-shot measurements in the JSON sweep below.
    let fleet = strided_fleet(1_000);
    let scn = ShardScenario::new(fleet.clone(), REGIONS);
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);
    g.bench_function("flat_1k", |b| {
        b.iter(|| run_fleet(&fleet).results.iter().filter(|s| s.success).count())
    });
    g.bench_function("shard_1k_1t", |b| b.iter(|| run_fleet_sharded(&scn, 1).succeeded()));
    g.finish();
}

fn sweep() {
    let threads = [1usize, 2, 4, 8];
    if smoke() {
        let row = run_row(10_000, &threads);
        assert!(
            row.bytes_per_agent <= SMOKE_BYTES_PER_AGENT_CEILING,
            "flat peak heap regressed: {} bytes/agent at 10k groups (ceiling {})",
            row.bytes_per_agent,
            SMOKE_BYTES_PER_AGENT_CEILING,
        );
        println!(
            "smoke ok: 10k groups, {} sessions, {} bytes/agent (ceiling {}), \
             fingerprint {:#018x} identical at 1/2/4/8 threads",
            row.sessions, row.bytes_per_agent, SMOKE_BYTES_PER_AGENT_CEILING, row.fingerprint,
        );
        return;
    }
    let rows: Vec<Row> =
        [1_000usize, 10_000, 100_000].iter().map(|&g| run_row(g, &threads)).collect();
    write_bench_json(&rows);
}

fn bench_entry(c: &mut Criterion) {
    bench_scale(c);
    sweep();
}

criterion_group!(benches, bench_entry);
criterion_main!(benches);
