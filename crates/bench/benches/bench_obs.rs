//! Observability-spine overhead: the full case-study adaptation run with no
//! sinks attached (instrumented code paths, nobody listening) versus the
//! ring+counter tap the timeline report uses. The zero-sink configuration is
//! the one every hot path pays for unconditionally, so it must stay within
//! noise of the pre-instrumentation baseline.
//!
//! Besides the criterion comparison, this bench writes `BENCH_obs.json` at
//! the repository root with a plain wall-clock measurement of both
//! configurations (the vendored criterion has no machine-readable output),
//! so the perf trajectory of the bus is recorded across PRs.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use sada_core::casestudy::case_study;
use sada_core::{run_adaptation, RunConfig};
use sada_obs::{Bus, CounterSink, RingSink};

fn bench_bus_overhead(c: &mut Criterion) {
    let cs = case_study();
    let mut g = c.benchmark_group("obs_bus");
    g.sample_size(20);
    g.bench_function("run_zero_sinks", |b| {
        b.iter(|| {
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &RunConfig::default());
            assert!(r.outcome.success);
            r
        })
    });
    g.bench_function("run_ring_plus_counter", |b| {
        b.iter(|| {
            let bus = Bus::new();
            let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
            let counters = Rc::new(RefCell::new(CounterSink::new()));
            bus.attach(&ring);
            bus.attach(&counters);
            let cfg = RunConfig { bus, ..RunConfig::default() };
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            assert!(r.outcome.success && counters.borrow().total > 0);
            r
        })
    });
    g.finish();
    write_bench_json();
}

/// Median-of-samples wall-clock time for one adaptation run under `mk_bus`.
/// Returns (ns per run, events observed per run).
fn measure(
    samples: usize,
    mk_bus: impl Fn() -> (Bus, Option<Rc<RefCell<CounterSink>>>),
) -> (u64, u64) {
    let cs = case_study();
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    let mut events = 0u64;
    for i in 0..samples + 3 {
        let (bus, counters) = mk_bus();
        let cfg = RunConfig { bus, ..RunConfig::default() };
        let t0 = Instant::now();
        let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        let dt = t0.elapsed().as_nanos() as u64;
        assert!(r.outcome.success);
        if i >= 3 {
            // First three iterations are warmup.
            times.push(dt);
            if let Some(c) = counters {
                events = c.borrow().total;
            }
        }
    }
    times.sort_unstable();
    (times[times.len() / 2], events)
}

fn write_bench_json() {
    let samples = 30;
    let (zero_ns, _) = measure(samples, || (Bus::new(), None));
    let (tapped_ns, events) = measure(samples, || {
        let bus = Bus::new();
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
        let counters = Rc::new(RefCell::new(CounterSink::new()));
        bus.attach(&ring);
        bus.attach(&counters);
        (bus, Some(counters))
    });
    let overhead_pct = (tapped_ns as f64 - zero_ns as f64) / zero_ns as f64 * 100.0;
    let events_per_sec = events as f64 / (tapped_ns as f64 / 1e9);
    let json = format!(
        "{{\n  \"bench\": \"obs_bus_overhead\",\n  \"workload\": \"case_study 5-step adaptation (run_adaptation)\",\n  \"samples\": {samples},\n  \"median_ns_zero_sinks\": {zero_ns},\n  \"median_ns_ring_plus_counter\": {tapped_ns},\n  \"events_per_run\": {events},\n  \"events_per_sec_tapped\": {events_per_sec:.0},\n  \"tap_overhead_pct\": {overhead_pct:.2}\n}}\n"
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_bus_overhead);
criterion_main!(benches);
