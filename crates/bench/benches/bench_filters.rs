//! Substrate throughput: the DES codecs, RLE, FEC, and whole filter
//! chains — the per-packet work the MetaSocket performs between adaptation
//! safe points, and the end-to-end video scenario.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sada_des::{decrypt_bytes, encrypt_bytes, Des, Des128};
use sada_meta::filters::des::{CipherDecoder, CipherEncoder};
use sada_meta::filters::fec::{FecDecoder, FecEncoder};
use sada_meta::filters::interleave::{Deinterleaver, Interleaver};
use sada_meta::filters::rle::{RleDecoder, RleEncoder};
use sada_meta::{Filter, FilterChain, Packet};
use sada_video::{run_video_scenario, ScenarioConfig, Strategy};

const PAYLOAD: usize = 512;

fn payload() -> Vec<u8> {
    (0..PAYLOAD).map(|i| ((i * 37) % 251) as u8).collect()
}

fn bench_ciphers(c: &mut Criterion) {
    let des = Des::new(0x133457799BBCDFF1);
    let des128 = Des128::new(0x0123456789ABCDEF, 0xFEDCBA9876543210);
    let data = payload();
    let ct64 = encrypt_bytes(&des, &data);
    let ct128 = encrypt_bytes(&des128, &data);
    let mut g = c.benchmark_group("ciphers");
    g.throughput(Throughput::Bytes(PAYLOAD as u64));
    g.bench_function("des64_encrypt", |b| b.iter(|| encrypt_bytes(&des, &data)));
    g.bench_function("des64_decrypt", |b| b.iter(|| decrypt_bytes(&des, &ct64).unwrap()));
    g.bench_function("des128_encrypt", |b| b.iter(|| encrypt_bytes(&des128, &data)));
    g.bench_function("des128_decrypt", |b| b.iter(|| decrypt_bytes(&des128, &ct128).unwrap()));
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("filters");
    g.throughput(Throughput::Bytes(PAYLOAD as u64));
    let pkt = Packet::new(0, 1, payload());
    g.bench_function("rle_round_trip", |b| {
        let mut enc = RleEncoder::new();
        let mut dec = RleDecoder::new();
        b.iter(|| {
            let e = enc.process(pkt.clone()).pop().unwrap();
            dec.process(e).pop().unwrap()
        })
    });
    g.bench_function("fec_encode_k4", |b| {
        let mut enc = FecEncoder::new(4);
        b.iter(|| enc.process(pkt.clone()))
    });
    g.bench_function("interleave_deinterleave_4x4", |b| {
        b.iter(|| {
            let mut il = Interleaver::new(4, 4);
            let mut di = Deinterleaver::new(32);
            let mut n = 0;
            for seq in 0..16u64 {
                for p in il.process(Packet::new(0, seq, payload())) {
                    n += di.process(p).len();
                }
            }
            assert_eq!(n, 16);
        })
    });
    g.bench_function("fec_decode_with_recovery", |b| {
        b.iter(|| {
            let mut enc = FecEncoder::new(4);
            let mut dec = FecDecoder::new(32);
            let mut stream = Vec::new();
            for seq in 0..4u64 {
                stream.extend(enc.process(Packet::new(0, seq, payload())));
            }
            stream.remove(2); // drop one data packet
            let mut out = 0;
            for p in stream {
                out += dec.process(p).len();
            }
            assert_eq!(out, 4);
        })
    });
    g.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain");
    g.throughput(Throughput::Bytes(PAYLOAD as u64));
    g.bench_function("send_recv_des64", |b| {
        let mut send = FilterChain::new();
        send.push_back("E1", Box::new(CipherEncoder::des64(1))).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D1", Box::new(CipherDecoder::des64(1))).unwrap();
        b.iter(|| {
            let wire = send.push(Packet::new(0, 1, payload())).pop().unwrap();
            recv.push(wire).pop().unwrap()
        })
    });
    g.bench_function("send_recv_rle_then_des128", |b| {
        let mut send = FilterChain::new();
        send.push_back("RLE", Box::new(RleEncoder::new())).unwrap();
        send.push_back("E2", Box::new(CipherEncoder::des128(1, 2))).unwrap();
        let mut recv = FilterChain::new();
        recv.push_back("D", Box::new(CipherDecoder::des128(1, 2))).unwrap();
        recv.push_back("UNRLE", Box::new(RleDecoder::new())).unwrap();
        b.iter(|| {
            let wire = send.push(Packet::new(0, 1, payload())).pop().unwrap();
            recv.push(wire).pop().unwrap()
        })
    });
    g.finish();
}

fn bench_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("video_scenario");
    g.sample_size(10);
    let cfg = ScenarioConfig {
        stream_end: sada_simnet::SimTime::from_millis(800),
        ..ScenarioConfig::default()
    };
    g.bench_function("safe_adaptation_800ms_stream", |b| {
        b.iter(|| {
            let r = run_video_scenario(&cfg, Strategy::Safe);
            assert_eq!(r.corrupted_packets(), 0);
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ciphers, bench_filters, bench_chain, bench_scenario);
criterion_main!(benches);
