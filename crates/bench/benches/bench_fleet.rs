//! Control-plane scheduling throughput: scope-parallel admission versus the
//! one-session-at-a-time serial baseline, across fleet sizes.
//!
//! The interesting numbers are *virtual-time* sessions/sec and latency
//! percentiles — the protocol's barrier waits dominate, and scope locking
//! is only worth its complexity if disjoint sessions genuinely overlap
//! those waits. The criterion group additionally tracks the wall-clock cost
//! of simulating a mid-size fleet (the scheduler + simulator overhead
//! itself). Besides the criterion comparison, this bench writes
//! `BENCH_fleet.json` at the repository root so the perf trajectory is
//! recorded across PRs; the write asserts the headline claims — parallel
//! throughput strictly above serial at every fleet size, and the fleet
//! plan cache serving a majority of a disjoint wave's queries (hit rate
//! above 50%) without changing the final configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use sada_fleet::{disjoint_wave, run_fleet, FleetReport, FleetScenario};

/// Sessions of two groups each, one session per two groups: fleet size
/// scales while per-session work stays fixed (two steps, four agents).
fn scenario(groups: usize, serialize: bool) -> FleetScenario {
    let mut s = FleetScenario::new(groups, disjoint_wave(groups / 2, 2));
    s.serialize = serialize;
    s
}

/// Virtual-time sessions/sec over the makespan.
fn throughput(r: &FleetReport) -> f64 {
    r.succeeded() as f64 / (r.makespan_us as f64 / 1e6)
}

/// Nearest-rank percentile of the per-session end-to-end latencies, in μs.
fn latency_pct(r: &FleetReport, pct: f64) -> u64 {
    let mut lats: Vec<u64> = r.results.iter().filter_map(|s| s.latency_us()).collect();
    lats.sort_unstable();
    assert!(!lats.is_empty());
    let rank = ((pct / 100.0 * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
    lats[rank - 1]
}

fn bench_fleet_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_control_plane");
    g.sample_size(10);
    g.bench_function("sim_20_groups_parallel", |b| {
        b.iter(|| {
            let r = run_fleet(&scenario(20, false));
            assert_eq!(r.succeeded(), 10);
            r.makespan_us
        })
    });
    g.bench_function("sim_20_groups_serial", |b| {
        b.iter(|| {
            let r = run_fleet(&scenario(20, true));
            assert_eq!(r.succeeded(), 10);
            r.makespan_us
        })
    });
    g.finish();
    write_bench_json();
}

fn write_bench_json() {
    let mut rows = String::new();
    for groups in [10usize, 50, 100] {
        let sessions = groups / 2;
        let par = run_fleet(&scenario(groups, false));
        let ser = run_fleet(&scenario(groups, true));
        assert_eq!(par.succeeded(), sessions, "parallel run at {groups} groups");
        assert_eq!(ser.succeeded(), sessions, "serial run at {groups} groups");
        let (tp, ts) = (throughput(&par), throughput(&ser));
        assert!(
            tp > ts,
            "scope-parallel throughput must beat serial at {groups} groups ({tp:.1} vs {ts:.1})"
        );
        // A disjoint wave poses one planning problem n times: the shared
        // cache must answer all but the first from memory, without
        // perturbing the outcome.
        let hit_rate = par.cache.hits as f64 / (par.cache.hits + par.cache.misses).max(1) as f64;
        assert!(
            hit_rate > 0.5,
            "plan-cache hit rate must exceed 50% on a disjoint wave at {groups} groups \
             ({:?})",
            par.cache,
        );
        assert_eq!(
            par.final_config, ser.final_config,
            "cached planning must not change the fleet outcome at {groups} groups"
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"groups\": {groups}, \"sessions\": {sessions}, \
             \"parallel\": {{\"sessions_per_sec\": {tp:.1}, \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}, \"max_concurrent\": {}, \"makespan_us\": {}}}, \
             \"serial\": {{\"sessions_per_sec\": {ts:.1}, \"p50_latency_us\": {}, \
             \"p99_latency_us\": {}, \"max_concurrent\": {}, \"makespan_us\": {}}}, \
             \"speedup\": {:.2}, \
             \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {hit_rate:.2}}}}}",
            latency_pct(&par, 50.0),
            latency_pct(&par, 99.0),
            par.max_concurrent,
            par.makespan_us,
            latency_pct(&ser, 50.0),
            latency_pct(&ser, 99.0),
            ser.max_concurrent,
            ser.makespan_us,
            ser.makespan_us as f64 / par.makespan_us as f64,
            par.cache.hits,
            par.cache.misses,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fleet_control_plane\",\n  \"workload\": \"disjoint 2-group sessions, \
         one per 2 groups; virtual-time throughput over the makespan\",\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, &json).expect("write BENCH_fleet.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_fleet_scheduling);
criterion_main!(benches);
