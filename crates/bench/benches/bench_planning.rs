//! Detection-and-setup phase costs: SAG construction (Figure 4), Dijkstra
//! MAP (Section 5.1), Yen's ranked alternatives (failure ladder), and the
//! lazy partial-exploration heuristic (Section 7 future work) — plus the
//! planner hot-path sweep comparing the compiled search (word-wise
//! invariant kernels, incremental checks, action index) against the
//! tree-walking baseline on the identical search skeleton.
//!
//! Besides the criterion comparison, this bench writes
//! `BENCH_planning.json` at the repository root with the 16–48-component
//! sweep: per-leg invariant-evaluation, safety-check, probe, and expansion
//! counts plus wall time (the 48-component row pins the uniform-cost
//! frontier growth that motivates ROADMAP item 5's A* heuristic; 64
//! components would need ~2e9 expansions and is out of blind-search
//! reach — that gap is the item's whole case). The write *asserts* the headline claims — the
//! compiled path does at least 5x less predicate work at 24 components,
//! and the 16-component workload stays within its pinned safety-check
//! budget (a regression gate run by `ci.sh`). Set `SADA_BENCH_SMOKE=1` to
//! skip the criterion timing loops but still run the sweep, the
//! assertions, and the JSON write.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sada_bench::{carousel_system, grouped_flip_workload};
use sada_core::casestudy::case_study;
use sada_expr::enumerate;
use sada_plan::{lazy, LazyStats, Sag, Search};

/// CI smoke mode: correctness sweep + JSON only, no timing loops.
fn smoke() -> bool {
    std::env::var_os("SADA_BENCH_SMOKE").is_some()
}

/// Safety-check budget for the 16-component grouped flip workload. The
/// measured count is deterministic (uniform-cost search, fixed tie-break;
/// currently 746); the pin has ~10% headroom so only a real regression in
/// exploration or candidate vetting trips it.
const SAFETY_CHECK_BUDGET_16: u64 = 820;

fn bench_case_study_planning(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let cs = case_study();
    let safe = cs.spec.safe_configs();
    let actions = cs.spec.actions().to_vec();
    let sag = Sag::build(safe.clone(), &actions);
    let mut g = c.benchmark_group("case_study_planning");
    g.bench_function("fig4_sag_build", |b| {
        b.iter(|| {
            let s = Sag::build(safe.clone(), &actions);
            assert_eq!(s.node_count(), 8);
            s
        })
    });
    g.bench_function("map_dijkstra", |b| {
        b.iter(|| {
            let p = sag.shortest_path(&cs.source, &cs.target).unwrap();
            assert_eq!(p.cost, 50);
            p
        })
    });
    g.bench_function("yen_k4", |b| b.iter(|| sag.k_shortest_paths(&cs.source, &cs.target, 4)));
    g.bench_function("map_lazy", |b| {
        b.iter(|| {
            let p = lazy::plan(cs.spec.invariants(), &actions, &cs.source, &cs.target).unwrap();
            assert_eq!(p.cost, 50);
            p
        })
    });
    g.bench_function("end_to_end_setup_phase", |b| {
        // Enumerate + build + plan, as the manager would on a request.
        b.iter(|| {
            let safe = cs.spec.safe_configs();
            let sag = Sag::build(safe, &actions);
            sag.shortest_path(&cs.source, &cs.target).unwrap()
        })
    });
    g.finish();
}

fn bench_planning_scaling(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let mut g = c.benchmark_group("planning_scaling");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let (u, inv, actions) = carousel_system(n);
        let safe = enumerate::safe_configs(&u, &inv);
        let sag = Sag::build(safe.clone(), &actions);
        let from = u.config_of(&["C0"]);
        let to = u.config_of(&[&format!("C{}", n - 1)]);
        g.bench_with_input(BenchmarkId::new("sag_build", n), &n, |b, _| {
            b.iter(|| Sag::build(safe.clone(), &actions))
        });
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| sag.shortest_path(&from, &to).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| lazy::plan(&inv, &actions, &from, &to).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("astar", n), &n, |b, _| {
            b.iter(|| lazy::plan_astar(&inv, &actions, &from, &to).0.unwrap())
        });
    }
    g.finish();
}

/// One measured leg of the hot-path sweep.
struct Leg {
    stats: LazyStats,
    wall_ns: u128,
    cost: u64,
}

fn run_leg(
    search: &Search,
    src: &sada_expr::Config,
    dst: &sada_expr::Config,
    extra_iters: usize,
) -> Leg {
    let t = Instant::now();
    let (path, stats) = search.plan(src, dst);
    let mut wall_ns = t.elapsed().as_nanos();
    let cost = path.expect("grouped flip workload always has a path").cost;
    for _ in 0..extra_iters {
        let t = Instant::now();
        let (p, _) = search.plan(src, dst);
        let dt = t.elapsed().as_nanos();
        assert!(p.is_some());
        wall_ns = wall_ns.min(dt);
    }
    Leg { stats, wall_ns, cost }
}

fn bench_hot_path(c: &mut Criterion) {
    if !smoke() {
        let (u, inv, actions, src, dst) = grouped_flip_workload(24);
        let kernel = Search::new(&inv, &actions, u.len());
        let baseline = Search::tree_walk_baseline(&inv, &actions, u.len());
        let mut g = c.benchmark_group("planner_hot_path");
        g.sample_size(10);
        g.bench_function("tree_walk_24", |b| b.iter(|| baseline.plan(&src, &dst).0.unwrap()));
        g.bench_function("kernel_24", |b| b.iter(|| kernel.plan(&src, &dst).0.unwrap()));
        g.finish();
    }
    write_planning_json();
}

fn write_planning_json() {
    let mut rows = String::new();
    // 48 is the frontier-bottleneck row: uniform-cost expansions grow
    // ~17x per 8 components (93 / 1.6k / 26k / ~7.6M), so 48 is the
    // largest width the blind search completes — a 64-component row
    // extrapolates to ~2e9 expansions. Those counts are the baseline
    // numbers ROADMAP item 5's A* heuristic has to beat; the timed legs
    // drop to one iteration there (the counts, not the wall, are the
    // point).
    for n in [16usize, 24, 32, 48] {
        let (u, inv, actions, src, dst) = grouped_flip_workload(n);
        let kernel = Search::new(&inv, &actions, u.len());
        let baseline = Search::tree_walk_baseline(&inv, &actions, u.len());
        // The 48-component row times the single (minutes-long) initial
        // query only; the counts are deterministic either way.
        let iters = if n >= 48 {
            0
        } else if smoke() {
            3
        } else {
            20
        };
        // Builds are reusable: per-query work is what the sweep measures.
        let after = run_leg(&kernel, &src, &dst, iters);
        let before = run_leg(&baseline, &src, &dst, iters);
        assert_eq!(after.cost, before.cost, "both legs find the same optimum at {n}");
        assert_eq!(
            (after.stats.expanded, after.stats.generated, after.stats.safety_checks),
            (before.stats.expanded, before.stats.generated, before.stats.safety_checks),
            "identical search skeleton at {n}"
        );
        let reduction = before.stats.pred_evals as f64 / after.stats.pred_evals.max(1) as f64;
        if n == 24 {
            assert!(
                before.stats.pred_evals >= 5 * after.stats.pred_evals,
                "compiled kernels must cut predicate work >= 5x at 24 components \
                 ({} vs {})",
                before.stats.pred_evals,
                after.stats.pred_evals,
            );
        }
        if n == 16 {
            assert!(
                after.stats.safety_checks <= SAFETY_CHECK_BUDGET_16,
                "16-component safety checks regressed: {} > budget {}",
                after.stats.safety_checks,
                SAFETY_CHECK_BUDGET_16,
            );
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"components\": {n}, \"groups\": {}, \"plan_steps\": {}, \
             \"before\": {{\"pred_evals\": {}, \"safety_checks\": {}, \"probed\": {}, \
             \"expanded\": {}, \"wall_ns\": {}}}, \
             \"after\": {{\"pred_evals\": {}, \"safety_checks\": {}, \"probed\": {}, \
             \"expanded\": {}, \"wall_ns\": {}}}, \
             \"pred_eval_reduction\": {reduction:.1}}}",
            n / 2,
            after.cost,
            before.stats.pred_evals,
            before.stats.safety_checks,
            before.stats.probed,
            before.stats.expanded,
            before.wall_ns,
            after.stats.pred_evals,
            after.stats.safety_checks,
            after.stats.probed,
            after.stats.expanded,
            after.wall_ns,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"planner_hot_path\",\n  \"workload\": \"grouped flip: n/2 one_of \
         groups, flip half forward; before = tree-walk + linear scan, after = compiled \
         kernels + incremental checks + action index on the identical search skeleton; \
         the 48-component row pins uniform-cost expanded-node counts — the frontier \
         bottleneck an admissible A* heuristic (ROADMAP item 5) must cut (expansions \
         grow ~17x per 8 components; a 64-component row extrapolates to ~2e9 nodes)\",\n  \
         \"safety_check_budget_16\": {SAFETY_CHECK_BUDGET_16},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json");
    std::fs::write(path, &json).expect("write BENCH_planning.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_case_study_planning, bench_planning_scaling, bench_hot_path);
criterion_main!(benches);
