//! Detection-and-setup phase costs: SAG construction (Figure 4), Dijkstra
//! MAP (Section 5.1), Yen's ranked alternatives (failure ladder), and the
//! lazy partial-exploration heuristic (Section 7 future work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sada_bench::carousel_system;
use sada_core::casestudy::case_study;
use sada_expr::enumerate;
use sada_plan::{lazy, Sag};

fn bench_case_study_planning(c: &mut Criterion) {
    let cs = case_study();
    let safe = cs.spec.safe_configs();
    let actions = cs.spec.actions().to_vec();
    let sag = Sag::build(safe.clone(), &actions);
    let mut g = c.benchmark_group("case_study_planning");
    g.bench_function("fig4_sag_build", |b| {
        b.iter(|| {
            let s = Sag::build(safe.clone(), &actions);
            assert_eq!(s.node_count(), 8);
            s
        })
    });
    g.bench_function("map_dijkstra", |b| {
        b.iter(|| {
            let p = sag.shortest_path(&cs.source, &cs.target).unwrap();
            assert_eq!(p.cost, 50);
            p
        })
    });
    g.bench_function("yen_k4", |b| b.iter(|| sag.k_shortest_paths(&cs.source, &cs.target, 4)));
    g.bench_function("map_lazy", |b| {
        b.iter(|| {
            let p = lazy::plan(cs.spec.invariants(), &actions, &cs.source, &cs.target).unwrap();
            assert_eq!(p.cost, 50);
            p
        })
    });
    g.bench_function("end_to_end_setup_phase", |b| {
        // Enumerate + build + plan, as the manager would on a request.
        b.iter(|| {
            let safe = cs.spec.safe_configs();
            let sag = Sag::build(safe, &actions);
            sag.shortest_path(&cs.source, &cs.target).unwrap()
        })
    });
    g.finish();
}

fn bench_planning_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("planning_scaling");
    g.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let (u, inv, actions) = carousel_system(n);
        let safe = enumerate::safe_configs(&u, &inv);
        let sag = Sag::build(safe.clone(), &actions);
        let from = u.config_of(&["C0"]);
        let to = u.config_of(&[&format!("C{}", n - 1)]);
        g.bench_with_input(BenchmarkId::new("sag_build", n), &n, |b, _| {
            b.iter(|| Sag::build(safe.clone(), &actions))
        });
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| sag.shortest_path(&from, &to).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| lazy::plan(&inv, &actions, &from, &to).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("astar", n), &n, |b, _| {
            b.iter(|| lazy::plan_astar(&inv, &actions, &from, &to).0.unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_case_study_planning, bench_planning_scaling);
criterion_main!(benches);
