//! Safe-configuration enumeration: pruned three-valued search vs. the
//! exhaustive baseline, over growing component counts (the Section 7
//! scalability concern) and on the paper's case study (Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sada_bench::paired_system;
use sada_core::casestudy::case_study;
use sada_expr::enumerate;

fn bench_case_study_table1(c: &mut Criterion) {
    let cs = case_study();
    let (u, inv) = (cs.spec.universe().clone(), cs.spec.invariants().clone());
    let mut g = c.benchmark_group("table1_safe_configs");
    g.bench_function("pruned", |b| {
        b.iter(|| {
            let safe = enumerate::safe_configs(&u, &inv);
            assert_eq!(safe.len(), 8);
            safe
        })
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| {
            let safe = enumerate::safe_configs_exhaustive(&u, &inv);
            assert_eq!(safe.len(), 8);
            safe
        })
    });
    g.finish();
}

fn bench_enumeration_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumeration_scaling");
    g.sample_size(10);
    for k in [4usize, 6, 8, 10] {
        let (u, inv, _) = paired_system(k);
        g.bench_with_input(BenchmarkId::new("pruned", k), &k, |b, _| {
            b.iter(|| enumerate::safe_configs(&u, &inv))
        });
        g.bench_with_input(BenchmarkId::new("exhaustive", k), &k, |b, _| {
            b.iter(|| enumerate::safe_configs_exhaustive(&u, &inv))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_case_study_table1, bench_enumeration_scaling);
criterion_main!(benches);
