//! Temporal-monitoring throughput: ptLTL steps per second and obligation
//! tracking under the safe-state detector — the runtime cost of Section 7's
//! automatic safe-state identification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sada_tl::{parse_formula, Monitor, ObligationEvent, ResponseSpec, SafeStateMonitor};

fn bench_monitor(c: &mut Criterion) {
    let formula = parse_formula(
        "historically ((send => once ready) & (!err since reset)) | once (panic & yesterday warn)",
    )
    .unwrap();
    let mut g = c.benchmark_group("temporal");
    g.throughput(Throughput::Elements(1));
    g.bench_function("ptltl_step", |b| {
        let mut m = Monitor::new(formula.clone());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let props = ["send", "ready", "reset"];
            let pick = props[(i % 3) as usize];
            m.step(&|p| p == pick)
        })
    });
    g.bench_function("safe_state_step_with_obligations", |b| {
        let mut m = SafeStateMonitor::new(
            sada_tl::Formula::Const(true),
            vec![ResponseSpec::new("seg", "start", "end")],
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let evs = if i.is_multiple_of(2) {
                vec![ObligationEvent::new("start", i)]
            } else {
                vec![ObligationEvent::new("end", i - 1)]
            };
            m.step(&evs, &|_| false)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
