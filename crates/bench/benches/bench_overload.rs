//! Sustained-overload resilience: Poisson arrivals at 2–4× measured
//! capacity against a degraded fleet (one group 400× slow, one agent
//! crash-looping), comparing the historical always-admit + fixed-ladder
//! configuration against the protected one (RTT-adaptive timeouts,
//! per-agent circuit breakers, bounded bulkhead with deterministic
//! shedding).
//!
//! Besides the criterion timing of the simulation itself, this bench
//! writes `BENCH_overload.json` at the repository root and asserts the
//! headline robustness claims:
//!
//! * at 4× load the protected plane keeps goodput at ≥ 80% of the healthy
//!   calibrated capacity, with p99 admission latency under the pinned
//!   bound, while the baseline collapses below half of that floor;
//! * the breakers actually trip during the agent's outages;
//! * identical seeds reproduce identical event streams (fingerprint
//!   equality across two full runs).
//!
//! Set `SADA_BENCH_SMOKE=1` to skip the timing loops and run only the
//! assertion sweep + JSON write (the CI regression gate).

use criterion::{criterion_group, criterion_main, Criterion};
use sada_fleet::{measure_capacity, run_overload, OverloadConfig, OverloadReport};

const GROUPS: usize = 12;
const SEED: u64 = 42;

/// Pinned p99 admission-wait bound for the protected plane at 4× load, μs.
/// Observed ~36 ms at the pinned seed; the headroom only lets through real
/// regressions in shedding or admission, not jitter (the run is
/// deterministic).
const P99_ADMISSION_BOUND_US: u64 = 250_000;

/// CI smoke mode: assertion sweep + JSON only, no timing loops.
fn smoke() -> bool {
    std::env::var_os("SADA_BENCH_SMOKE").is_some()
}

fn bench_overload(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let capacity = measure_capacity(GROUPS, SEED);
    let mut g = c.benchmark_group("overload");
    g.sample_size(10);
    g.bench_function("protected_4x", |b| {
        b.iter(|| run_overload(&OverloadConfig::protected(GROUPS, 4, SEED), capacity).succeeded)
    });
    g.bench_function("baseline_4x", |b| {
        b.iter(|| run_overload(&OverloadConfig::degraded(GROUPS, 4, SEED), capacity).succeeded)
    });
    g.finish();
}

fn row(label: &str, load: u32, r: &OverloadReport) -> String {
    format!(
        "    {{\"config\": \"{label}\", \"load\": {load}, \"offered\": {}, \
         \"succeeded\": {}, \"committed_flips\": {}, \"goodput_per_sec\": {:.1}, \
         \"shed\": {}, \"rejected\": {}, \"breaker_trips\": {}, \
         \"suppressed_sends\": {}, \"p50_admission_us\": {}, \
         \"p99_admission_us\": {}, \"makespan_us\": {}}}",
        r.offered,
        r.succeeded,
        r.committed_flips,
        r.goodput_per_sec,
        r.shed,
        r.rejected,
        r.breaker_trips,
        r.suppressed_sends,
        r.p50_admission_us,
        r.p99_admission_us,
        r.makespan_us,
    )
}

fn write_bench_json() {
    let capacity = measure_capacity(GROUPS, SEED);
    let floor = 0.8 * capacity;
    let mut rows = Vec::new();
    for load in [2u32, 4] {
        let base = run_overload(&OverloadConfig::degraded(GROUPS, load, SEED), capacity);
        let prot = run_overload(&OverloadConfig::protected(GROUPS, load, SEED), capacity);
        if load == 4 {
            assert!(
                prot.goodput_per_sec >= floor,
                "protected goodput must stay above 80% of capacity at 4x \
                 ({:.1} vs floor {floor:.1})",
                prot.goodput_per_sec,
            );
            assert!(
                base.goodput_per_sec < floor / 2.0,
                "the always-admit fixed-ladder baseline must collapse under 4x overload \
                 ({:.1} vs floor {floor:.1})",
                base.goodput_per_sec,
            );
            assert!(
                prot.goodput_per_sec > base.goodput_per_sec,
                "protection must beat the baseline at 4x"
            );
            assert!(
                prot.p99_admission_us <= P99_ADMISSION_BOUND_US,
                "protected p99 admission wait exceeded the pinned bound \
                 ({} vs {P99_ADMISSION_BOUND_US} us)",
                prot.p99_admission_us,
            );
            assert!(prot.breaker_trips > 0, "the flapping agent must trip its breaker");
            assert!(prot.shed > 0, "4x overload must exercise the bulkhead");
            // Determinism: a second identical run reproduces the exact
            // event stream, not just the aggregates.
            let again = run_overload(&OverloadConfig::protected(GROUPS, load, SEED), capacity);
            assert_eq!(
                prot.fingerprint, again.fingerprint,
                "identical seeds must reproduce identical event streams"
            );
        }
        rows.push(row("baseline", load, &base));
        rows.push(row("protected", load, &prot));
    }
    let json = format!(
        "{{\n  \"bench\": \"overload\",\n  \"workload\": \"Poisson arrivals over {GROUPS} groups \
         for 1s, one group 400x slow, one agent crash-looping; goodput = committed group \
         adaptations per second of window\",\n  \"capacity_per_sec\": {capacity:.1},\n  \
         \"goodput_floor_per_sec\": {floor:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    std::fs::write(path, &json).expect("write BENCH_overload.json");
    println!("wrote {path}:\n{json}");
}

fn bench_entry(c: &mut Criterion) {
    bench_overload(c);
    write_bench_json();
}

criterion_group!(benches, bench_entry);
criterion_main!(benches);
