//! Generated-domain throughput: seeded serverless and IaaS universes run
//! through the sharded control plane.
//!
//! Where `bench_shard` measures the video monoculture, this bench feeds
//! the fleet worlds it has never seen: per-seed generated universes with
//! mixed invariant families (`one_of` chains, implication clusters, xor
//! rings), heterogeneous action costs, and straddler traffic. Besides the
//! criterion timing it writes `BENCH_scenario.json` at the repository root
//! and asserts the headline claims:
//!
//! * for every domain and seed, 1/2/4 worker threads produce bit-for-bit
//!   identical fingerprints, results, and final configurations;
//! * every generated session concludes (no session leaks past the budget);
//! * the energy objective changes plan selection on the showcase world
//!   (the watt route differs from the millisecond route).
//!
//! Recorded per `(domain, seed)`: committed sessions/sec (wall clock),
//! plan-cache hit rate summed over shards, and the predicate-evaluation
//! count of a standalone planning sweep (one forward flip per cluster) —
//! the planner-side cost of the generated invariant families.
//!
//! Set `SADA_BENCH_SMOKE=1` to skip the timing loops and run only the
//! assertion sweep + JSON write (the CI regression gate).

use criterion::{criterion_group, criterion_main, Criterion};
use sada_fleet::{run_fleet_sharded, FleetWorld, Objective, ShardReport, ShardScenario};
use sada_plan::lazy;
use sada_scenario::{energy_showcase, generate, GeneratedScenario, ScenarioConfig};

const SEEDS: [u64; 3] = [1, 2, 3];

/// CI smoke mode: assertion sweep + JSON only, no timing loops.
fn smoke() -> bool {
    std::env::var_os("SADA_BENCH_SMOKE").is_some()
}

fn configs_for(domain: &str, seed: u64) -> ScenarioConfig {
    match domain {
        "serverless" => ScenarioConfig::serverless(seed),
        "iaas" => ScenarioConfig::iaas(seed),
        "iaas_energy" => ScenarioConfig::iaas_energy(seed),
        other => panic!("unknown domain {other}"),
    }
}

fn sharded(scenario: &GeneratedScenario) -> ShardScenario {
    let regions = scenario.spec.clusters.len().clamp(1, 4);
    ShardScenario::new(scenario.fleet(), regions)
}

fn cache_counters(report: &ShardReport) -> (u64, u64) {
    report.per_shard.iter().fold((0, 0), |(h, m), s| (h + s.cache_hits, m + s.cache_misses))
}

/// Predicate evaluations of a standalone planning sweep: one forward flip
/// per cluster from the boot configuration, over the full action table.
fn planning_pred_evals(scenario: &GeneratedScenario) -> u64 {
    let world = FleetWorld::from_spec(scenario.spec.clone());
    let init = world.initial_config();
    let mut evals = 0;
    for g in 0..world.groups {
        let target = world.target_for(&init, &[(g, true)]);
        let (path, stats) = lazy::plan_with_stats(&world.inv, &world.actions, &init, &target);
        assert!(path.is_some(), "generated goal must be reachable");
        evals += stats.pred_evals;
    }
    evals
}

fn bench_scenario(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    for domain in ["serverless", "iaas"] {
        let scenario = generate(&configs_for(domain, SEEDS[0]));
        let scn = sharded(&scenario);
        g.bench_function(format!("{domain}_4t"), |b| {
            b.iter(|| run_fleet_sharded(&scn, 4).succeeded())
        });
        g.bench_function(format!("generate_{domain}"), |b| {
            b.iter(|| generate(&configs_for(domain, SEEDS[0])).sessions.len())
        });
    }
    g.finish();
}

fn write_bench_json() {
    let mut rows = Vec::new();
    for domain in ["serverless", "iaas", "iaas_energy"] {
        for seed in SEEDS {
            let scenario = generate(&configs_for(domain, seed));
            let scn = sharded(&scenario);
            let base = run_fleet_sharded(&scn, 1);
            for threads in [2usize, 4] {
                let run = run_fleet_sharded(&scn, threads);
                assert_eq!(
                    run.fingerprint, base.fingerprint,
                    "{domain}/{seed}: {threads} threads changed the event stream"
                );
                assert_eq!(run.results, base.results, "{domain}/{seed}: results diverged");
                assert_eq!(run.final_config, base.final_config, "{domain}/{seed}: config diverged");
            }
            assert!(
                base.results.iter().all(|r| r.completed_at.is_some()),
                "{domain}/{seed}: every session must conclude"
            );
            let offered = scenario.sessions.len();
            let (hits, misses) = cache_counters(&base);
            let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
            let evals = planning_pred_evals(&scenario);
            let rate = base.succeeded() as f64 / base.wall.as_secs_f64().max(1e-9);
            rows.push(format!(
                "    {{\"domain\": \"{domain}\", \"seed\": {seed}, \"clusters\": {}, \
                 \"sessions\": {offered}, \"succeeded\": {}, \"wall_us\": {}, \
                 \"sessions_per_sec\": {rate:.1}, \"cache_hits\": {hits}, \
                 \"cache_misses\": {misses}, \"cache_hit_rate\": {hit_rate:.3}, \
                 \"plan_pred_evals\": {evals}, \"fingerprint\": \"{:#018x}\"}}",
                scenario.spec.clusters.len(),
                base.succeeded(),
                base.wall.as_micros(),
                base.fingerprint,
            ));
        }
    }

    // The objective column must reach plan selection: on the showcase
    // world the watt-cheapest route differs from the ms-cheapest one.
    let fast = FleetWorld::from_spec(energy_showcase(Objective::LatencyMs));
    let cool = FleetWorld::from_spec(energy_showcase(Objective::EnergyWatts));
    let init = fast.initial_config();
    let goal = fast.target_for(&init, &[(0, true)]);
    let (fast_path, _) = lazy::plan_with_stats(&fast.inv, &fast.actions, &init, &goal);
    let (cool_path, _) = lazy::plan_with_stats(&cool.inv, &cool.actions, &init, &goal);
    let (fast_path, cool_path) = (fast_path.expect("ms route"), cool_path.expect("watt route"));
    assert_ne!(
        fast_path.steps.len(),
        cool_path.steps.len(),
        "objectives must select different routes"
    );
    let energy_leg = format!(
        "  \"energy_objective\": {{\"latency_route_steps\": {}, \"latency_route_cost_ms\": {}, \
         \"energy_route_steps\": {}, \"energy_route_cost_watts\": {}, \
         \"routes_differ\": true}},\n",
        fast_path.steps.len(),
        fast_path.cost,
        cool_path.steps.len(),
        cool_path.cost,
    );

    let json = format!(
        "{{\n  \"bench\": \"scenario\",\n  \"workload\": \"seeded generated universes \
         (mixed one_of-chain / implication / xor-ring clusters, heterogeneous costs, \
         straddler traffic) run sharded; every row asserted thread-invariant at 1/2/4 \
         threads; sessions/sec = committed sessions per wall-clock second\",\n\
         {energy_leg}  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, &json).expect("write BENCH_scenario.json");
    println!("wrote {path}:\n{json}");
}

fn bench_entry(c: &mut Criterion) {
    bench_scenario(c);
    write_bench_json();
}

criterion_group!(benches, bench_entry);
criterion_main!(benches);
