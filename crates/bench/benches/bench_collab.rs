//! Section 7 collaborative-set ablation: planning over the full universe
//! vs. the scoped collaborative set vs. lazy exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sada_bench::paired_system;
use sada_expr::enumerate;
use sada_plan::{collab, lazy, Sag};

fn bench_collab(c: &mut Criterion) {
    let mut g = c.benchmark_group("collaborative_sets");
    g.sample_size(10);
    for k in [6usize, 8, 10] {
        let (u, inv, actions) = paired_system(k);
        let mut source = u.empty_config();
        let mut target = u.empty_config();
        for i in 0..k {
            source.insert(u.id(&format!("Old{i}")).unwrap());
            let t = if i == 0 { format!("New{i}") } else { format!("Old{i}") };
            target.insert(u.id(&t).unwrap());
        }
        g.bench_with_input(BenchmarkId::new("full_enumerate_plan", k), &k, |b, _| {
            b.iter(|| {
                let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
                sag.shortest_path(&source, &target).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("scoped_enumerate_plan", k), &k, |b, _| {
            b.iter(|| {
                let scope = collab::scope_for(&u, &inv, &actions, &source, &target);
                let safe = enumerate::safe_configs_scoped(&u, &inv, &scope, &source);
                let sag = Sag::build(safe, &actions);
                sag.shortest_path(&source, &target).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("lazy_plan", k), &k, |b, _| {
            b.iter(|| lazy::plan(&inv, &actions, &source, &target).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("partition_only", k), &k, |b, _| {
            b.iter(|| collab::collaborative_sets(&u, &inv, &actions))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collab);
criterion_main!(benches);
