//! Sharded control plane scaling: the same fleet workload executed by
//! `run_fleet_sharded` at 1/2/4/8 worker threads.
//!
//! The workload is a straddler-free adaptation storm (every session's scope
//! stays inside one region), so the deterministic fabric has no edges and
//! every region free-runs — the configuration where sharding must approach
//! linear scaling. Besides the criterion timing, this bench writes
//! `BENCH_shard.json` at the repository root and asserts the headline
//! claims:
//!
//! * every thread count produces the identical final configuration *and*
//!   the identical event-stream fingerprint (thread count is pure execution
//!   policy);
//! * on a host with ≥ 4 cores, 4 threads deliver ≥ 3× the single-threaded
//!   sessions/sec (the near-linear scaling claim; on smaller hosts the
//!   measured rows are still recorded, with the core count, and the
//!   speedup assertion is skipped — wall-clock scaling cannot be
//!   demonstrated without cores);
//! * a rerun at the same seed reproduces the same fingerprint.
//!
//! Set `SADA_BENCH_SMOKE=1` to skip the timing loops and run only the
//! assertion sweep + JSON write (the CI regression gate).

use criterion::{criterion_group, criterion_main, Criterion};
use sada_fleet::{
    run_fleet_sharded, FabricFaultPlan, FleetScenario, SessionSpec, ShardReport, ShardScenario,
};
use sada_obs::SimDuration;

const GROUPS: usize = 64;
const REGIONS: usize = 8;
const WAVES: usize = 6;
const SEED: u64 = 42;

/// CI smoke mode: assertion sweep + JSON only, no timing loops.
fn smoke() -> bool {
    std::env::var_os("SADA_BENCH_SMOKE").is_some()
}

/// A local adaptation storm: `WAVES` sessions per group, alternating
/// direction, each scope confined to its own group (and therefore its own
/// region) — zero cross-shard traffic, the scaling configuration.
fn storm() -> ShardScenario {
    let mut sessions = Vec::with_capacity(GROUPS * WAVES);
    for wave in 0..WAVES {
        for g in 0..GROUPS {
            sessions.push(SessionSpec {
                id: (wave * GROUPS + g) as u64 + 1,
                flips: vec![(g, wave % 2 == 0)],
                priority: (g % 4) as u8,
                submit_at: SimDuration::from_micros(20_000 * wave as u64 + 37 * g as u64),
                cancel_at: None,
            });
        }
    }
    let mut fleet = FleetScenario::new(GROUPS, sessions);
    fleet.seed = SEED;
    ShardScenario::new(fleet, REGIONS)
}

/// The storm plus one straddler per region boundary: the workload whose
/// lock handshakes actually cross the fabric, used for the
/// retransmission-overhead leg (faults on vs off).
fn straddler_storm() -> ShardScenario {
    let mut scn = storm();
    let mut sessions = scn.fleet.sessions.clone();
    for r in 0..REGIONS - 1 {
        let boundary = (r + 1) * GROUPS / REGIONS;
        sessions.push(SessionSpec {
            id: 10_000 + r as u64,
            flips: vec![(boundary - 1, true), (boundary, true)],
            priority: 0,
            submit_at: SimDuration::from_micros(130_000 + 500 * r as u64),
            cancel_at: None,
        });
    }
    scn.fleet = FleetScenario::new(GROUPS, sessions);
    scn.fleet.seed = SEED;
    scn.fleet.time_budget = SimDuration::from_millis(40_000);
    scn
}

fn chaos_plan() -> FabricFaultPlan {
    FabricFaultPlan {
        seed: SEED,
        drop_per_mille: 200,
        dup_per_mille: 200,
        delay_per_mille: 200,
        null_drop_per_mille: 100,
        ..FabricFaultPlan::default()
    }
}

fn sessions_per_sec(report: &ShardReport) -> f64 {
    report.succeeded() as f64 / report.wall.as_secs_f64().max(1e-9)
}

fn bench_shard(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let scn = storm();
    let mut g = c.benchmark_group("shard");
    g.sample_size(10);
    for threads in [1usize, 8] {
        g.bench_function(format!("storm_{threads}t"), |b| {
            b.iter(|| run_fleet_sharded(&scn, threads).succeeded())
        });
    }
    // The retransmission-overhead pair: straddler handshakes with the
    // fabric lossless vs chaos-faulted.
    let strad = straddler_storm();
    g.bench_function("straddlers_8t", |b| b.iter(|| run_fleet_sharded(&strad, 8).succeeded()));
    let mut faulted = strad.clone();
    faulted.fabric_faults = chaos_plan();
    g.bench_function("straddlers_chaos_8t", |b| {
        b.iter(|| run_fleet_sharded(&faulted, 8).succeeded())
    });
    g.finish();
}

fn write_bench_json() {
    let scn = storm();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut runs: Vec<(usize, ShardReport)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        runs.push((threads, run_fleet_sharded(&scn, threads)));
    }
    let base = &runs[0].1;
    let offered = GROUPS * WAVES;
    assert_eq!(base.succeeded(), offered, "the storm must commit every session");
    assert_eq!(base.fabric.messages, 0, "a local storm never crosses the fabric");
    for (threads, run) in &runs {
        assert_eq!(
            run.final_config, base.final_config,
            "{threads} threads changed the final configuration"
        );
        assert_eq!(run.fingerprint, base.fingerprint, "{threads} threads changed the event stream");
        let rate = sessions_per_sec(run);
        let speedup = if run.wall.is_zero() {
            1.0
        } else {
            base.wall.as_secs_f64() / run.wall.as_secs_f64().max(1e-9)
        };
        rows.push(format!(
            "    {{\"threads\": {threads}, \"sessions\": {}, \"succeeded\": {}, \
             \"wall_us\": {}, \"sessions_per_sec\": {rate:.1}, \"speedup_vs_1\": {speedup:.2}, \
             \"fingerprint\": \"{:#018x}\"}}",
            offered,
            run.succeeded(),
            run.wall.as_micros(),
            run.fingerprint,
        ));
    }
    // The wall-clock scaling claim needs real cores; determinism above is
    // asserted unconditionally.
    let speedup_4t = base.wall.as_secs_f64()
        / runs.iter().find(|(t, _)| *t == 4).expect("4-thread run").1.wall.as_secs_f64().max(1e-9);
    if cores >= 4 {
        assert!(
            speedup_4t >= 3.0,
            "4 threads must deliver >= 3x single-threaded throughput on a \
             {cores}-core host (got {speedup_4t:.2}x)"
        );
    } else {
        eprintln!(
            "note: {cores} core(s) available; recording measured rows but skipping \
             the >= 3x speedup assertion (got {speedup_4t:.2}x)"
        );
    }
    // Determinism across independent processes of the same seed: rerun the
    // single-thread leg and compare fingerprints.
    let again = run_fleet_sharded(&scn, 1);
    assert_eq!(base.fingerprint, again.fingerprint, "same seed, same stream");

    // Retransmission-overhead leg: the straddler storm with the fabric
    // lossless vs faulted. The ladder must absorb every fault — identical
    // verdicts and final configuration — and this records what that costs
    // in virtual makespan and retransmitted handshakes.
    let strad = straddler_storm();
    let clean = run_fleet_sharded(&strad, REGIONS);
    let offered_strad = GROUPS * WAVES + (REGIONS - 1);
    assert_eq!(clean.succeeded(), offered_strad, "straddler storm commits every session");
    assert!(clean.fabric.messages > 0, "straddlers must cross the fabric");
    let mut faulted_scn = strad.clone();
    faulted_scn.fabric_faults = chaos_plan();
    let faulted = run_fleet_sharded(&faulted_scn, REGIONS);
    assert_eq!(faulted.succeeded(), clean.succeeded(), "faults never change verdicts");
    assert_eq!(faulted.final_config, clean.final_config, "faults never change the destination");
    assert!(faulted.retransmits > 0, "the chaos plan must exercise the ladder");
    let makespan_overhead = faulted.makespan_us as f64 / (clean.makespan_us as f64).max(1.0) - 1.0;
    let fabric_leg = format!(
        "  \"fabric_chaos\": {{\"sessions\": {offered_strad}, \"straddlers\": {}, \
         \"clean_makespan_us\": {}, \"faulted_makespan_us\": {}, \
         \"makespan_overhead\": {makespan_overhead:.3}, \"fabric_messages\": {}, \
         \"dropped\": {}, \"duplicated\": {}, \"delayed\": {}, \"retransmits\": {}, \
         \"abandoned\": {}, \"outcomes_match_lossless\": true}},\n",
        REGIONS - 1,
        clean.makespan_us,
        faulted.makespan_us,
        faulted.fabric.messages,
        faulted.fabric.dropped,
        faulted.fabric.duplicated,
        faulted.fabric.delayed,
        faulted.retransmits,
        faulted.abandoned,
    );

    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"workload\": \"{} local sessions ({WAVES} waves over \
         {GROUPS} groups, {REGIONS} regions), straddler-free so every region free-runs; \
         sessions/sec = committed sessions per wall-clock second\",\n  \
         \"host_cores\": {cores},\n  \"scaling_asserted\": {},\n  \
         \"speedup_4t_vs_1t\": {speedup_4t:.2},\n{fabric_leg}  \"rows\": [\n{}\n  ]\n}}\n",
        GROUPS * WAVES,
        cores >= 4,
        rows.join(",\n"),
    );
    // crates/bench -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!("wrote {path}:\n{json}");
}

fn bench_entry(c: &mut Criterion) {
    bench_shard(c);
    write_bench_json();
}

criterion_group!(benches, bench_entry);
criterion_main!(benches);
