//! Realization-phase costs: full simulated adaptation runs of the case
//! study (Table 2's cost classes realized as protocol latency) and the
//! failure-handling overhead under message loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sada_core::casestudy::case_study;
use sada_core::{run_adaptation, RunConfig};
use sada_simnet::{LinkConfig, SimDuration};

fn bench_adaptation_run(c: &mut Criterion) {
    let cs = case_study();
    let mut g = c.benchmark_group("protocol_run");
    g.sample_size(20);
    g.bench_function("case_study_map_5_steps", |b| {
        b.iter(|| {
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &RunConfig::default());
            assert!(r.outcome.success);
            r
        })
    });
    g.bench_function("single_step_a2", |b| {
        // Source -> one hop (A2 alone): {D4,D1,E1} -> {D4,D2,E1}.
        let u = cs.spec.universe();
        let mid = u.config_of(&["D4", "D2", "E1"]);
        b.iter(|| {
            let r = run_adaptation(&cs.spec, &cs.source, &mid, &RunConfig::default());
            assert!(r.outcome.success);
            r
        })
    });
    g.finish();
}

fn bench_failure_overhead(c: &mut Criterion) {
    let cs = case_study();
    let mut g = c.benchmark_group("protocol_loss_overhead");
    g.sample_size(10);
    for loss_pct in [0u32, 10, 20, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(loss_pct), &loss_pct, |b, &p| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = RunConfig {
                    seed,
                    link: LinkConfig::lossy(SimDuration::from_millis(1), f64::from(p) / 100.0),
                    ..RunConfig::default()
                };
                run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg)
            })
        });
    }
    g.finish();
}

fn bench_rollback_path(c: &mut Criterion) {
    let cs = case_study();
    let mut g = c.benchmark_group("protocol_failure_ladder");
    g.sample_size(10);
    g.bench_function("fail_to_reset_full_ladder", |b| {
        b.iter(|| {
            let cfg = RunConfig { fail_to_reset: vec![1], ..RunConfig::default() };
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            assert!(!r.outcome.success);
            r
        })
    });
    g.finish();
}

fn bench_barrier_width(c: &mut Criterion) {
    // How coordination cost scales with the number of participating
    // processes in a single distributed step (the paper's adapt-done
    // barrier).
    let mut g = c.benchmark_group("protocol_barrier_width");
    g.sample_size(10);
    for k in [2usize, 4, 8, 16] {
        let (spec, source, target) = sada_bench::wide_step_spec(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = run_adaptation(&spec, &source, &target, &RunConfig::default());
                assert!(r.outcome.success);
                r
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_adaptation_run,
    bench_failure_overhead,
    bench_rollback_path,
    bench_barrier_width
);
criterion_main!(benches);
