//! Shared workload generators for the benchmark harness and the
//! table/figure report binary.

use std::collections::HashSet;

use sada_core::AdaptationSpec;
use sada_expr::{InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::Action;

/// A system of `k` independent old/new component pairs (each guarded by a
/// `one_of` invariant) with one replacement action per pair. Safe
/// configuration count is `2^k`; useful for scaling sweeps.
pub fn paired_system(k: usize) -> (Universe, InvariantSet, Vec<Action>) {
    let mut u = Universe::new();
    for i in 0..k {
        u.intern(&format!("Old{i}"));
        u.intern(&format!("New{i}"));
    }
    let srcs: Vec<String> = (0..k).map(|i| format!("one_of(Old{i}, New{i})")).collect();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let inv = InvariantSet::parse(&refs, &mut u).expect("generated invariants parse");
    let actions = (0..k)
        .map(|i| {
            Action::replace(
                i as u32,
                &format!("Old{i}->New{i}"),
                &u.config_of(&[&format!("Old{i}")]),
                &u.config_of(&[&format!("New{i}")]),
                10,
            )
        })
        .collect();
    (u, inv, actions)
}

/// A grouped flip workload for the planner hot-path sweep: `n_comps`
/// components forming `n_comps / 2` independent `one_of(Old, New)` groups
/// with forward *and* backward replace actions (cost 1), a source with
/// every group on `Old`, and a target with the first half of the groups
/// flipped to `New`. Every candidate the search generates is safe, so the
/// invariant-evaluation counts isolate the checking strategy itself.
pub fn grouped_flip_workload(
    n_comps: usize,
) -> (Universe, InvariantSet, Vec<Action>, sada_expr::Config, sada_expr::Config) {
    assert!(n_comps >= 4 && n_comps.is_multiple_of(2), "need whole groups");
    let groups = n_comps / 2;
    let mut u = Universe::with_capacity(n_comps);
    for g in 0..groups {
        u.intern(&format!("Old{g}"));
        u.intern(&format!("New{g}"));
    }
    let srcs: Vec<String> = (0..groups).map(|g| format!("one_of(Old{g}, New{g})")).collect();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let inv = InvariantSet::parse(&refs, &mut u).expect("generated invariants parse");
    let mut actions = Vec::with_capacity(2 * groups);
    for g in 0..groups {
        let old = u.config_of(&[&format!("Old{g}")]);
        let new = u.config_of(&[&format!("New{g}")]);
        actions.push(Action::replace(2 * g as u32, &format!("fwd{g}"), &old, &new, 1));
        actions.push(Action::replace(2 * g as u32 + 1, &format!("back{g}"), &new, &old, 1));
    }
    let mut source = u.empty_config();
    for g in 0..groups {
        source.insert(u.id(&format!("Old{g}")).unwrap());
    }
    let mut target = source.clone();
    for g in 0..groups / 2 {
        target.remove(u.id(&format!("Old{g}")).unwrap());
        target.insert(u.id(&format!("New{g}")).unwrap());
    }
    (u, inv, actions, source, target)
}

/// A "carousel" system: `n` mutually-exclusive components with a
/// replacement action between every ordered pair (cost = distance). Safe
/// configurations: the `n` singletons; the SAG is a dense digraph.
pub fn carousel_system(n: usize) -> (Universe, InvariantSet, Vec<Action>) {
    let mut u = Universe::new();
    for i in 0..n {
        u.intern(&format!("C{i}"));
    }
    let names: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
    let joined = names.join(", ");
    let inv = InvariantSet::parse(&[&format!("one_of({joined})")], &mut u).unwrap();
    let mut actions = Vec::new();
    let mut id = 0;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                let cost = (a as i64 - b as i64).unsigned_abs();
                actions.push(Action::replace(
                    id,
                    &format!("C{a}->C{b}"),
                    &u.config_of(&[&format!("C{a}")]),
                    &u.config_of(&[&format!("C{b}")]),
                    cost,
                ));
                id += 1;
            }
        }
    }
    (u, inv, actions)
}

/// Wraps a generated system into a runnable [`AdaptationSpec`] with all
/// components on one process (protocol benches that need multi-process
/// deployments use the case study instead).
pub fn single_process_spec(u: Universe, inv: InvariantSet, actions: Vec<Action>) -> AdaptationSpec {
    let mut model = SystemModel::new();
    let p = model.add_process("host");
    for id in u.iter() {
        model.place(id, p);
    }
    AdaptationSpec::new(u, inv, actions, model, vec![0], HashSet::new())
}

/// A `k`-process system whose single adaptive action replaces one
/// component on *every* process simultaneously — the widest possible
/// barrier for the realization protocol (one agent per process).
pub fn wide_step_spec(k: usize) -> (AdaptationSpec, sada_expr::Config, sada_expr::Config) {
    let mut u = Universe::new();
    for i in 0..k {
        u.intern(&format!("Old{i}"));
        u.intern(&format!("New{i}"));
    }
    let srcs: Vec<String> = (0..k).map(|i| format!("one_of(Old{i}, New{i})")).collect();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let inv = InvariantSet::parse(&refs, &mut u).expect("invariants parse");
    let mut removes = u.empty_config();
    let mut adds = u.empty_config();
    for i in 0..k {
        removes.insert(u.id(&format!("Old{i}")).unwrap());
        adds.insert(u.id(&format!("New{i}")).unwrap());
    }
    let action = Action::replace(0, "upgrade-everything", &removes, &adds, 100);
    let mut model = SystemModel::new();
    for i in 0..k {
        let p = model.add_process(&format!("proc{i}"));
        model.place(u.id(&format!("Old{i}")).unwrap(), p);
        model.place(u.id(&format!("New{i}")).unwrap(), p);
    }
    let spec = AdaptationSpec::new(u, inv, vec![action], model, (0..k).collect(), HashSet::new());
    let u = spec.universe();
    let mut source = u.empty_config();
    let mut target = u.empty_config();
    for i in 0..k {
        source.insert(u.id(&format!("Old{i}")).unwrap());
        target.insert(u.id(&format!("New{i}")).unwrap());
    }
    (spec, source, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::enumerate;

    #[test]
    fn paired_system_scales_as_two_to_the_k() {
        for k in [1usize, 3, 5] {
            let (u, inv, actions) = paired_system(k);
            assert_eq!(u.len(), 2 * k);
            assert_eq!(actions.len(), k);
            assert_eq!(enumerate::safe_configs(&u, &inv).len(), 1 << k);
        }
    }

    #[test]
    fn grouped_flip_workload_plans_half_the_groups() {
        let (u, inv, actions, src, dst) = grouped_flip_workload(16);
        assert_eq!(u.len(), 16);
        assert_eq!(actions.len(), 16);
        assert!(inv.satisfied_by(&src) && inv.satisfied_by(&dst));
        let p = sada_plan::lazy::plan(&inv, &actions, &src, &dst).unwrap();
        assert_eq!(p.len(), 4, "half of 8 groups flip, one step each");
        assert_eq!(p.cost, 4);
    }

    #[test]
    fn carousel_has_n_singletons_and_dense_arcs() {
        let (u, inv, actions) = carousel_system(5);
        let safe = enumerate::safe_configs(&u, &inv);
        assert_eq!(safe.len(), 5);
        assert_eq!(actions.len(), 20);
        let sag = sada_plan::Sag::build(safe, &actions);
        assert_eq!(sag.edge_count(), 20);
    }

    #[test]
    fn wide_step_runs_one_barrier_across_all_agents() {
        let (spec, source, target) = wide_step_spec(6);
        let report =
            sada_core::run_adaptation(&spec, &source, &target, &sada_core::RunConfig::default());
        assert!(report.outcome.success);
        assert_eq!(report.outcome.steps_committed, 1);
        assert_eq!(report.outcome.final_config, target);
    }

    #[test]
    fn single_process_spec_plans() {
        let (u, inv, actions) = carousel_system(4);
        let spec = single_process_spec(u, inv, actions);
        let u = spec.universe();
        let p = spec.minimum_adaptation_path(&u.config_of(&["C0"]), &u.config_of(&["C3"])).unwrap();
        assert!(p.cost <= 3, "direct or stepped route, whichever cheaper");
    }
}
