//! Regenerates every table and figure of the paper plus the repository's
//! measured series — the source of EXPERIMENTS.md.
//!
//! Usage: `cargo run -p sada-bench --bin report -- [section]`
//! where `section` is one of `table1 table2 fig1 fig2 fig4 map failures
//! crashes baselines scaling planning fec inference timeline fleet
//! overload shard scenario scale all` (default `all`).
//!
//! `scale` also accepts a seed: `report -- scale <seed>` reruns the strided
//! 1k/10k-group storms (flat and sharded, thread-invariance asserted) under
//! that simulation seed.
//!
//! `timeline` additionally accepts a chaos seed:
//! `cargo run -p sada-bench --bin report -- timeline <seed>` replays the
//! chaos-sweep fault plan for that seed (the command printed at the top of
//! every `target/chaos-failures/seed-*.txt` counterexample dump) and renders
//! its per-phase latency breakdown from the unified event stream.
//!
//! `fleet` also accepts a seed: `report -- fleet <seed>` reruns the
//! control-plane scenario (including its crash/restore leg) under that
//! simulation seed.
//!
//! `scenario` also accepts a seed: `report -- scenario <seed>` generates
//! and runs the serverless and IaaS universes for seeds `<seed>`,
//! `<seed>+1`, `<seed>+2` (default base seed 1, matching
//! `BENCH_scenario.json`).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use sada_core::casestudy::{case_study, PAPER_MAP, PAPER_MAP_COST, TABLE1_ROWS};
use sada_core::{run_adaptation, RunConfig};
use sada_expr::{enumerate, CompId};
use sada_obs::{AuditEvent, Bus, CounterSink, Event, Metrics, Payload, RingSink, TemporalEvent};
use sada_plan::{lazy, Search};
use sada_proto::{
    AgentCore, AgentEvent, AgentState, LocalAction, ManagerCore, ManagerEvent, ManagerPhase,
    ProtoMsg, ProtoTiming, StepId,
};
use sada_simnet::{chaos, ActorId, ChaosOpts, FaultPlan, LinkConfig, SimDuration, SimTime};
use sada_video::{
    run_fec_scenario, run_video_scenario, FecScenarioConfig, ScenarioConfig, Strategy,
};

fn table1() {
    println!("## Table 1 — safe configuration set");
    let cs = case_study();
    let u = cs.spec.universe();
    let safe = cs.spec.safe_configs();
    println!("{:<12} {:<20} paper row", "bit vector", "configuration");
    for cfg in &safe {
        let bits = cfg.to_bit_string();
        let in_paper = TABLE1_ROWS.iter().any(|(b, _)| *b == bits);
        println!(
            "{:<12} {:<20} {}",
            bits,
            cfg.to_names(u),
            if in_paper { "yes" } else { "NO (!)" }
        );
    }
    println!(
        "rows: {} (paper: 8) — {}",
        safe.len(),
        if safe.len() == 8 { "MATCH" } else { "MISMATCH" }
    );
}

fn table2() {
    println!("## Table 2 — adaptive actions and costs");
    let cs = case_study();
    println!("{:<5} {:<28} {:>9}", "id", "operation", "cost (ms)");
    for a in cs.spec.actions() {
        println!("{:<5} {:<28} {:>9}", a.id().to_string(), a.name(), a.cost());
    }
    println!("actions: {} (paper: 17)", cs.spec.actions().len());
}

fn fig4() {
    println!("## Figure 4 — safe adaptation graph");
    let cs = case_study();
    let sag = cs.spec.build_sag();
    println!("nodes: {} (paper: 8), arcs: {}", sag.node_count(), sag.edge_count());
    let mut by_action: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in sag.edges() {
        by_action.entry(e.action.to_string()).or_default().push(format!(
            "{} -> {}",
            sag.configs()[e.from].to_bit_string(),
            sag.configs()[e.to].to_bit_string()
        ));
    }
    for (a, arcs) in by_action {
        println!("  {a}: {}", arcs.join(", "));
    }
}

fn map() {
    println!("## Section 5.1 — minimum adaptation path");
    let cs = case_study();
    let u = cs.spec.universe();
    let path = cs.spec.minimum_adaptation_path(&cs.source, &cs.target).expect("MAP");
    let labels: Vec<String> = path.action_ids().iter().map(|a| a.to_string()).collect();
    println!("measured: {labels:?} cost {}", path.cost);
    println!("paper:    {PAPER_MAP:?} cost {PAPER_MAP_COST}");
    println!(
        "match:    {}",
        if labels == PAPER_MAP && path.cost == PAPER_MAP_COST { "EXACT" } else { "DIFFERS" }
    );
    for step in &path.steps {
        println!("  {}: {} -> {}", step.action, step.from.to_names(u), step.to.to_names(u));
    }
    // Ranked alternatives (used by the recovery ladder).
    let sag = cs.spec.build_sag();
    for (i, p) in sag.k_shortest_paths(&cs.source, &cs.target, 4).iter().enumerate() {
        println!("  rank {}: {p}", i + 1);
    }
}

fn fig1() {
    println!("## Figure 1 — agent state diagram (observed trace)");
    let la = LocalAction {
        action: sada_plan::ActionId(1),
        removes: vec![],
        adds: vec![],
        needs_global_drain: false,
    };
    let mut agent = AgentCore::new();
    let script = [
        (
            "receive reset",
            AgentEvent::Msg(ProtoMsg::Reset { step: StepId(1), action: la.clone(), solo: false }),
        ),
        ("reset complete", AgentEvent::SafeReached),
        ("adaptive action complete", AgentEvent::InActionDone),
        ("receive resume", AgentEvent::Msg(ProtoMsg::Resume { step: StepId(1) })),
        ("resumption complete", AgentEvent::ResumeFinished),
    ];
    let mut prev = agent.state();
    println!("  start: {prev:?}");
    for (label, ev) in script {
        let effects = agent.on_event(ev);
        let sends: Vec<String> = effects
            .iter()
            .filter_map(|e| match e {
                sada_proto::AgentEffect::Send(m) => Some(format!("{m:?}")),
                _ => None,
            })
            .collect();
        println!("  [{label}] {:?} -> {:?}  sends {sends:?}", prev, agent.state());
        prev = agent.state();
    }
    assert_eq!(agent.state(), AgentState::Running);
    println!(
        "  (failure arcs covered by unit tests: fail-to-reset, rollback from every partial state)"
    );
}

fn fig2() {
    println!("## Figure 2 — manager state diagram (observed trace)");
    let cs = case_study();
    let mut mgr = ManagerCore::new(ProtoTiming::default(), Box::new(cs.spec.runtime_planner()));
    println!("  start: {:?}", mgr.phase());
    let mut effects = mgr
        .on_event(ManagerEvent::Request { source: cs.source.clone(), target: cs.target.clone() });
    println!("  [request + MAP created] -> {:?}", mgr.phase());
    // Drive each step by answering as the single participating agent would.
    let mut step_no = 0;
    let mut guard = 0;
    while mgr.phase() != ManagerPhase::Running && guard < 100 {
        guard += 1;
        let reset = effects.iter().find_map(|e| match e {
            sada_proto::ManagerEffect::Send { agent, msg: ProtoMsg::Reset { step, .. } } => {
                Some((*agent, *step))
            }
            _ => None,
        });
        if let Some((agent, step)) = reset {
            step_no += 1;
            let _ =
                mgr.on_event(ManagerEvent::AgentMsg { agent, msg: ProtoMsg::ResetDone { step } });
            let e2 =
                mgr.on_event(ManagerEvent::AgentMsg { agent, msg: ProtoMsg::AdaptDone { step } });
            println!("  [step {step_no}: all adapt done] -> {:?}", mgr.phase());
            let _ = e2;
            effects =
                mgr.on_event(ManagerEvent::AgentMsg { agent, msg: ProtoMsg::ResumeDone { step } });
            println!("  [step {step_no}: all resume done] -> {:?}", mgr.phase());
        } else {
            break;
        }
    }
    assert_eq!(mgr.phase(), ManagerPhase::Running);
    println!("  adaptation complete after {step_no} steps (paper: 5)");
}

fn failures() {
    println!("## Section 4.4 — failure handling");
    let cs = case_study();
    println!("loss sweep (manager<->agent links), 6 seeds each:");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}",
        "loss", "success", "aborted", "gave-up", "avg msgs"
    );
    for loss in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let (mut ok, mut ab, mut gu, mut msgs) = (0, 0, 0, 0u64);
        for seed in 0..6 {
            let cfg = RunConfig {
                seed,
                link: LinkConfig::lossy(SimDuration::from_millis(1), loss),
                ..RunConfig::default()
            };
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            msgs += r.messages_sent;
            if r.outcome.success {
                ok += 1;
            } else if r.outcome.gave_up {
                gu += 1;
            } else {
                ab += 1;
            }
            assert!(cs.spec.is_safe(&r.outcome.final_config), "safety invariant");
        }
        println!("{:<8} {:>10} {:>10} {:>10} {:>12}", loss, ok, ab, gu, msgs / 6);
    }
    println!("fail-to-reset injection:");
    for (who, name) in [(1usize, "handheld"), (2, "laptop")] {
        let cfg = RunConfig { fail_to_reset: vec![who], ..RunConfig::default() };
        let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        println!(
            "  {name}: success={} gave_up={} final={} (safe={})",
            r.outcome.success,
            r.outcome.gave_up,
            r.outcome.final_config.to_bit_string(),
            cs.spec.is_safe(&r.outcome.final_config)
        );
    }
}

/// The exact `ChaosOpts` the tier-1 chaos sweep uses (tests/chaos_sweep.rs)
/// — kept in lockstep so `timeline <seed>` and the chaos matrix reproduce
/// the same plans a failing sweep seed names. Every actor, the manager
/// included, is crashable; the manager recovers via its write-ahead journal.
fn sweep_chaos_opts(cs: &sada_core::casestudy::CaseStudy) -> ChaosOpts {
    let n = cs.spec.model().process_count();
    let all: Vec<ActorId> = (0..=n).map(ActorId::from_index).collect();
    ChaosOpts { crashable: all.clone(), partitionable: all, horizon: SimDuration::from_millis(500) }
}

fn crashes() {
    println!("## Crash faults — agent and manager crash/recovery matrix");
    let cs = case_study();
    // Baseline cost of the unfaulted run, for overhead accounting.
    let base = run_adaptation(&cs.spec, &cs.source, &cs.target, &RunConfig::default());
    println!(
        "no-fault baseline: finished at {} with {} msgs",
        base.finished_at, base.messages_sent
    );
    // Sweep the crash instant across the protocol window for each agent
    // victim; the victim restarts 100 ms after dying.
    println!("single crash/restart sweep (restart = crash + 100ms):");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "victim", "crash-at", "success", "rejoins", "restores", "msgs", "finished", "safe"
    );
    // The manager (registered after the agents) is a victim like any other:
    // it recovers by replaying its write-ahead journal instead of rejoining.
    let manager_ix = cs.spec.model().process_count();
    for (who, name) in [(0usize, "server"), (1, "handheld"), (2, "laptop"), (manager_ix, "manager")]
    {
        for crash_ms in [2u64, 6, 12, 20, 30] {
            let victim = ActorId::from_index(who);
            let cfg = RunConfig {
                faults: FaultPlan::new()
                    .crash(victim, SimTime::from_millis(crash_ms))
                    .restart(victim, SimTime::from_millis(crash_ms + 100)),
                ..RunConfig::default()
            };
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            assert!(cs.spec.is_safe(&r.outcome.final_config), "safety invariant");
            println!(
                "{:<10} {:>7}ms {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
                name,
                crash_ms,
                r.outcome.success,
                r.rejoins,
                r.manager_restores,
                r.messages_sent,
                format!("{}", r.finished_at),
                cs.spec.is_safe(&r.outcome.final_config)
            );
        }
    }
    // Randomized chaos: the same sweep the tier-1 chaos_sweep test runs,
    // summarized as a matrix over intensity.
    println!(
        "chaos sweep (20 seeds per intensity, crashes incl. manager + partitions + drops + bursts):"
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "intensity", "success", "aborted", "gave-up", "crashes", "rejoins", "restores", "avg msgs"
    );
    let opts = sweep_chaos_opts(&cs);
    for intensity in [0.2, 0.4, 0.6, 0.8] {
        let (mut ok, mut ab, mut gu, mut cr, mut rj, mut rs, mut msgs) =
            (0, 0, 0, 0u64, 0u64, 0u64, 0u64);
        for seed in 0..20u64 {
            let plan = chaos(seed, intensity, &opts);
            let cfg = RunConfig { faults: plan, ..RunConfig::default() };
            let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
            assert!(cs.spec.is_safe(&r.outcome.final_config), "safety invariant");
            if r.outcome.success {
                ok += 1;
            } else if r.outcome.gave_up {
                gu += 1;
            } else {
                ab += 1;
            }
            cr += r.crashes;
            rj += r.rejoins;
            rs += r.manager_restores;
            msgs += r.messages_sent;
        }
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
            intensity,
            ok,
            ab,
            gu,
            cr,
            rj,
            rs,
            msgs / 20
        );
    }
}

fn baselines() {
    println!("## Baseline comparison (video stream during reconfiguration)");
    let cfg = ScenarioConfig::default();
    let rows = [
        ("control", run_video_scenario(&cfg, Strategy::None)),
        ("safe", run_video_scenario(&cfg, Strategy::Safe)),
        (
            "naive-60ms",
            run_video_scenario(&cfg, Strategy::Naive { skew: SimDuration::from_millis(60) }),
        ),
        (
            "quiesce-100",
            run_video_scenario(
                &cfg,
                Strategy::Quiescence { window: SimDuration::from_millis(100) },
            ),
        ),
    ];
    println!(
        "{:<12} {:>7} {:>10} {:>10} {:>12} {:>8}",
        "strategy", "frames", "displayed", "corrupted", "srv-blocked", "audit"
    );
    for (name, r) in &rows {
        println!(
            "{:<12} {:>7} {:>10} {:>10} {:>12} {:>8}",
            name,
            r.server.frames_sent,
            r.frames_displayed(),
            r.corrupted_packets(),
            format!("{}", r.server.blocked),
            if r.audit.is_safe() { "SAFE" } else { "UNSAFE" }
        );
    }
}

fn scaling() {
    println!("## Section 7 — scalability (safe-config enumeration & planning)");
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>16}",
        "k", "safe configs", "pruned nodes", "lazy expanded", "lazy checks"
    );
    for k in [4usize, 6, 8, 10, 12] {
        let (u, inv, actions) = sada_bench::paired_system(k);
        let safe = enumerate::safe_configs(&u, &inv);
        let nodes = enumerate::pruned_search_nodes(&u, &inv);
        // Adapt only pair 0: lazy planning explores a constant-size region.
        let mut source = u.empty_config();
        let mut target = u.empty_config();
        for i in 0..k {
            source.insert(u.id(&format!("Old{i}")).unwrap());
            let tname = if i == 0 { format!("New{i}") } else { format!("Old{i}") };
            target.insert(u.id(&tname).unwrap());
        }
        let (p, stats) = lazy::plan_with_stats(&inv, &actions, &source, &target);
        assert!(p.is_some());
        println!(
            "{:>4} {:>12} {:>14} {:>14} {:>16}",
            k,
            safe.len(),
            nodes,
            stats.expanded,
            stats.safety_checks
        );
    }
    println!("(full enumeration is exponential in k; lazy exploration is flat — the paper's partial-SAG heuristic)");
}

fn planning() {
    use sada_fleet::{disjoint_wave, run_fleet, FleetScenario};
    println!("## Planner hot path — compiled kernels vs tree-walk, and the fleet plan cache");
    println!(
        "{:>5} {:>6} {:>16} {:>16} {:>10} {:>14} {:>10}",
        "comps", "steps", "tree-walk evals", "kernel evals", "reduction", "safety checks", "probed"
    );
    for n in [16usize, 24, 32] {
        let (u, inv, actions, src, dst) = sada_bench::grouped_flip_workload(n);
        let kernel = Search::new(&inv, &actions, u.len());
        let baseline = Search::tree_walk_baseline(&inv, &actions, u.len());
        let (kp, ks) = kernel.plan(&src, &dst);
        let (bp, bs) = baseline.plan(&src, &dst);
        let (kp, bp) = (kp.expect("path exists"), bp.expect("path exists"));
        assert_eq!(kp.cost, bp.cost, "both legs find the same optimum");
        assert_eq!(ks.safety_checks, bs.safety_checks, "identical search skeleton");
        println!(
            "{:>5} {:>6} {:>16} {:>16} {:>10} {:>14} {:>10}",
            n,
            kp.cost,
            bs.pred_evals,
            ks.pred_evals,
            format!("{:.1}x", bs.pred_evals as f64 / ks.pred_evals.max(1) as f64),
            ks.safety_checks,
            ks.probed
        );
    }
    println!("(same expansions and safety checks either way — only the per-check cost drops)");
    println!();
    println!("fleet plan cache on disjoint waves (isomorphic sessions share one entry):");
    println!("{:>7} {:>9} {:>6} {:>8} {:>9}", "groups", "sessions", "hits", "misses", "hit rate");
    for groups in [10usize, 50, 100] {
        let r = run_fleet(&FleetScenario::new(groups, disjoint_wave(groups / 2, 2)));
        assert_eq!(r.succeeded(), groups / 2);
        let c = r.cache;
        println!(
            "{:>7} {:>9} {:>6} {:>8} {:>9}",
            groups,
            groups / 2,
            c.hits,
            c.misses,
            format!("{:.0}%", 100.0 * c.hits as f64 / (c.hits + c.misses).max(1) as f64)
        );
    }
    println!("(a restored control plane starts cold: the cache never outlives its incarnation)");
}

fn fec() {
    println!("## Closed-loop FEC adaptation (decision-making + insertion)");
    let report = run_fec_scenario(&FecScenarioConfig::default());
    match report.triggered_at {
        Some(at) => println!("loss monitor fired at {at}"),
        None => println!("loss monitor never fired"),
    }
    if let Some(o) = &report.outcome {
        println!("adaptation: success={} steps={}", o.success, o.steps_committed);
    }
    println!(
        "frame delivery on degraded link: {:.1}% (no FEC) -> {:.1}% (FEC)",
        report.lossy_ratio_before * 100.0,
        report.lossy_ratio_after * 100.0
    );
    println!("packets reconstructed: {}", report.recovered_packets);
}

fn inference() {
    use sada_core::infer::{infer_invariants, CodecCatalog, InferenceConfig};
    use sada_meta::tags;
    println!("## Automatic dependency inference (Section 7)");
    let cs = case_study();
    let u = cs.spec.universe();
    let id = |n: &str| u.id(n).unwrap();
    let mut catalog = CodecCatalog::new();
    catalog
        .producer(id("E1"), tags::DES64)
        .producer(id("E2"), tags::DES128)
        .acceptor(id("D1"), &[tags::DES64])
        .acceptor(id("D2"), &[tags::DES128, tags::DES64])
        .acceptor(id("D3"), &[tags::DES128])
        .acceptor(id("D4"), &[tags::DES64])
        .acceptor(id("D5"), &[tags::DES128]);
    let cfg = InferenceConfig {
        exclusive_groups: vec![vec![id("D1"), id("D2"), id("D3")]],
        one_encoder: true,
    };
    let inferred = infer_invariants(u, cs.spec.model(), &catalog, &cfg);
    println!("inferred invariants:");
    for e in inferred.exprs() {
        println!("  {}", e.display(u));
    }
    let same = enumerate::safe_configs(u, &inferred) == cs.spec.safe_configs();
    println!("safe-configuration set matches Table 1: {}", if same { "YES" } else { "NO" });
}

/// Attaches a ring + counter pair to `bus` and returns the handles; the
/// caller reads them back out after the run.
fn tap(bus: &Bus) -> (Rc<RefCell<RingSink>>, Rc<RefCell<CounterSink>>) {
    let ring = Rc::new(RefCell::new(RingSink::new(1 << 20)));
    let counters = Rc::new(RefCell::new(CounterSink::new()));
    bus.attach(&ring);
    bus.attach(&counters);
    (ring, counters)
}

/// Renders one captured stream: per-phase latency table, layer counts, and
/// the temporal monitor's derived verdicts — all from the same events.
fn render_stream(events: &[Event], counters: &CounterSink) {
    let m = Metrics::from_events(events);
    println!(
        "events: {} (net {} / proto {} / audit {} / plan {}), span {}",
        counters.total,
        counters.net_sent
            + counters.net_delivered
            + counters.net_dropped
            + counters.timers_fired
            + counters.crashes
            + counters.restarts,
        counters.proto,
        counters.audit,
        counters.plan,
        m.span
    );
    println!("  {:<24} {:>12}", "protocol phase", "time");
    for (label, d) in m.phase_rows() {
        println!("  {:<24} {:>12}", label, format!("{d}"));
    }
    println!("  {:<24} {:>12}", "total (non-running)", format!("{}", m.total_phase_time()));
    println!(
        "network:  sent={} delivered={} dropped={} timers={} crashes={} restarts={}",
        m.sent, m.delivered, m.dropped, m.timers_fired, m.crashes, m.restarts
    );
    println!(
        "protocol: steps {}/{} committed, timeouts={} retries={} rollbacks={} rejoins={}",
        m.steps_committed, m.steps_started, m.timeouts, m.retries, m.rollbacks, m.rejoins
    );
    println!(
        "journal:  appends={} manager-restores={} state-queries={} state-reports={}",
        m.journal_appends, m.manager_restores, m.state_queries, m.state_reports
    );
    // Feed the very same stream to the temporal monitor: which components
    // carried segment obligations, and when was adaptation provably safe?
    let mut comp_ixs: BTreeSet<usize> = BTreeSet::new();
    for ev in events {
        if let Payload::Audit(
            AuditEvent::SegmentStart { comp, .. }
            | AuditEvent::SegmentEnd { comp, .. }
            | AuditEvent::SegmentLost { comp, .. },
        ) = &ev.payload
        {
            comp_ixs.insert(comp.index());
        }
    }
    let comps: Vec<CompId> = comp_ixs.into_iter().map(CompId::from_index).collect();
    let derived = sada_tl::audit_bridge::derive_temporal_events(events, &comps);
    let count = |f: fn(&TemporalEvent) -> bool| {
        derived
            .iter()
            .filter(|e| match &e.payload {
                Payload::Temporal(t) => f(t),
                _ => false,
            })
            .count()
    };
    println!(
        "temporal: {} obligations opened, {} discharged, {} safe-point re-entries \
         ({} audit facts, {} monitored components)",
        count(|t| matches!(t, TemporalEvent::ObligationOpened { .. })),
        count(|t| matches!(t, TemporalEvent::ObligationDischarged { .. })),
        count(|t| matches!(t, TemporalEvent::SafePoint { .. })),
        m.audit_events,
        comps.len()
    );
}

fn timeline(seed: Option<u64>) {
    println!("## Timeline — per-phase adaptation latency from the unified event stream");
    if let Some(seed) = seed {
        // Replay a chaos-sweep counterexample: identical plan construction
        // to tests/chaos_sweep.rs, so a seed from a failure dump reproduces
        // the exact faulted run, now with the full trace attached.
        let cs = case_study();
        let opts = sweep_chaos_opts(&cs);
        let intensity = 0.2 + 0.15 * (seed % 5) as f64;
        let plan = chaos(seed, intensity, &opts);
        println!("### chaos replay: seed {seed}, intensity {intensity:.2}");
        print!("{}", plan.to_text());
        let bus = Bus::new();
        let (ring, counters) = tap(&bus);
        let cfg = RunConfig { faults: plan, bus: bus.clone(), ..RunConfig::default() };
        let r = run_adaptation(&cs.spec, &cs.source, &cs.target, &cfg);
        println!(
            "outcome: success={} gave_up={} final={} (safe={})",
            r.outcome.success,
            r.outcome.gave_up,
            r.outcome.final_config.to_bit_string(),
            cs.spec.is_safe(&r.outcome.final_config)
        );
        render_stream(&ring.borrow().events(), &counters.borrow());
        // The manager's decision record, in the same text form the journal
        // codec persists: what a post-mortem (or a restarted incarnation)
        // would have worked from.
        println!("manager journal ({} restore(s) during the run):", r.manager_restores);
        for line in sada_proto::encode_journal(&r.journal).lines() {
            println!("  {line}");
        }
        return;
    }
    // Video case study, clean run vs the pinned crash/recovery run: both
    // tables come from one RingSink capture per run — the same stream the
    // safety auditor and temporal monitor consume.
    let clean = ScenarioConfig::default();
    let handheld = ActorId::from_index(1);
    let crashed = ScenarioConfig {
        faults: FaultPlan::new()
            .crash(handheld, SimTime::from_millis(520))
            .restart(handheld, SimTime::from_millis(690)),
        ..ScenarioConfig::default()
    };
    for (title, cfg) in [
        ("video case study: safe adaptation, no faults", clean),
        ("video case study: hand-held crash at 520ms, restart at 690ms", crashed),
    ] {
        let (ring, counters) = tap(&cfg.bus);
        let report = run_video_scenario(&cfg, Strategy::Safe);
        println!("### {title}");
        let o = report.outcome.as_ref().expect("safe run records an outcome");
        println!(
            "outcome: success={} steps={} audit={} finished_at={}",
            o.success,
            o.steps_committed,
            if report.audit.is_safe() { "SAFE" } else { "UNSAFE" },
            report.finished_at
        );
        render_stream(&ring.borrow().events(), &counters.borrow());
        println!();
    }
    println!(
        "(zero phase time is the point: the case-study MAP is all solo steps taken at packet\n \
         boundaries, so the viewers never notice the adaptation. Replay a chaos counterexample\n \
         with: cargo run -p sada-bench --bin report -- timeline <seed>)"
    );
}

fn fleet(seed: Option<u64>) {
    use sada_fleet::{disjoint_wave, run_fleet, FleetScenario, SessionSpec};
    let seed = seed.unwrap_or(42);
    println!("## Fleet-scale control plane (seed {seed})");

    // 100 groups, ten scope-disjoint sessions: scope-parallel vs serial.
    let mut scenario = FleetScenario::new(100, disjoint_wave(10, 10));
    scenario.seed = seed;
    let parallel = run_fleet(&scenario);
    scenario.serialize = true;
    let serial = run_fleet(&scenario);
    println!("100 groups (200 agents), 10 disjoint sessions x 10 groups each:");
    println!(
        "{:<16} {:>9} {:>12} {:>14} {:>14}",
        "admission", "success", "peak conc.", "makespan", "sessions/s"
    );
    for (name, r) in [("scope-parallel", &parallel), ("serial", &serial)] {
        println!(
            "{:<16} {:>9} {:>12} {:>14} {:>14.1}",
            name,
            format!("{}/10", r.succeeded()),
            r.max_concurrent,
            format!("{:.1}ms", r.makespan_us as f64 / 1000.0),
            r.succeeded() as f64 / (r.makespan_us as f64 / 1e6)
        );
    }
    println!(
        "speedup: {:.2}x (virtual time)",
        serial.makespan_us as f64 / parallel.makespan_us as f64
    );
    println!(
        "plan cache (scope-parallel run): {} hits / {} misses / {} evictions ({:.0}% hit rate)",
        parallel.cache.hits,
        parallel.cache.misses,
        parallel.cache.evictions,
        100.0 * parallel.cache.hits as f64
            / (parallel.cache.hits + parallel.cache.misses).max(1) as f64
    );
    println!("per-session latency (scope-parallel):");
    println!("{:>8} {:>12} {:>12} {:>12}", "session", "queued", "exec", "total");
    for r in &parallel.results {
        let (sub, adm, done) =
            (r.submitted_at.unwrap_or(0), r.admitted_at.unwrap_or(0), r.completed_at.unwrap_or(0));
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            r.id,
            format!("{:.1}ms", (adm - sub) as f64 / 1000.0),
            format!("{:.1}ms", (done - adm) as f64 / 1000.0),
            format!("{:.1}ms", (done - sub) as f64 / 1000.0)
        );
    }

    // Contention + crash leg: two overlapping sessions, control plane dies
    // mid-barrier and rebuilds both from its journal.
    let mut chaos_scenario = FleetScenario::new(
        3,
        vec![
            SessionSpec {
                id: 1,
                flips: vec![(0, true), (1, true)],
                priority: 0,
                submit_at: SimDuration::ZERO,
                cancel_at: None,
            },
            SessionSpec {
                id: 2,
                flips: vec![(1, false), (2, true)],
                priority: 0,
                submit_at: SimDuration::from_millis(1),
                cancel_at: None,
            },
        ],
    );
    chaos_scenario.seed = seed;
    chaos_scenario.crash_control = Some((SimTime::from_millis(6), SimTime::from_millis(10)));
    let r = run_fleet(&chaos_scenario);
    println!(
        "crash/restore leg: restores={} success={}/2 final={} (overlap serialized: {})",
        r.restores,
        r.succeeded(),
        r.final_config,
        r.session(1).and_then(|a| a.completed_at) <= r.session(2).and_then(|b| b.admitted_at)
    );
    println!("journal ({} records):", r.journal_text.lines().count());
    for line in r.journal_text.lines() {
        println!("  {line}");
    }
}

fn overload(seed: Option<u64>) {
    use sada_fleet::{measure_capacity, run_overload, OverloadConfig};
    let seed = seed.unwrap_or(42);
    const GROUPS: usize = 12;
    println!(
        "## Sustained overload — admission control vs the always-admit baseline (seed {seed})"
    );
    let capacity = measure_capacity(GROUPS, seed);
    println!(
        "healthy calibrated capacity: {capacity:.1} group adaptations/s over {GROUPS} groups \
         (goodput floor for the protected plane: {:.1}/s)",
        0.8 * capacity
    );
    println!(
        "degraded fleet: one group 400x slow, one agent crash-looping; Poisson arrivals \
         for 1s of virtual time"
    );
    println!(
        "{:<11} {:>5} {:>8} {:>8} {:>11} {:>6} {:>9} {:>6} {:>11} {:>11}",
        "config",
        "load",
        "offered",
        "done",
        "goodput/s",
        "shed",
        "rejected",
        "trips",
        "p50 admit",
        "p99 admit"
    );
    for load in [2u32, 4] {
        for (name, cfg) in [
            ("baseline", OverloadConfig::degraded(GROUPS, load, seed)),
            ("protected", OverloadConfig::protected(GROUPS, load, seed)),
        ] {
            let r = run_overload(&cfg, capacity);
            println!(
                "{:<11} {:>4}x {:>8} {:>8} {:>11.1} {:>6} {:>9} {:>6} {:>11} {:>11}",
                name,
                load,
                r.offered,
                r.succeeded,
                r.goodput_per_sec,
                r.shed,
                r.rejected,
                r.breaker_trips,
                format!("{:.1}ms", r.p50_admission_us as f64 / 1000.0),
                format!("{:.1}ms", r.p99_admission_us as f64 / 1000.0),
            );
        }
    }
    println!(
        "(baseline = always-admit + fixed retry ladder: slow-scope sessions convoy every \
         shared lock and goodput collapses. protected = breakers + bulkhead + RTT-adaptive \
         timeouts: load is shed deterministically and the healthy groups keep committing.)"
    );
}

fn shard(seed: Option<u64>) {
    use sada_fleet::{
        run_fleet_sharded, FabricFaultPlan, FleetScenario, SessionSpec, ShardScenario,
    };
    let seed = seed.unwrap_or(42);
    const GROUPS: usize = 16;
    const REGIONS: usize = 4;
    println!("## Sharded control plane — per-region threads + deterministic fabric (seed {seed})");

    // Locals on every group plus one straddler per region boundary: the
    // fabric carries exactly the lock-escalation handshakes.
    let mut sessions: Vec<SessionSpec> = (0..GROUPS)
        .map(|g| SessionSpec {
            id: g as u64 + 1,
            flips: vec![(g, true)],
            priority: (g % 4) as u8,
            submit_at: SimDuration::from_micros(500 * g as u64),
            cancel_at: None,
        })
        .collect();
    for r in 0..REGIONS - 1 {
        let boundary = (r + 1) * GROUPS / REGIONS;
        sessions.push(SessionSpec {
            id: 100 + r as u64,
            flips: vec![(boundary - 1, false), (boundary, false)],
            priority: 0,
            submit_at: SimDuration::from_millis(40 + r as u64),
            cancel_at: None,
        });
    }
    let mut fleet = FleetScenario::new(GROUPS, sessions);
    fleet.seed = seed;
    let scn = ShardScenario::new(fleet, REGIONS);
    let single = run_fleet_sharded(&scn, 1);
    let multi = run_fleet_sharded(&scn, REGIONS);

    println!(
        "{GROUPS} groups over {REGIONS} regions, {} sessions ({} straddling a region boundary):",
        multi.results.len(),
        REGIONS - 1
    );
    println!(
        "{:<9} {:>7} {:>9} {:>6} {:>8} {:>10} {:>9} {:>11} {:>12}",
        "shard",
        "kind",
        "sessions",
        "done",
        "events",
        "delivered",
        "restores",
        "cache h/m",
        "sessions/s"
    );
    let wall_s = multi.wall.as_secs_f64().max(1e-9);
    for s in &multi.per_shard {
        println!(
            "{:<9} {:>7} {:>9} {:>6} {:>8} {:>10} {:>9} {:>11} {:>12.1}",
            s.shard,
            if s.is_global { "global" } else { "region" },
            s.sessions,
            s.completed,
            s.events,
            s.delivered,
            s.restores,
            format!("{}/{}", s.cache_hits, s.cache_misses),
            s.completed as f64 / wall_s,
        );
    }
    println!(
        "cross-shard fabric: {} messages over {} active edges ({} promise updates observed)",
        multi.fabric.messages,
        multi.fabric.per_edge.len(),
        multi.fabric.promise_updates
    );
    for &(src, dst, n) in &multi.fabric.per_edge {
        println!("  shard {src} -> shard {dst}: {n} message(s)");
    }
    println!(
        "outcome: {}/{} committed, final={}, makespan={:.1}ms, wall={:.1}ms on {} thread(s)",
        multi.succeeded(),
        multi.results.len(),
        multi.final_config,
        multi.makespan_us as f64 / 1000.0,
        multi.wall.as_secs_f64() * 1000.0,
        REGIONS,
    );
    println!(
        "determinism: 1-thread vs {REGIONS}-thread fingerprints {} ({:#018x})",
        if single.fingerprint == multi.fingerprint { "MATCH" } else { "DIVERGE" },
        multi.fingerprint,
    );
    println!(
        "(every region owns its own simulator, control actor, lock domain, and plan cache on a \
         real OS thread; only lock escalation for straddling scopes crosses the fabric, and the \
         conservative virtual-clock protocol makes thread count invisible to results.)"
    );

    // Chaos leg: the same fleet under a lossy fabric plus a global-tier
    // crash mid-handshake. The retransmission ladder, idempotent
    // grant/release application, and journal replay must land the clean
    // run's outcomes — the fault counters below show the machinery working.
    let mut chaos = scn.clone();
    chaos.fabric_faults = FabricFaultPlan {
        seed,
        drop_per_mille: 200,
        dup_per_mille: 200,
        delay_per_mille: 200,
        null_drop_per_mille: 100,
        ..FabricFaultPlan::default()
    };
    chaos.crash_global = Some((SimTime::from_millis(41), SimTime::from_millis(400)));
    let faulted = run_fleet_sharded(&chaos, REGIONS);
    println!();
    println!(
        "fabric chaos (drop/dup/delay 200‰ each, null-drop 100‰, global tier down 41–400 ms):"
    );
    println!(
        "  faults injected: {} dropped, {} duplicated, {} delayed, {} null advances suppressed",
        faulted.fabric.dropped,
        faulted.fabric.duplicated,
        faulted.fabric.delayed,
        faulted.fabric.nulls_dropped,
    );
    println!(
        "  recovery: {} retransmissions, {} lease reclaims, {} straddlers abandoned, \
         {} releases orphaned, {} control-plane restore(s)",
        faulted.retransmits,
        faulted.lease_reclaims,
        faulted.abandoned,
        faulted.orphaned_releases,
        faulted.restores,
    );
    let chaos_single = run_fleet_sharded(&chaos, 1);
    println!(
        "  convergence: outcomes {} the lossless run ({}/{} committed, final={}); \
         1-thread vs {REGIONS}-thread fingerprints {}",
        if faulted.final_config == multi.final_config && faulted.succeeded() == multi.succeeded() {
            "MATCH"
        } else {
            "DIVERGE from"
        },
        faulted.succeeded(),
        faulted.results.len(),
        faulted.final_config,
        if faulted.fingerprint == chaos_single.fingerprint { "MATCH" } else { "DIVERGE" },
    );
    println!(
        "  global journal: {} record(s) — the durable WAL a restored tier replays",
        faulted.global_journal.lines().count(),
    );
}

fn scale(seed: Option<u64>) {
    use sada_fleet::{run_fleet, run_fleet_sharded, FleetScenario, SessionSpec, ShardScenario};
    let seed = seed.unwrap_or(42);
    const REGIONS: usize = 8;
    println!("## Scale hot path — strided storms at 1k/10k groups (seed {seed})");
    println!(
        "(struct-of-arrays agent arena, batched bus delivery, hierarchical timer wheel; \
         the full 100k sweep lives in BENCH_scale.json via `cargo bench --bench bench_scale`)"
    );
    println!(
        "{:>7} {:>7} {:>9} {:>11} {:>13} {:>13} {:>13} {:>13}",
        "groups",
        "agents",
        "sessions",
        "flat wall",
        "sessions/s",
        "events/s",
        "shard 1t",
        "shard 8t"
    );
    for groups in [1_000usize, 10_000] {
        let sessions = (2 * groups).min(2048);
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| SessionSpec {
                id: i as u64 + 1,
                flips: vec![(i * groups / sessions, i % 2 == 0)],
                priority: (i % 4) as u8,
                submit_at: SimDuration::from_micros(37 * i as u64),
                cancel_at: None,
            })
            .collect();
        let mut fleet = FleetScenario::new(groups, specs);
        fleet.seed = seed;
        fleet.time_budget = SimDuration::from_secs(10);
        fleet.render_journal = false;
        let t = std::time::Instant::now();
        let flat = run_fleet(&fleet);
        let flat_wall = t.elapsed();
        let ok = flat.results.iter().filter(|s| s.success).count();
        assert_eq!(ok, sessions, "strided storm commits every session");
        let scn = ShardScenario::new(fleet, REGIONS);
        let t = std::time::Instant::now();
        let single = run_fleet_sharded(&scn, 1);
        let single_wall = t.elapsed();
        let t = std::time::Instant::now();
        let multi = run_fleet_sharded(&scn, 8);
        let multi_wall = t.elapsed();
        assert_eq!(single.fingerprint, multi.fingerprint, "thread-invariance at {groups} groups");
        assert_eq!(single.final_config, multi.final_config, "same destination at {groups} groups");
        assert_eq!(single.succeeded(), sessions, "sharded storm commits every session");
        let loaded = single.per_shard.iter().filter(|s| !s.is_global && s.sessions > 0).count();
        assert_eq!(loaded, REGIONS, "the stride must load every region");
        let wall_s = flat_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>7} {:>7} {:>9} {:>11} {:>13.1} {:>13.1} {:>13} {:>13}",
            groups,
            2 * groups,
            sessions,
            format!("{:.1}ms", wall_s * 1000.0),
            ok as f64 / wall_s,
            flat.events.len() as f64 / wall_s,
            format!("{:.1}ms", single_wall.as_secs_f64() * 1000.0),
            format!("{:.1}ms", multi_wall.as_secs_f64() * 1000.0),
        );
    }
    println!(
        "(fingerprints asserted identical at 1 and 8 worker threads on every row; journal text \
         rendering is off — the durable journal, events, and fingerprints are unaffected)"
    );
}

fn scenario(seed: Option<u64>) {
    use sada_fleet::{run_fleet_sharded, Objective, ShardScenario};
    use sada_scenario::{encode_scenario, energy_showcase, generate, ScenarioConfig as GenConfig};
    let base = seed.unwrap_or(1);
    println!(
        "## Generated domains — seeded serverless & IaaS universes (seeds {base}..{})",
        base + 2
    );
    println!(
        "{:<12} {:>5} {:>9} {:>6} {:>8} {:>9} {:>7} {:>10} {:>11} {:>12}",
        "domain",
        "seed",
        "clusters",
        "comps",
        "actions",
        "sessions",
        "done",
        "straddle",
        "cache h/m",
        "makespan"
    );
    for mk in [GenConfig::serverless, GenConfig::iaas, GenConfig::iaas_energy]
        as [fn(u64) -> GenConfig; 3]
    {
        for seed in base..base + 3 {
            let cfg = mk(seed);
            let scenario = generate(&cfg);
            let regions = scenario.spec.clusters.len().clamp(1, 4);
            let scn = ShardScenario::new(scenario.fleet(), regions);
            let single = run_fleet_sharded(&scn, 1);
            let multi = run_fleet_sharded(&scn, 4);
            assert_eq!(single.fingerprint, multi.fingerprint, "thread-invariance");
            let (hits, misses) = multi
                .per_shard
                .iter()
                .fold((0u64, 0u64), |(h, m), s| (h + s.cache_hits, m + s.cache_misses));
            let straddlers = scenario.sessions.iter().filter(|s| s.flips.len() == 2).count();
            let label = format!(
                "{}{}",
                cfg.domain.name(),
                if cfg.objective == Objective::EnergyWatts { "+watts" } else { "" }
            );
            println!(
                "{:<12} {:>5} {:>9} {:>6} {:>8} {:>9} {:>7} {:>10} {:>11} {:>12}",
                label,
                seed,
                scenario.spec.clusters.len(),
                scenario.spec.comps.len(),
                scenario.spec.actions.len(),
                scenario.sessions.len(),
                format!("{}/{}", multi.succeeded(), scenario.sessions.len()),
                straddlers,
                format!("{hits}/{misses}"),
                format!("{:.1}ms", multi.makespan_us as f64 / 1000.0),
            );
            if seed == base {
                let text = encode_scenario(&scenario);
                println!(
                    "  (canonical text: {} lines / {} bytes — replay with \
                     `report -- scenario {seed}`)",
                    text.lines().count(),
                    text.len()
                );
            }
        }
    }
    println!();
    println!("energy objective showcase (same world, both cost columns):");
    for objective in [Objective::LatencyMs, Objective::EnergyWatts] {
        let w = sada_fleet::FleetWorld::from_spec(energy_showcase(objective));
        let init = w.initial_config();
        let goal = w.target_for(&init, &[(0, true)]);
        let (path, _) = lazy::plan_with_stats(&w.inv, &w.actions, &init, &goal);
        let path = path.expect("showcase goal reachable");
        let route: Vec<&str> =
            path.steps.iter().map(|s| w.actions[s.action.index()].name()).collect();
        println!(
            "  {:<14} {} step(s), cost {:>3} — {}",
            objective.name(),
            path.steps.len(),
            path.cost,
            route.join(" -> ")
        );
    }
    println!(
        "(the watt-cheapest route stages through the relay host while the ms-cheapest route\n \
         migrates directly: MAP optimizes whichever column the world's objective selects.\n \
         All universes above are validated at generation: safe boot configuration, confined\n \
         collaborative sets, normalizable scopes, goals reachable in both directions.)"
    );
}

fn main() {
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run = |name: &str| section == "all" || section == name;
    if run("table1") {
        table1();
        println!();
    }
    if run("table2") {
        table2();
        println!();
    }
    if run("fig1") {
        fig1();
        println!();
    }
    if run("fig2") {
        fig2();
        println!();
    }
    if run("fig4") {
        fig4();
        println!();
    }
    if run("map") {
        map();
        println!();
    }
    if run("failures") {
        failures();
        println!();
    }
    if run("crashes") {
        crashes();
        println!();
    }
    if run("baselines") {
        baselines();
        println!();
    }
    if run("scaling") {
        scaling();
        println!();
    }
    if run("planning") {
        planning();
        println!();
    }
    if run("fec") {
        fec();
        println!();
    }
    if run("inference") {
        inference();
        println!();
    }
    if run("timeline") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        timeline(seed);
        println!();
    }
    if run("fleet") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        fleet(seed);
        println!();
    }
    if run("overload") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        overload(seed);
        println!();
    }
    if run("shard") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        shard(seed);
        println!();
    }
    if run("scenario") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        scenario(seed);
        println!();
    }
    if run("scale") {
        let seed = std::env::args().nth(2).and_then(|s| s.parse().ok());
        scale(seed);
        println!();
    }
}
