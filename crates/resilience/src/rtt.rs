//! Jacobson/Karels round-trip estimation over virtual time.

use sada_obs::SimDuration;

/// Smoothed RTT + variance over observed request→ack latency, yielding a
/// retransmission timeout (`RTO = srtt + 4·rttvar`, clamped).
///
/// Integer microsecond arithmetic with the classic gains (α = 1/8,
/// β = 1/4) so replays are exact. Hosts sample from the *first* send of a
/// phase message to the *first* reply from that agent (Karn's rule: a
/// retransmitted exchange keeps its original send time, which can only
/// overestimate — the safe direction for a timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttEstimator {
    srtt_us: u64,
    rttvar_us: u64,
    samples: u64,
    /// Lower clamp for the RTO (timer granularity guard).
    floor: SimDuration,
    /// Upper clamp for the RTO (a stalled agent must not push deadlines to
    /// infinity).
    ceiling: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

impl RttEstimator {
    pub fn new() -> Self {
        RttEstimator {
            srtt_us: 0,
            rttvar_us: 0,
            samples: 0,
            floor: SimDuration::from_millis(1),
            ceiling: SimDuration::from_secs(10),
        }
    }

    /// Feed one observed round-trip latency sample.
    pub fn observe(&mut self, sample: SimDuration) {
        let s = sample.as_micros();
        if self.samples == 0 {
            // RFC 6298 initialization: srtt = R, rttvar = R/2.
            self.srtt_us = s;
            self.rttvar_us = s / 2;
        } else {
            let err = self.srtt_us.abs_diff(s);
            // rttvar = 3/4·rttvar + 1/4·|srtt − s|
            self.rttvar_us = self.rttvar_us - self.rttvar_us / 4 + err / 4;
            // srtt = 7/8·srtt + 1/8·s
            self.srtt_us = self.srtt_us - self.srtt_us / 8 + s / 8;
        }
        self.samples = self.samples.saturating_add(1);
    }

    /// Current retransmission timeout, or `None` before the first sample.
    pub fn rto(&self) -> Option<SimDuration> {
        if self.samples == 0 {
            return None;
        }
        let raw = self.srtt_us.saturating_add(4 * self.rttvar_us.max(1));
        Some(SimDuration::from_micros(raw.clamp(self.floor.as_micros(), self.ceiling.as_micros())))
    }

    /// Current smoothed RTT, or `None` before the first sample.
    pub fn srtt(&self) -> Option<SimDuration> {
        (self.samples > 0).then(|| SimDuration::from_micros(self.srtt_us))
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rto_before_first_sample() {
        assert_eq!(RttEstimator::new().rto(), None);
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = RttEstimator::new();
        e.observe(SimDuration::from_millis(10));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(10)));
        // RTO = 10ms + 4·5ms = 30ms.
        assert_eq!(e.rto(), Some(SimDuration::from_millis(30)));
    }

    #[test]
    fn steady_samples_converge_and_shrink_variance() {
        let mut e = RttEstimator::new();
        for _ in 0..64 {
            e.observe(SimDuration::from_millis(10));
        }
        let srtt = e.srtt().unwrap().as_micros();
        assert!((9_000..=11_000).contains(&srtt), "srtt={srtt}");
        let rto = e.rto().unwrap().as_micros();
        assert!(rto < 15_000, "variance decays on steady input, rto={rto}");
    }

    #[test]
    fn slow_outlier_raises_the_timeout_quickly() {
        let mut e = RttEstimator::new();
        for _ in 0..8 {
            e.observe(SimDuration::from_millis(10));
        }
        e.observe(SimDuration::from_millis(2_500));
        let rto = e.rto().unwrap();
        assert!(
            rto >= SimDuration::from_millis(600),
            "one 2.5s sample must push the RTO far above the old srtt, got {rto:?}"
        );
    }

    #[test]
    fn rto_is_clamped_to_the_ceiling() {
        let mut e = RttEstimator::new();
        e.observe(SimDuration::from_secs(60));
        assert_eq!(e.rto(), Some(SimDuration::from_secs(10)));
    }
}
