//! Retransmission deadline policy: the fixed exponential ladder and its
//! RTT-adaptive variant share one shape — `base · 2^retries`, capped, plus
//! seeded jitter — and differ only in where the base comes from.

use sada_obs::SimDuration;

/// A splitmix64-style mix: a deterministic pseudo-random value in
/// `[0, span)` derived from a seed and a caller-chosen salt (the protocol
/// manager salts with its unique, monotonic timer token). Runs stay a pure
/// function of their inputs.
pub fn jitter_us(seed: u64, salt: u64, span: u64) -> u64 {
    if span == 0 {
        return 0;
    }
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % span
}

/// How the retransmission base interval is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryMode {
    /// The historical fixed ladder: every phase starts from `base`
    /// regardless of what the network looks like.
    FixedLadder,
    /// Start from the caller-supplied RTT hint (an [`crate::RttEstimator`]
    /// RTO) when one exists, falling back to `base` until the estimator has
    /// its first sample. A hint lifts the cap with it, so a genuinely slow
    /// agent gets a deadline it can actually meet.
    Adaptive,
}

/// Retransmission schedule shared by the protocol manager, the fleet
/// control plane, and anything else that retries over the wire.
///
/// `deadline` reproduces the manager's original timer arithmetic exactly in
/// [`RetryMode::FixedLadder`] mode: the first timer of a phase
/// (`retries == 0`) is exactly `base`, retried timers double up to `cap`
/// and add a deterministic seeded jitter of up to a quarter interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base interval before the first retransmission of a phase.
    pub base: SimDuration,
    /// Ceiling for the backed-off interval. Values below `base` are treated
    /// as `base` (no backoff). In adaptive mode an RTT hint above the cap
    /// lifts the cap to the hint.
    pub cap: SimDuration,
    /// Seed for the deterministic retransmission jitter.
    pub jitter_seed: u64,
    /// Base selection strategy.
    pub mode: RetryMode,
    /// Lower bound applied to adaptive hints so a burst of fast acks cannot
    /// drive the deadline below what the scheduler can meaningfully arm.
    pub floor: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(200),
            cap: SimDuration::from_millis(800),
            jitter_seed: 0x5ADA,
            mode: RetryMode::FixedLadder,
            floor: SimDuration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The default policy flipped to RTT-adaptive base selection.
    pub fn adaptive() -> Self {
        RetryPolicy { mode: RetryMode::Adaptive, ..RetryPolicy::default() }
    }

    /// Deadline for the `retries`-th (0-based) transmission of a phase,
    /// salted by a unique token so jitter never repeats across timers.
    ///
    /// `hint` is the current RTT-derived timeout for the slowest participant
    /// (ignored in fixed mode, and until the first sample in adaptive mode).
    pub fn deadline(&self, retries: u32, salt: u64, hint: Option<SimDuration>) -> SimDuration {
        let base = match (self.mode, hint) {
            (RetryMode::Adaptive, Some(h)) => h.as_micros().max(self.floor.as_micros()),
            _ => self.base.as_micros(),
        };
        let cap = self.cap.as_micros().max(base);
        let mut backed = base.saturating_mul(1u64 << retries.min(10)).min(cap);
        if retries > 0 {
            backed += jitter_us(self.jitter_seed, salt, backed / 4 + 1);
        }
        SimDuration::from_micros(backed)
    }
}

/// Re-announcement schedule for agents that lost their manager (crash,
/// partition, restart): how often to re-send `hello` and how many attempts
/// before giving up. Extracted from the scripted agent's hardcoded rejoin
/// ladder so hosts can tune it alongside [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReannouncePolicy {
    /// Interval between re-announcements.
    pub period: SimDuration,
    /// Total announcements before the agent stops trying.
    pub budget: u32,
}

impl Default for ReannouncePolicy {
    fn default() -> Self {
        ReannouncePolicy { period: SimDuration::from_millis(100), budget: 12 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original `fresh_timer` arithmetic, kept verbatim as an oracle.
    fn legacy(retries: u32, salt: u64) -> u64 {
        let base = SimDuration::from_millis(200).as_micros();
        let cap = SimDuration::from_millis(800).as_micros().max(base);
        let mut backed = base.saturating_mul(1u64 << retries.min(10)).min(cap);
        if retries > 0 {
            backed += jitter_us(0x5ADA, salt, backed / 4 + 1);
        }
        backed
    }

    #[test]
    fn fixed_ladder_is_bit_identical_to_the_legacy_arithmetic() {
        let p = RetryPolicy::default();
        for retries in 0..16 {
            for salt in [1u64 << 16, (7 << 16) | 3, 0xDEAD_BEEF, u64::MAX] {
                assert_eq!(
                    p.deadline(retries, salt, None).as_micros(),
                    legacy(retries, salt),
                    "retries={retries} salt={salt}"
                );
            }
        }
    }

    #[test]
    fn first_timer_of_a_phase_is_exactly_base() {
        let p = RetryPolicy::default();
        assert_eq!(p.deadline(0, 99, None), SimDuration::from_millis(200));
        // Adaptive with no hint behaves like the fixed ladder.
        let a = RetryPolicy::adaptive();
        assert_eq!(a.deadline(0, 99, None), SimDuration::from_millis(200));
    }

    #[test]
    fn adaptive_hint_replaces_the_base_and_lifts_the_cap() {
        let p = RetryPolicy::adaptive();
        let hint = SimDuration::from_millis(2_500);
        assert_eq!(p.deadline(0, 1, Some(hint)), hint);
        // Doubling still applies, uncapped by the (lower) fixed cap but
        // capped by the lifted cap = hint.
        assert_eq!(
            p.deadline(1, 0, Some(hint)).as_micros(),
            hint.as_micros() + jitter_us(p.jitter_seed, 0, hint.as_micros() / 4 + 1)
        );
        // A fast hint is clamped up to the floor.
        let fast = SimDuration::from_micros(10);
        assert_eq!(p.deadline(0, 1, Some(fast)), p.floor);
    }

    #[test]
    fn fixed_mode_ignores_hints() {
        let p = RetryPolicy::default();
        let hint = SimDuration::from_millis(5_000);
        assert_eq!(p.deadline(0, 1, Some(hint)), SimDuration::from_millis(200));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for salt in 0..64u64 {
            let a = jitter_us(0x5ADA, salt, 1000);
            assert_eq!(a, jitter_us(0x5ADA, salt, 1000));
            assert!(a < 1000);
        }
        assert_eq!(jitter_us(1, 2, 0), 0);
    }
}
