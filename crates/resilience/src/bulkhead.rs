//! Bulkhead admission control: bounded in-flight work, bounded waiting
//! population, deterministic load shedding.

/// Admission limits for a control plane. The default is unlimited on both
/// axes, which reproduces the historical always-admit behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkheadConfig {
    /// Maximum sessions actively executing their adaptation protocol.
    /// Lock-release grant bursts may transiently exceed this by the grant
    /// count; the bound is enforced at every admission decision.
    pub max_in_flight: usize,
    /// Maximum sessions waiting (scope-lock queue plus admission gate)
    /// before the plane sheds load instead of queueing forever.
    pub max_queued: usize,
}

impl Default for BulkheadConfig {
    fn default() -> Self {
        BulkheadConfig::unlimited()
    }
}

/// What to do with a session that wants in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run it now.
    Admit,
    /// Park it (scope busy or in-flight cap reached) — capacity exists in
    /// the waiting room.
    Enqueue,
    /// The waiting room is full: shed the least valuable waiter.
    Shed,
}

impl BulkheadConfig {
    /// No limits: every session is admitted or queued, never shed.
    pub fn unlimited() -> Self {
        BulkheadConfig { max_in_flight: usize::MAX, max_queued: usize::MAX }
    }

    /// True when either bound is active.
    pub fn is_limiting(&self) -> bool {
        self.max_in_flight != usize::MAX || self.max_queued != usize::MAX
    }

    /// Admission decision given the current populations. `scope_free` is
    /// whether the session's scope locks are available right now.
    pub fn decide(&self, in_flight: usize, queued: usize, scope_free: bool) -> Admission {
        if scope_free && in_flight < self.max_in_flight {
            Admission::Admit
        } else if queued < self.max_queued {
            Admission::Enqueue
        } else {
            Admission::Shed
        }
    }
}

/// Pick the shed victim from the waiting population (including the
/// newcomer): lowest priority first, oldest (smallest enqueue sequence)
/// among ties, session id as the final deterministic tie-break.
///
/// Entries are `(session, priority, enqueue_seq)`.
pub fn shed_victim(waiting: &[(u64, u8, u64)]) -> Option<u64> {
    waiting.iter().min_by_key(|&&(sid, prio, seq)| (prio, seq, sid)).map(|&(sid, _, _)| sid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_sheds() {
        let b = BulkheadConfig::unlimited();
        assert!(!b.is_limiting());
        assert_eq!(b.decide(1 << 20, 1 << 20, true), Admission::Admit);
        assert_eq!(b.decide(1 << 20, 1 << 20, false), Admission::Enqueue);
    }

    #[test]
    fn bounds_gate_admission_then_queueing() {
        let b = BulkheadConfig { max_in_flight: 2, max_queued: 3 };
        assert!(b.is_limiting());
        assert_eq!(b.decide(1, 0, true), Admission::Admit);
        // Scope busy → queue even with in-flight room.
        assert_eq!(b.decide(1, 0, false), Admission::Enqueue);
        // In-flight cap reached → queue even with the scope free.
        assert_eq!(b.decide(2, 0, true), Admission::Enqueue);
        // Waiting room full → shed.
        assert_eq!(b.decide(2, 3, true), Admission::Shed);
    }

    #[test]
    fn victim_is_lowest_priority_then_oldest() {
        let waiting = vec![(10, 2, 5), (11, 0, 9), (12, 0, 4), (13, 1, 1)];
        assert_eq!(shed_victim(&waiting), Some(12), "priority 0, oldest seq");
        assert_eq!(shed_victim(&[]), None);
    }
}
