//! Per-agent circuit breaker: closed / open / half-open with seeded probing.

use crate::retry::jitter_us;
use sada_obs::{SimDuration, SimTime};

/// Breaker tuning. Defaults trip after 4 consecutive failures, hold open
/// for 400 ms, and double that hold (capped at 6.4 s) every time a
/// half-open probe fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Initial open hold before the first half-open probe.
    pub cooldown: SimDuration,
    /// Ceiling for the doubled cooldown.
    pub cooldown_cap: SimDuration,
    /// Seed for the probe-time jitter: a fleet of breakers tripped by the
    /// same outage must not all probe in the same instant.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            cooldown: SimDuration::from_millis(400),
            cooldown_cap: SimDuration::from_millis(6_400),
            seed: 0x5ADA_B12E,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Traffic suppressed until the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe is in flight.
    HalfOpen,
}

/// State-machine transition surfaced to the host so it can emit a typed
/// observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed→Open (threshold hit) or HalfOpen→Open (probe failed).
    Opened { cooldown: SimDuration },
    /// Open→HalfOpen: the send being gated right now is the probe.
    Probing,
    /// Open/HalfOpen→Closed: the agent answered.
    Closed,
}

/// Deterministic circuit breaker driven entirely by caller-passed virtual
/// time. The host reports `on_failure` when a phase times out against the
/// agent, `on_success` when any message arrives from it, and gates every
/// wire send through `allow_send`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Times the breaker has opened (jitter salt + diagnostics).
    trips: u64,
    /// Current open hold (doubles on failed probes, resets on close).
    cooldown_us: u64,
    /// When the next half-open probe may be sent.
    reopen_at: SimTime,
    /// Start of the current open episode (spans failed probes).
    open_since: Option<SimTime>,
    /// Accumulated open time across finished episodes.
    open_total_us: u64,
    /// Sends refused while open (diagnostics).
    suppressed: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            cooldown_us: config.cooldown.as_micros(),
            reopen_at: SimTime::ZERO,
            open_since: None,
            open_total_us: 0,
            suppressed: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Current open hold (the value the next trip will wait, before jitter).
    pub fn cooldown(&self) -> SimDuration {
        SimDuration::from_micros(self.cooldown_us)
    }

    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total time spent open (including a still-running episode up to `now`).
    pub fn open_time_us(&self, now: SimTime) -> u64 {
        let running =
            self.open_since.map(|s| now.as_micros().saturating_sub(s.as_micros())).unwrap_or(0);
        self.open_total_us + running
    }

    fn trip(&mut self, now: SimTime) -> BreakerTransition {
        if self.state == BreakerState::HalfOpen {
            // Probe failed: reopen with doubled cooldown, capped.
            self.cooldown_us =
                (self.cooldown_us.saturating_mul(2)).min(self.config.cooldown_cap.as_micros());
        } else {
            self.cooldown_us = self.config.cooldown.as_micros();
            self.open_since = Some(now);
        }
        self.trips += 1;
        let jitter = jitter_us(self.config.seed, self.trips, self.cooldown_us / 4 + 1);
        self.reopen_at = now + SimDuration::from_micros(self.cooldown_us + jitter);
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        BreakerTransition::Opened { cooldown: SimDuration::from_micros(self.cooldown_us) }
    }

    /// The agent failed to answer a phase within its deadline.
    pub fn on_failure(&mut self, now: SimTime) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                (self.consecutive_failures >= self.config.failure_threshold).then(|| self.trip(now))
            }
            BreakerState::HalfOpen => Some(self.trip(now)),
            // Already open: the failure is old news.
            BreakerState::Open => None,
        }
    }

    /// Any message arrived from the agent: it is alive.
    pub fn on_success(&mut self, now: SimTime) -> Option<BreakerTransition> {
        self.consecutive_failures = 0;
        match self.state {
            BreakerState::Closed => None,
            BreakerState::Open | BreakerState::HalfOpen => {
                if let Some(since) = self.open_since.take() {
                    self.open_total_us += now.as_micros().saturating_sub(since.as_micros());
                }
                self.state = BreakerState::Closed;
                self.cooldown_us = self.config.cooldown.as_micros();
                Some(BreakerTransition::Closed)
            }
        }
    }

    /// Read-only admission query: the breaker is open and its hold has not
    /// elapsed, so work routed at the agent would only hang on suppressed
    /// sends. Half-open does *not* block — the in-flight probe decides, and
    /// refusing admission then could strand the breaker with no session
    /// left to report the probe's outcome.
    pub fn blocks(&self, now: SimTime) -> bool {
        self.state == BreakerState::Open && now < self.reopen_at
    }

    /// Gate a wire send. Returns whether the message may go out, plus a
    /// transition if the gate state changed (Open→HalfOpen probe).
    pub fn allow_send(&mut self, now: SimTime) -> (bool, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open if now >= self.reopen_at => {
                self.state = BreakerState::HalfOpen;
                (true, Some(BreakerTransition::Probing))
            }
            BreakerState::Open => {
                self.suppressed += 1;
                (false, None)
            }
            // One probe is already in flight; hold everything else.
            BreakerState::HalfOpen => {
                self.suppressed += 1;
                (false, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn trips_after_threshold_and_suppresses_sends() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for i in 0..3 {
            assert_eq!(b.on_failure(t(i)), None);
        }
        let tr = b.on_failure(t(3)).expect("fourth consecutive failure trips");
        assert!(matches!(tr, BreakerTransition::Opened { .. }));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.blocks(t(4)), "open breaker blocks admission during its hold");
        assert!(!b.blocks(t(4 + 400 + 101)), "hold elapsed: admission may probe");
        assert!(!b.allow_send(t(4)).0, "open breaker refuses sends");
        assert_eq!(b.suppressed(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..3 {
            b.on_failure(t(0));
        }
        b.on_success(t(1));
        for i in 0..3 {
            assert_eq!(b.on_failure(t(2 + i)), None, "count restarted");
        }
    }

    #[test]
    fn probe_failure_doubles_cooldown_capped_and_probe_success_closes() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg);
        for i in 0..4 {
            b.on_failure(t(i));
        }
        assert_eq!(b.cooldown(), cfg.cooldown);
        // Wait out the cooldown (plus its jitter margin): one probe allowed.
        let probe_at = t(4 + 400 + 101);
        let (ok, tr) = b.allow_send(probe_at);
        assert!(ok);
        assert_eq!(tr, Some(BreakerTransition::Probing));
        assert!(!b.allow_send(probe_at).0, "only one probe in flight");
        // Probe fails → reopen with doubled cooldown.
        assert!(matches!(b.on_failure(probe_at), Some(BreakerTransition::Opened { .. })));
        assert_eq!(b.cooldown(), SimDuration::from_millis(800));
        // Cooldown doubling is capped.
        for k in 0..10 {
            let late = t(100_000 + 100_000 * k);
            let (ok, _) = b.allow_send(late);
            assert!(ok, "cooldown {k} elapsed by {late:?}");
            b.on_failure(late);
        }
        assert_eq!(b.cooldown(), cfg.cooldown_cap);
        // A successful probe closes and resets the cooldown.
        let late = t(10_000_000);
        assert!(b.allow_send(late).0);
        assert_eq!(b.on_success(late), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.cooldown(), cfg.cooldown);
    }

    #[test]
    fn open_time_accounting_spans_failed_probes() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for i in 0..4 {
            b.on_failure(t(i));
        }
        // Opened at t=3ms; probe at 600ms fails; closes at 2000ms.
        let (ok, _) = b.allow_send(t(600));
        assert!(ok);
        b.on_failure(t(600));
        b.on_success(t(2_000));
        assert_eq!(b.open_time_us(t(5_000)), (2_000 - 3) * 1_000);
    }
}
