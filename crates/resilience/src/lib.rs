//! Overload-protection primitives for the adaptation control plane.
//!
//! The paper's convergence argument assumes the manager's retransmission
//! machinery eventually lands every phase message; under sustained load with
//! slow or flaky agents that assumption turns the fixed retry ladder into a
//! metastable-failure machine — retries amplify load exactly when capacity is
//! scarcest. This crate provides the three counter-measures, each as a pure
//! deterministic state machine driven entirely by values the caller passes in
//! (virtual time, observed samples, seeded jitter) so simulation replays stay
//! bit-identical:
//!
//! - [`RetryPolicy`] — the retransmission deadline schedule. The fixed
//!   exponential ladder (the historical 200/400/800 µs-precision constants
//!   from the protocol crate) is the default; [`RetryMode::Adaptive`] swaps
//!   the base for an RTT-derived hint while keeping the same doubling and
//!   jitter shape.
//! - [`RttEstimator`] — Jacobson/Karels srtt+rttvar over observed
//!   request→ack latency, yielding a clamped retransmission timeout.
//! - [`CircuitBreaker`] — per-agent closed/open/half-open gate with seeded
//!   half-open probing and doubled-capped cooldown, so an agent that keeps
//!   timing out stops absorbing retries.
//! - [`BulkheadConfig`] — bounded in-flight + bounded waiting admission
//!   decisions with deterministic lowest-priority-oldest shedding.
//!
//! Nothing here performs I/O or reads a clock; hosts (the protocol manager
//! actor and the fleet control actor) own the wiring.

mod breaker;
mod bulkhead;
mod retry;
mod rtt;

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
pub use bulkhead::{shed_victim, Admission, BulkheadConfig};
pub use retry::{jitter_us, ReannouncePolicy, RetryMode, RetryPolicy};
pub use rtt::RttEstimator;
