//! Satellite property: the circuit breaker state machine, driven by
//! arbitrary event sequences, never leaks a send while open, reopens with a
//! doubled (capped) cooldown on a failed half-open probe, and is a pure
//! function of its inputs (fixed seed ⇒ identical transition trace).

use proptest::prelude::*;
use sada_obs::{SimDuration, SimTime};
use sada_resilience::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};

/// One host-visible stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stim {
    Failure,
    Success,
    Send,
}

/// Random event tape: each step advances virtual time by a random gap and
/// applies one stimulus, mimicking a host interleaving timeouts, acks, and
/// wire sends in any order.
fn arb_tape() -> impl Strategy<Value = Vec<(u64, Stim)>> {
    proptest::collection::vec(
        (0u64..1_000_000, 0u8..3).prop_map(|(gap_us, k)| {
            let stim = match k {
                0 => Stim::Failure,
                1 => Stim::Success,
                _ => Stim::Send,
            };
            (gap_us, stim)
        }),
        1..80,
    )
}

/// Replay a tape, recording every transition with its timestamp and, for
/// sends, whether the gate let the message through.
fn replay(cfg: BreakerConfig, tape: &[(u64, Stim)]) -> Vec<(u64, String)> {
    let mut b = CircuitBreaker::new(cfg);
    let mut now = SimTime::ZERO;
    let mut trace = Vec::new();
    for &(gap_us, stim) in tape {
        now += SimDuration::from_micros(gap_us);
        let at = now.as_micros();
        match stim {
            Stim::Failure => {
                if let Some(tr) = b.on_failure(now) {
                    trace.push((at, format!("{tr:?}")));
                }
            }
            Stim::Success => {
                if let Some(tr) = b.on_success(now) {
                    trace.push((at, format!("{tr:?}")));
                }
            }
            Stim::Send => {
                let (ok, tr) = b.allow_send(now);
                trace.push((at, format!("send ok={ok} tr={tr:?}")));
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Open ⇒ no sends until the cooldown elapses, and the first send that
    /// does pass is exactly one half-open probe; while a probe is in
    /// flight every further send is refused.
    #[test]
    fn open_breaker_never_leaks_a_send_before_its_probe(tape in arb_tape()) {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        // When the breaker last opened (None while closed).
        let mut opened_at: Option<SimTime> = None;
        for (gap_us, stim) in tape {
            now += SimDuration::from_micros(gap_us);
            match stim {
                Stim::Failure => {
                    if matches!(b.on_failure(now), Some(BreakerTransition::Opened { .. })) {
                        opened_at = Some(now);
                    }
                }
                Stim::Success => {
                    if b.on_success(now).is_some() {
                        opened_at = None;
                    }
                }
                Stim::Send => {
                    let before = b.state();
                    let (ok, tr) = b.allow_send(now);
                    match before {
                        BreakerState::Closed => prop_assert!(ok, "closed always passes"),
                        BreakerState::HalfOpen => {
                            prop_assert!(!ok, "probe already in flight at {now:?}")
                        }
                        BreakerState::Open => {
                            let opened = opened_at.expect("open state has an open instant");
                            if ok {
                                // The gate may pass only as a probe, and only
                                // after at least the un-jittered cooldown.
                                prop_assert_eq!(tr, Some(BreakerTransition::Probing));
                                prop_assert!(
                                    now.as_micros() >= opened.as_micros()
                                        + cfg.cooldown.as_micros(),
                                    "probe at {:?} before cooldown from {:?}", now, opened
                                );
                                prop_assert_eq!(b.state(), BreakerState::HalfOpen);
                            } else {
                                prop_assert_eq!(b.state(), BreakerState::Open);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A failed half-open probe reopens with a doubled cooldown, capped at
    /// `cooldown_cap`; a successful close resets it to the base.
    #[test]
    fn probe_failure_doubles_cooldown_capped(tape in arb_tape()) {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg);
        let mut now = SimTime::ZERO;
        for (gap_us, stim) in tape {
            now += SimDuration::from_micros(gap_us);
            match stim {
                Stim::Failure => {
                    let before = (b.state(), b.cooldown().as_micros());
                    if let Some(BreakerTransition::Opened { cooldown }) = b.on_failure(now) {
                        let expect = match before.0 {
                            BreakerState::HalfOpen => {
                                (before.1 * 2).min(cfg.cooldown_cap.as_micros())
                            }
                            _ => cfg.cooldown.as_micros(),
                        };
                        prop_assert_eq!(cooldown.as_micros(), expect);
                        prop_assert!(cooldown.as_micros() <= cfg.cooldown_cap.as_micros());
                    }
                }
                Stim::Success => {
                    if b.on_success(now).is_some() {
                        prop_assert_eq!(b.cooldown().as_micros(), cfg.cooldown.as_micros());
                    }
                }
                Stim::Send => {
                    let _ = b.allow_send(now);
                }
            }
        }
    }

    /// Fixed seed ⇒ bit-identical transition traces; a different jitter
    /// seed may move probe instants but never violates the machine shape
    /// (checked implicitly by replay succeeding).
    #[test]
    fn transitions_are_deterministic_for_a_fixed_seed(tape in arb_tape()) {
        let cfg = BreakerConfig::default();
        prop_assert_eq!(replay(cfg, &tape), replay(cfg, &tape));
        let reseeded = BreakerConfig { seed: cfg.seed ^ 0xABCD, ..cfg };
        prop_assert_eq!(replay(reseeded, &tape), replay(reseeded, &tape));
    }
}
