//! Hierarchical (spanning-tree) coordination.
//!
//! Section 4: "Communication channels can be implemented to best match the
//! communication patterns of the particular system. For example, both Arora
//! and Kulkarni have used a spanning tree, which is well suited to
//! components organized hierarchically. In contrast, in a group
//! communication system, multicast may be a better mechanism."
//!
//! [`RelayActor`] is a transparent protocol forwarder: the manager
//! addresses it instead of a distant agent, and it shuttles protocol
//! traffic up and down one tree edge. Chaining relays yields arbitrary
//! spanning trees; the manager and agent state machines are unchanged —
//! their timeouts simply absorb the extra hop latency, which the bench
//! harness quantifies.

use sada_simnet::{Actor, ActorId, Context};

use crate::messages::Wire;

/// Forwards protocol messages between an upstream node (toward the
/// manager) and a downstream node (toward the agent). Application traffic
/// is not relayed — data takes the normal network path.
pub struct RelayActor {
    up: ActorId,
    down: ActorId,
    /// Messages forwarded downstream (manager → agent direction).
    pub forwarded_down: u64,
    /// Messages forwarded upstream (agent → manager direction).
    pub forwarded_up: u64,
}

impl RelayActor {
    /// Creates a relay between `up` (manager side) and `down` (agent side).
    pub fn new(up: ActorId, down: ActorId) -> Self {
        RelayActor { up, down, forwarded_down: 0, forwarded_up: 0 }
    }
}

impl<M: Clone + 'static> Actor<Wire<M>> for RelayActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Wire<M>>, from: ActorId, msg: Wire<M>) {
        if !matches!(msg, Wire::Proto { .. }) {
            return;
        }
        if from == self.up {
            self.forwarded_down += 1;
            ctx.send(self.down, msg);
        } else if from == self.down {
            self.forwarded_up += 1;
            ctx.send(self.up, msg);
        }
        // Traffic from unrelated nodes is dropped: a relay only serves its
        // tree edge.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ProtoTiming;
    use crate::plan_adapter::SagPlanner;
    use crate::sim::{AgentTiming, ManagerActor, ScriptedAgent};
    use sada_expr::{enumerate, InvariantSet, Universe};
    use sada_model::SystemModel;
    use sada_plan::{Action, Sag};
    use sada_simnet::{LinkConfig, SimDuration, Simulator};
    use std::collections::HashSet;

    type Msg = Wire<()>;

    /// One-component world planned over a single replace action.
    fn planner() -> (Universe, SagPlanner) {
        let mut u = Universe::new();
        u.intern("A");
        u.intern("B");
        let actions =
            vec![Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 5)];
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        let mut model = SystemModel::new();
        let p = model.add_process("leaf");
        model.place_all(&u, &[("A", p), ("B", p)]);
        (u.clone(), SagPlanner::new(sag, actions, model, vec![0], HashSet::new()))
    }

    #[test]
    fn adaptation_succeeds_over_a_two_hop_tree() {
        let (u, planner) = planner();
        let mut sim: Simulator<Msg> = Simulator::new(3);
        sim.set_default_link(LinkConfig::reliable(SimDuration::from_millis(4)));
        // Topology: manager(2) <-> relay(1) <-> agent(0).
        let agent = sim.add_actor(
            "agent",
            // The agent believes the relay is its manager.
            ScriptedAgent::new(sada_simnet::ActorId::from_index(1), AgentTiming::default()),
        );
        let relay =
            sim.add_actor("relay", RelayActor::new(sada_simnet::ActorId::from_index(2), agent));
        let manager = sim.add_actor(
            "manager",
            // The manager addresses the relay as "the agent".
            ManagerActor::<()>::new(
                ProtoTiming::default(),
                Box::new(planner),
                vec![relay],
                u.config_of(&["A"]),
                u.config_of(&["B"]),
            ),
        );
        sim.run();
        let o = sim.actor::<ManagerActor<()>>(manager).unwrap().outcome.clone().expect("resolved");
        assert!(o.success, "protocol is topology-transparent");
        let r = sim.actor::<RelayActor>(relay).unwrap();
        assert!(r.forwarded_down >= 1, "reset went down the tree");
        assert!(r.forwarded_up >= 2, "acks came back up");
        let agent_state = sim.actor::<ScriptedAgent>(agent).unwrap();
        assert_eq!(agent_state.applied.len(), 1);
    }

    #[test]
    fn relay_ignores_unrelated_sources_and_app_traffic() {
        let mut sim: Simulator<Msg> = Simulator::new(0);
        let sink = sim.add_actor(
            "sink",
            ScriptedAgent::new(sada_simnet::ActorId::from_index(9), AgentTiming::default()),
        );
        let up = sim.add_actor(
            "up",
            ScriptedAgent::new(sada_simnet::ActorId::from_index(9), AgentTiming::default()),
        );
        let relay = sim.add_actor("relay", RelayActor::new(up, sink));
        let stranger = sim.add_actor("stranger", ScriptedAgent::new(relay, AgentTiming::default()));
        // Stranger's message reaches the relay but goes nowhere.
        sim.inject(
            stranger,
            relay,
            Wire::Proto {
                epoch: 0,
                session: crate::messages::SessionId::SOLO,
                msg: crate::messages::ProtoMsg::ResetDone { step: crate::messages::StepId(1) },
            },
            SimDuration::ZERO,
        );
        // App traffic from the upstream node is also not relayed.
        sim.inject(up, relay, Wire::App(()), SimDuration::ZERO);
        sim.run();
        let r = sim.actor::<RelayActor>(relay).unwrap();
        assert_eq!(r.forwarded_down, 0);
        assert_eq!(r.forwarded_up, 0);
    }

    #[test]
    fn relay_forwards_reconciliation_probes_and_reports() {
        // A restored manager's QueryState/StateReport round is ordinary
        // protocol traffic: it must traverse spanning-tree edges unchanged,
        // or a manager behind a relay could never reconcile after failover.
        let mut sim: Simulator<Msg> = Simulator::new(0);
        let down = sim.add_actor(
            "down",
            ScriptedAgent::new(sada_simnet::ActorId::from_index(9), AgentTiming::default()),
        );
        let up = sim.add_actor(
            "up",
            ScriptedAgent::new(sada_simnet::ActorId::from_index(9), AgentTiming::default()),
        );
        let relay = sim.add_actor("relay", RelayActor::new(up, down));
        sim.inject(
            up,
            relay,
            Wire::Proto {
                epoch: 1,
                session: crate::messages::SessionId::SOLO,
                msg: crate::messages::ProtoMsg::QueryState,
            },
            SimDuration::ZERO,
        );
        sim.inject(
            down,
            relay,
            Wire::Proto {
                epoch: 1,
                session: crate::messages::SessionId::SOLO,
                msg: crate::messages::ProtoMsg::StateReport {
                    engaged: None,
                    adapted: false,
                    failed: false,
                    last_completed: None,
                },
            },
            SimDuration::ZERO,
        );
        sim.run();
        let r = sim.actor::<RelayActor>(relay).unwrap();
        assert_eq!(r.forwarded_down, 1, "the probe went down the tree");
        assert_eq!(r.forwarded_up, 1, "the report came back up");
    }

    #[test]
    fn deep_chains_still_converge_within_timeouts() {
        // manager <-> r1 <-> r2 <-> r3 <-> agent, 4 hops each way at 4ms:
        // well under the 200ms phase timeout.
        let (u, planner) = planner();
        let mut sim: Simulator<Msg> = Simulator::new(5);
        sim.set_default_link(LinkConfig::reliable(SimDuration::from_millis(4)));
        let id = sada_simnet::ActorId::from_index;
        let agent = sim.add_actor("agent", ScriptedAgent::new(id(1), AgentTiming::default())); // 0
        let r3 = sim.add_actor("r3", RelayActor::new(id(2), agent)); // 1
        let r2 = sim.add_actor("r2", RelayActor::new(id(3), r3)); // 2
        let r1 = sim.add_actor("r1", RelayActor::new(id(4), r2)); // 3
        let manager = sim.add_actor(
            "manager",
            ManagerActor::<()>::new(
                ProtoTiming::default(),
                Box::new(planner),
                vec![r1],
                u.config_of(&["A"]),
                u.config_of(&["B"]),
            ),
        ); // 4
        sim.run();
        let o = sim.actor::<ManagerActor<()>>(manager).unwrap().outcome.clone().unwrap();
        assert!(o.success);
        assert!(o.warnings.is_empty(), "no retransmissions needed");
        // Message amplification: each logical message crosses 4 links.
        assert!(sim.stats().delivered > 12);
    }

    #[test]
    fn shrunken_retry_base_over_a_deep_chain_retransmits_but_applies_once() {
        // Same 4-hop chain, but the retry base is squeezed to 10 ms — well
        // under the ~32 ms round trip plus the agent's local delays. Every
        // phase times out at least once and retransmits through the tree;
        // idempotent re-acks must still converge on exactly one application
        // of the action, with no duplicate effects.
        use sada_resilience::RetryPolicy;
        let (u, planner) = planner();
        let mut sim: Simulator<Msg> = Simulator::new(5);
        sim.set_default_link(LinkConfig::reliable(SimDuration::from_millis(4)));
        let id = sada_simnet::ActorId::from_index;
        let agent = sim.add_actor("agent", ScriptedAgent::new(id(1), AgentTiming::default())); // 0
        let r3 = sim.add_actor("r3", RelayActor::new(id(2), agent)); // 1
        let r2 = sim.add_actor("r2", RelayActor::new(id(3), r3)); // 2
        let r1 = sim.add_actor("r1", RelayActor::new(id(4), r2)); // 3
        let timing = ProtoTiming {
            retry: RetryPolicy {
                base: SimDuration::from_millis(10),
                cap: SimDuration::from_millis(40),
                ..RetryPolicy::default()
            },
            ..ProtoTiming::default()
        };
        let manager = sim.add_actor(
            "manager",
            ManagerActor::<()>::new(
                timing,
                Box::new(planner),
                vec![r1],
                u.config_of(&["A"]),
                u.config_of(&["B"]),
            ),
        ); // 4
        sim.run();
        let m = sim.actor::<ManagerActor<()>>(manager).unwrap();
        let o = m.outcome.clone().expect("resolved");
        assert!(o.success, "premature timeouts only cost traffic, not correctness");
        assert!(
            m.infos.iter().any(|i| i.contains("retransmitting")),
            "the squeezed base must actually fire spurious retransmissions: {:?}",
            m.infos
        );
        let agent_state = sim.actor::<ScriptedAgent>(agent).unwrap();
        assert_eq!(agent_state.applied.len(), 1, "re-received resets are absorbed, not re-applied");
        let r = sim.actor::<RelayActor>(r1).unwrap();
        assert!(r.forwarded_down >= 2, "duplicates traversed the tree");
    }
}
