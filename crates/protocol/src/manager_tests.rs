//! Unit tests for the manager state machine (Figure 2 + Section 4.4
//! failure ladder), driven without any network.

use std::collections::HashSet;

use sada_expr::{enumerate, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, Sag};

use crate::manager::{
    ManagerCore, ManagerEffect, ManagerEvent, ManagerPhase, Outcome, ProtoTiming,
};
use crate::messages::ProtoMsg;
use crate::plan_adapter::SagPlanner;

/// World: components A, B, C under one_of; replacements A->B (1), B->C (1),
/// A->C (5). Everything hosted on one process / agent 0.
fn world() -> (Universe, ManagerCore) {
    let mut u = Universe::new();
    for n in ["A", "B", "C"] {
        u.intern(n);
    }
    let actions = vec![
        Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
        Action::replace(1, "B->C", &u.config_of(&["B"]), &u.config_of(&["C"]), 1),
        Action::replace(2, "A->C", &u.config_of(&["A"]), &u.config_of(&["C"]), 5),
        // Return edges so "back to source" is plannable.
        Action::replace(3, "C->A", &u.config_of(&["C"]), &u.config_of(&["A"]), 1),
        Action::replace(4, "B->A", &u.config_of(&["B"]), &u.config_of(&["A"]), 1),
    ];
    let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("host");
    model.place_all(&u, &[("A", p0), ("B", p0), ("C", p0)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0], HashSet::new());
    let mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));
    (u, mgr)
}

/// Two-agent world: X on agent 0 and Y on agent 1, replaced together.
fn world_two_agents() -> (Universe, ManagerCore) {
    let mut u = Universe::new();
    for n in ["X1", "X2", "Y1", "Y2"] {
        u.intern(n);
    }
    let actions = vec![Action::replace(
        0,
        "(X1,Y1)->(X2,Y2)",
        &u.config_of(&["X1", "Y1"]),
        &u.config_of(&["X2", "Y2"]),
        10,
    )];
    let inv = InvariantSet::parse(&["one_of(X1, X2) & one_of(Y1, Y2)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("px");
    let p1 = model.add_process("py");
    model.place_all(&u, &[("X1", p0), ("X2", p0), ("Y1", p1), ("Y2", p1)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0, 1], HashSet::new());
    let mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));
    (u, mgr)
}

fn sends(effects: &[ManagerEffect]) -> Vec<(usize, &ProtoMsg)> {
    effects
        .iter()
        .filter_map(|e| match e {
            ManagerEffect::Send { agent, msg } => Some((*agent, msg)),
            _ => None,
        })
        .collect()
}

fn timer_token(effects: &[ManagerEffect]) -> u64 {
    effects
        .iter()
        .rev()
        .find_map(|e| match e {
            ManagerEffect::SetTimer { token, .. } => Some(*token),
            _ => None,
        })
        .expect("a timer should be armed")
}

fn outcome(effects: &[ManagerEffect]) -> Option<&Outcome> {
    effects.iter().find_map(|e| match e {
        ManagerEffect::Complete(o) => Some(o),
        _ => None,
    })
}

fn reset_step(effects: &[ManagerEffect]) -> crate::messages::StepId {
    sends(effects)
        .iter()
        .find_map(|(_, m)| match m {
            ProtoMsg::Reset { step, .. } => Some(*step),
            _ => None,
        })
        .expect("a reset should be sent")
}

#[test]
fn identity_request_completes_immediately() {
    let (u, mut mgr) = world();
    let a = u.config_of(&["A"]);
    let eff = mgr.on_event(ManagerEvent::Request { source: a.clone(), target: a });
    let o = outcome(&eff).expect("immediate completion");
    assert!(o.success);
    assert_eq!(o.steps_committed, 0);
    assert_eq!(mgr.phase(), ManagerPhase::Running);
}

#[test]
fn happy_path_two_solo_steps() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    // Cheapest path is A->B then B->C (cost 2), both solo on agent 0.
    let s1 = reset_step(&eff);
    assert_eq!(sends(&eff).len(), 1);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    // Solo step: AdaptDone moves straight to Resuming without Resume sends.
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    assert!(sends(&eff).is_empty(), "no resume for solo steps");
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);

    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "second step started");
    let s2 = reset_step(&eff);
    assert_ne!(s1, s2, "fresh attempt id per step");

    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("completion after last step");
    assert!(o.success);
    assert_eq!(o.steps_committed, 2);
    assert_eq!(o.final_config, u.config_of(&["C"]));
    assert_eq!(mgr.current_config(), &u.config_of(&["C"]));
}

#[test]
fn multi_agent_step_waits_for_all_before_resume() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    assert_eq!(sends(&eff).len(), 2, "reset to both participants");

    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert!(sends(&eff).is_empty(), "must hold until every agent adapted");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let resumes = sends(&eff);
    assert_eq!(resumes.len(), 2, "resume broadcast after the barrier");
    assert!(resumes.iter().all(|(_, m)| matches!(m, ProtoMsg::Resume { .. })));

    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    let o = outcome(&eff).expect("complete");
    assert!(o.success);
}

#[test]
fn timeout_retransmits_reset_then_rolls_back() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let mut token = timer_token(&eff);
    // send_retries retransmissions...
    for attempt in 0..ProtoTiming::default().send_retries {
        let eff = mgr.on_event(ManagerEvent::Timeout { token });
        let s = sends(&eff);
        assert!(
            s.iter().all(|(_, m)| matches!(m, ProtoMsg::Reset { .. })),
            "attempt {attempt} retransmits reset"
        );
        assert_eq!(s.len(), 2);
        token = timer_token(&eff);
    }
    // ...then the step is aborted with a rollback broadcast.
    let eff = mgr.on_event(ManagerEvent::Timeout { token });
    let s = sends(&eff);
    assert!(s.iter().all(|(_, m)| matches!(m, ProtoMsg::Rollback { .. })));
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
}

#[test]
fn fail_to_reset_triggers_immediate_rollback() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let step = reset_step(&eff);
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
    let s = sends(&eff);
    assert_eq!(s.len(), 1);
    assert!(matches!(s[0].1, ProtoMsg::Rollback { .. }));
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
}

#[test]
fn recovery_ladder_retry_then_alternate_path_then_source_then_give_up() {
    let (u, mut mgr) = world();
    let a = u.config_of(&["A"]);
    let c = u.config_of(&["C"]);
    let eff = mgr.on_event(ManagerEvent::Request { source: a.clone(), target: c });
    let mut step = reset_step(&eff);

    let fail_step = |mgr: &mut ManagerCore, step| -> Vec<ManagerEffect> {
        let eff =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
        assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } })
            .into_iter()
            .chain(eff)
            .collect()
    };

    // Failure 1: rung 1 = retry the same step once (same path, fresh id).
    let eff = fail_step(&mut mgr, step);
    let retry = reset_step(&eff);
    assert_ne!(retry, step);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    step = retry;

    // Failure 2: rung 2 = second-minimum path A->C (direct, cost 5).
    let eff = fail_step(&mut mgr, step);
    step = reset_step(&eff);

    // Failure 3: retry of the alternate path's step.
    let eff = fail_step(&mut mgr, step);
    step = reset_step(&eff);

    // Failure 4: no more paths to target; current==source so the "return to
    // source" rung completes instantly as an aborted adaptation.
    let eff = fail_step(&mut mgr, step);
    let o = outcome(&eff).expect("aborted completion at source");
    assert!(!o.success);
    assert!(!o.gave_up);
    assert_eq!(o.final_config, a);
    assert_eq!(mgr.phase(), ManagerPhase::Running);
}

#[test]
fn give_up_when_stranded_mid_path() {
    // Custom world without return edges: B is a dead end for going back.
    let mut u = Universe::new();
    for n in ["A", "B", "C"] {
        u.intern(n);
    }
    let actions = vec![
        Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
        Action::replace(1, "B->C", &u.config_of(&["B"]), &u.config_of(&["C"]), 1),
    ];
    let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("host");
    model.place_all(&u, &[("A", p0), ("B", p0), ("C", p0)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0], HashSet::new());
    let mut mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));

    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let s1 = reset_step(&eff);
    // Step 1 (A->B) commits.
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let mut step = reset_step(&eff);

    // Step 2 (B->C) keeps failing: retry rung, re-selection of the B->C
    // path from the new current config, its retry, then — with no other
    // path to C and no way back to A from B — the manager gives up at B.
    for _ in 0..6 {
        let eff1 =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
        let _ = eff1;
        let eff2 =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
        if let Some(o) = outcome(&eff2) {
            assert!(o.gave_up);
            assert!(!o.success);
            assert_eq!(o.final_config, u.config_of(&["B"]), "stranded at the safe config B");
            assert_eq!(mgr.phase(), ManagerPhase::GaveUp);
            return;
        }
        step = reset_step(&eff2);
    }
    panic!("manager should have given up");
}

#[test]
fn resume_timeout_forces_completion_with_warning() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let mut token = timer_token(&eff);
    // Agent 1's ResumeDone never arrives.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let mut final_outcome = None;
    for _ in 0..=ProtoTiming::default().resume_force_limit {
        let eff = mgr.on_event(ManagerEvent::Timeout { token });
        if let Some(o) = outcome(&eff) {
            final_outcome = Some(o.clone());
            break;
        }
        let s = sends(&eff);
        assert!(s.iter().all(|(a, m)| *a == 1 && matches!(m, ProtoMsg::Resume { .. })));
        token = timer_token(&eff);
    }
    let o = final_outcome.expect("force completion");
    assert!(o.success, "after resume the adaptation runs to completion");
    assert!(!o.warnings.is_empty(), "but the anomaly is recorded");
}

#[test]
fn stale_messages_and_timers_ignored() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let token = timer_token(&eff);
    assert!(mgr
        .on_event(ManagerEvent::AgentMsg {
            agent: 0,
            msg: ProtoMsg::AdaptDone { step: crate::messages::StepId(9999) }
        })
        .is_empty());
    assert!(mgr.on_event(ManagerEvent::Timeout { token: token + 12345 }).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "unmoved by stale inputs");
}

#[test]
fn second_request_while_busy_is_queued_and_served() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["B"]),
    });
    let s1 = reset_step(&eff);
    // A second request arrives mid-adaptation: queued, nothing sent.
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["B"]),
        target: u.config_of(&["C"]),
    });
    assert!(sends(&eff).is_empty());
    assert!(matches!(eff[0], ManagerEffect::Info(_)));
    // Finish the first adaptation; the queued one starts automatically.
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let o = outcome(&eff).expect("first adaptation completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["B"]));
    let s2 = reset_step(&eff);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "queued request underway");
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("second adaptation completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["C"]));
}

#[test]
fn queued_request_with_stale_source_is_reanchored() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["B"]),
    });
    let s1 = reset_step(&eff);
    // Queued request claims the system is still at A; by the time it runs
    // the system is at B, and the manager must plan from B.
    let _ = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let s2 = reset_step(&eff);
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["C"]), "planned B -> C, not A -> C");
}

#[test]
fn unreachable_target_gives_up_immediately() {
    let (u, mut mgr) = world();
    // No action ever removes C and adds A+B simultaneously to form {A,B}…
    // and {A,B} is not even safe. Planner returns nothing.
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["C"]),
        target: u.config_of(&["A", "B"]),
    });
    let o = outcome(&eff).expect("no plan => immediate resolution");
    assert!(!o.success);
    // It "returns to source" trivially (already there), so not a give-up.
    assert!(!o.gave_up);
    assert_eq!(o.final_config, u.config_of(&["C"]));
}

// --- crash/rejoin resynchronization (the fault-injection extension) ------

#[test]
fn rejoin_while_adapting_restarts_the_agents_step() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    // Agent 0 acknowledges, then crashes and comes back with nothing.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert_eq!(s.len(), 1, "targeted re-reset, not a broadcast");
    assert!(matches!(s[0], (0, ProtoMsg::Reset { .. })), "{s:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    // The pre-crash AdaptDone was voided: the barrier waits for agent 0
    // again, then the run converges normally.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "still waiting for the restarted agent");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert_eq!(sends(&eff).len(), 2, "resume broadcast once both re-adapted");
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("completes").success);
}

#[test]
fn rejoin_carrying_the_current_step_is_proof_of_completion() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);
    // Agent 0 committed the step, crashed before its ResumeDone was heard,
    // and rejoins advertising the durable completion: the rejoin itself
    // closes the barrier.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: Some(step) },
    });
    let o = outcome(&eff).expect("rejoin is proof of completion");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["X2", "Y2"]));
}

#[test]
fn rejoin_mid_resume_reruns_the_step_to_completion() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    // Agent 0's uncommitted in-action died with the crash even though the
    // resume barrier passed: the step must still run to completion.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Reset { .. })]), "{s:?}");
    // This time the re-acknowledgement earns a *targeted* resume.
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Resume { .. })]), "{s:?}");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("completes").success);
}

#[test]
fn rejoin_while_rolling_back_resends_rollback() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::FailToReset { step } });
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    // Agent 0 crashed during the abort; the restarted incarnation holds no
    // change to undo, but its RollbackDone is still owed.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Rollback { .. })]), "{s:?}");
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::RollbackDone { step } });
    // Ladder rung 1: the step is retried with a fresh attempt id.
    let retry = reset_step(&eff);
    assert_ne!(retry, step);
}

#[test]
fn rejoin_when_idle_or_from_nonparticipant_is_informational() {
    let (u, mut mgr) = world();
    // Idle: nothing to resynchronize.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    assert!(sends(&eff).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Running);
    // Mid-adaptation, an agent with no role in the current step just gets
    // noted.
    let _ = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 3,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    assert!(sends(&eff).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "step undisturbed");
}

#[test]
fn timer_tokens_strictly_increase_and_stale_timeouts_are_inert() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let t1 = timer_token(&eff);
    let eff = mgr.on_event(ManagerEvent::Timeout { token: t1 });
    let t2 = timer_token(&eff);
    assert!(t2 > t1, "tokens must be strictly monotonic: {t1} then {t2}");
    // A timeout for the superseded timer must not burn a retry or abort
    // the step: only the newest token is live.
    let eff = mgr.on_event(ManagerEvent::Timeout { token: t1 });
    assert!(eff.is_empty(), "stale timer token must be ignored: {eff:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
}
