//! Unit tests for the manager state machine (Figure 2 + Section 4.4
//! failure ladder), driven without any network.

use std::collections::{HashSet, VecDeque};

use sada_expr::{enumerate, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, Sag};

use crate::agent::{AgentCore, AgentEffect, AgentEvent};
use crate::journal::JournalRecord;
use crate::manager::{
    ManagerCore, ManagerEffect, ManagerEvent, ManagerPhase, Outcome, ProtoTiming,
};
use crate::messages::ProtoMsg;
use crate::plan_adapter::SagPlanner;

/// World: components A, B, C under one_of; replacements A->B (1), B->C (1),
/// A->C (5). Everything hosted on one process / agent 0.
fn world() -> (Universe, ManagerCore) {
    let mut u = Universe::new();
    for n in ["A", "B", "C"] {
        u.intern(n);
    }
    let actions = vec![
        Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
        Action::replace(1, "B->C", &u.config_of(&["B"]), &u.config_of(&["C"]), 1),
        Action::replace(2, "A->C", &u.config_of(&["A"]), &u.config_of(&["C"]), 5),
        // Return edges so "back to source" is plannable.
        Action::replace(3, "C->A", &u.config_of(&["C"]), &u.config_of(&["A"]), 1),
        Action::replace(4, "B->A", &u.config_of(&["B"]), &u.config_of(&["A"]), 1),
    ];
    let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("host");
    model.place_all(&u, &[("A", p0), ("B", p0), ("C", p0)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0], HashSet::new());
    let mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));
    (u, mgr)
}

/// Two-agent world: X on agent 0 and Y on agent 1, replaced together.
fn world_two_agents() -> (Universe, ManagerCore) {
    let mut u = Universe::new();
    for n in ["X1", "X2", "Y1", "Y2"] {
        u.intern(n);
    }
    let actions = vec![Action::replace(
        0,
        "(X1,Y1)->(X2,Y2)",
        &u.config_of(&["X1", "Y1"]),
        &u.config_of(&["X2", "Y2"]),
        10,
    )];
    let inv = InvariantSet::parse(&["one_of(X1, X2) & one_of(Y1, Y2)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("px");
    let p1 = model.add_process("py");
    model.place_all(&u, &[("X1", p0), ("X2", p0), ("Y1", p1), ("Y2", p1)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0, 1], HashSet::new());
    let mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));
    (u, mgr)
}

fn sends(effects: &[ManagerEffect]) -> Vec<(usize, &ProtoMsg)> {
    effects
        .iter()
        .filter_map(|e| match e {
            ManagerEffect::Send { agent, msg } => Some((*agent, msg)),
            _ => None,
        })
        .collect()
}

fn timer_token(effects: &[ManagerEffect]) -> u64 {
    effects
        .iter()
        .rev()
        .find_map(|e| match e {
            ManagerEffect::SetTimer { token, .. } => Some(*token),
            _ => None,
        })
        .expect("a timer should be armed")
}

fn outcome(effects: &[ManagerEffect]) -> Option<&Outcome> {
    effects.iter().find_map(|e| match e {
        ManagerEffect::Complete(o) => Some(o),
        _ => None,
    })
}

fn reset_step(effects: &[ManagerEffect]) -> crate::messages::StepId {
    sends(effects)
        .iter()
        .find_map(|(_, m)| match m {
            ProtoMsg::Reset { step, .. } => Some(*step),
            _ => None,
        })
        .expect("a reset should be sent")
}

#[test]
fn identity_request_completes_immediately() {
    let (u, mut mgr) = world();
    let a = u.config_of(&["A"]);
    let eff = mgr.on_event(ManagerEvent::Request { source: a.clone(), target: a });
    let o = outcome(&eff).expect("immediate completion");
    assert!(o.success);
    assert_eq!(o.steps_committed, 0);
    assert_eq!(mgr.phase(), ManagerPhase::Running);
}

#[test]
fn happy_path_two_solo_steps() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    // Cheapest path is A->B then B->C (cost 2), both solo on agent 0.
    let s1 = reset_step(&eff);
    assert_eq!(sends(&eff).len(), 1);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    // Solo step: AdaptDone moves straight to Resuming without Resume sends.
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    assert!(sends(&eff).is_empty(), "no resume for solo steps");
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);

    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "second step started");
    let s2 = reset_step(&eff);
    assert_ne!(s1, s2, "fresh attempt id per step");

    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("completion after last step");
    assert!(o.success);
    assert_eq!(o.steps_committed, 2);
    assert_eq!(o.final_config, u.config_of(&["C"]));
    assert_eq!(mgr.current_config(), &u.config_of(&["C"]));
}

#[test]
fn multi_agent_step_waits_for_all_before_resume() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    assert_eq!(sends(&eff).len(), 2, "reset to both participants");

    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert!(sends(&eff).is_empty(), "must hold until every agent adapted");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let resumes = sends(&eff);
    assert_eq!(resumes.len(), 2, "resume broadcast after the barrier");
    assert!(resumes.iter().all(|(_, m)| matches!(m, ProtoMsg::Resume { .. })));

    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    let o = outcome(&eff).expect("complete");
    assert!(o.success);
}

#[test]
fn timeout_retransmits_reset_then_rolls_back() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let mut token = timer_token(&eff);
    // send_retries retransmissions...
    for attempt in 0..ProtoTiming::default().send_retries {
        let eff = mgr.on_event(ManagerEvent::Timeout { token });
        let s = sends(&eff);
        assert!(
            s.iter().all(|(_, m)| matches!(m, ProtoMsg::Reset { .. })),
            "attempt {attempt} retransmits reset"
        );
        assert_eq!(s.len(), 2);
        token = timer_token(&eff);
    }
    // ...then the step is aborted with a rollback broadcast.
    let eff = mgr.on_event(ManagerEvent::Timeout { token });
    let s = sends(&eff);
    assert!(s.iter().all(|(_, m)| matches!(m, ProtoMsg::Rollback { .. })));
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
}

#[test]
fn fail_to_reset_triggers_immediate_rollback() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let step = reset_step(&eff);
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
    let s = sends(&eff);
    assert_eq!(s.len(), 1);
    assert!(matches!(s[0].1, ProtoMsg::Rollback { .. }));
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
}

#[test]
fn solo_commit_evidence_during_rollback_adopts_the_commit() {
    // A solo participant resumes autonomously, so it can commit a step
    // before the rollback order of a manager deaf to its (lost) acks
    // reaches it. Past the point of no return the commit cannot be undone:
    // the agent's completion re-ack must abandon the rollback, adopt the
    // step as committed, and continue the path from there.
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let step = reset_step(&eff);
    let mut token = timer_token(&eff);
    for _ in 0..ProtoTiming::default().send_retries {
        let eff = mgr.on_event(ManagerEvent::Timeout { token });
        token = timer_token(&eff);
    }
    let eff = mgr.on_event(ManagerEvent::Timeout { token });
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    assert!(sends(&eff).iter().all(|(_, m)| matches!(m, ProtoMsg::Rollback { .. })));

    // Instead of RollbackDone, the agent re-acks the completion it reached
    // on its own (AdaptDone is a stray here; ResumeDone is the evidence).
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert!(sends(&eff).is_empty(), "stray AdaptDone mid-rollback is inert: {eff:?}");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let records = journal_records(&eff);
    assert!(
        records.iter().any(|r| matches!(r, JournalRecord::StepCommitted { step: s } if *s == step)),
        "the commit is adopted: {records:?}"
    );
    assert!(
        !records.iter().any(|r| matches!(r, JournalRecord::RollbackComplete { .. })),
        "no rollback completion is fabricated: {records:?}"
    );
    // The path continues: next step dispatched from the committed config.
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    assert_eq!(mgr.current_config(), &u.config_of(&["B"]));
    assert!(
        sends(&eff).iter().any(|(_, m)| matches!(m, ProtoMsg::Reset { .. })),
        "the next step starts immediately: {eff:?}"
    );
}

#[test]
fn recovery_ladder_retry_then_alternate_path_then_source_then_give_up() {
    let (u, mut mgr) = world();
    let a = u.config_of(&["A"]);
    let c = u.config_of(&["C"]);
    let eff = mgr.on_event(ManagerEvent::Request { source: a.clone(), target: c });
    let mut step = reset_step(&eff);

    let fail_step = |mgr: &mut ManagerCore, step| -> Vec<ManagerEffect> {
        let eff =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
        assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } })
            .into_iter()
            .chain(eff)
            .collect()
    };

    // Failure 1: rung 1 = retry the same step once (same path, fresh id).
    let eff = fail_step(&mut mgr, step);
    let retry = reset_step(&eff);
    assert_ne!(retry, step);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    step = retry;

    // Failure 2: rung 2 = second-minimum path A->C (direct, cost 5).
    let eff = fail_step(&mut mgr, step);
    step = reset_step(&eff);

    // Failure 3: retry of the alternate path's step.
    let eff = fail_step(&mut mgr, step);
    step = reset_step(&eff);

    // Failure 4: no more paths to target; current==source so the "return to
    // source" rung completes instantly as an aborted adaptation.
    let eff = fail_step(&mut mgr, step);
    let o = outcome(&eff).expect("aborted completion at source");
    assert!(!o.success);
    assert!(!o.gave_up);
    assert_eq!(o.final_config, a);
    assert_eq!(mgr.phase(), ManagerPhase::Running);
}

#[test]
fn give_up_when_stranded_mid_path() {
    // Custom world without return edges: B is a dead end for going back.
    let mut u = Universe::new();
    for n in ["A", "B", "C"] {
        u.intern(n);
    }
    let actions = vec![
        Action::replace(0, "A->B", &u.config_of(&["A"]), &u.config_of(&["B"]), 1),
        Action::replace(1, "B->C", &u.config_of(&["B"]), &u.config_of(&["C"]), 1),
    ];
    let inv = InvariantSet::parse(&["one_of(A, B, C)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("host");
    model.place_all(&u, &[("A", p0), ("B", p0), ("C", p0)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0], HashSet::new());
    let mut mgr = ManagerCore::new(ProtoTiming::default(), Box::new(planner));

    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let s1 = reset_step(&eff);
    // Step 1 (A->B) commits.
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let mut step = reset_step(&eff);

    // Step 2 (B->C) keeps failing: retry rung, re-selection of the B->C
    // path from the new current config, its retry, then — with no other
    // path to C and no way back to A from B — the manager gives up at B.
    for _ in 0..6 {
        let eff1 =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::FailToReset { step } });
        let _ = eff1;
        let eff2 =
            mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
        if let Some(o) = outcome(&eff2) {
            assert!(o.gave_up);
            assert!(!o.success);
            assert_eq!(o.final_config, u.config_of(&["B"]), "stranded at the safe config B");
            assert_eq!(mgr.phase(), ManagerPhase::GaveUp);
            return;
        }
        step = reset_step(&eff2);
    }
    panic!("manager should have given up");
}

#[test]
fn resume_timeout_forces_completion_with_warning() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let mut token = timer_token(&eff);
    // Agent 1's ResumeDone never arrives.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let mut final_outcome = None;
    for _ in 0..=ProtoTiming::default().resume_force_limit {
        let eff = mgr.on_event(ManagerEvent::Timeout { token });
        if let Some(o) = outcome(&eff) {
            final_outcome = Some(o.clone());
            break;
        }
        let s = sends(&eff);
        assert!(s.iter().all(|(a, m)| *a == 1 && matches!(m, ProtoMsg::Resume { .. })));
        token = timer_token(&eff);
    }
    let o = final_outcome.expect("force completion");
    assert!(o.success, "after resume the adaptation runs to completion");
    assert!(!o.warnings.is_empty(), "but the anomaly is recorded");
}

#[test]
fn stale_messages_and_timers_ignored() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let token = timer_token(&eff);
    assert!(mgr
        .on_event(ManagerEvent::AgentMsg {
            agent: 0,
            msg: ProtoMsg::AdaptDone { step: crate::messages::StepId(9999) }
        })
        .is_empty());
    assert!(mgr.on_event(ManagerEvent::Timeout { token: token + 12345 }).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "unmoved by stale inputs");
}

#[test]
fn second_request_while_busy_is_queued_and_served() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["B"]),
    });
    let s1 = reset_step(&eff);
    // A second request arrives mid-adaptation: queued, nothing sent.
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["B"]),
        target: u.config_of(&["C"]),
    });
    assert!(sends(&eff).is_empty());
    // The deferral is journaled (so a restarted manager still serves it)
    // and reported.
    assert!(matches!(eff[0], ManagerEffect::Journal(JournalRecord::Queued { .. })), "{eff:?}");
    assert!(eff.iter().any(|e| matches!(e, ManagerEffect::Info(_))));
    // Finish the first adaptation; the queued one starts automatically.
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let o = outcome(&eff).expect("first adaptation completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["B"]));
    let s2 = reset_step(&eff);
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "queued request underway");
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("second adaptation completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["C"]));
}

#[test]
fn queued_request_with_stale_source_is_reanchored() {
    let (u, mut mgr) = world();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["B"]),
    });
    let s1 = reset_step(&eff);
    // Queued request claims the system is still at A; by the time it runs
    // the system is at B, and the manager must plan from B.
    let _ = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    let s2 = reset_step(&eff);
    let _ =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s2 } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s2 } });
    let o = outcome(&eff).expect("completes");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["C"]), "planned B -> C, not A -> C");
}

#[test]
fn unreachable_target_gives_up_immediately() {
    let (u, mut mgr) = world();
    // No action ever removes C and adds A+B simultaneously to form {A,B}…
    // and {A,B} is not even safe. Planner returns nothing.
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["C"]),
        target: u.config_of(&["A", "B"]),
    });
    let o = outcome(&eff).expect("no plan => immediate resolution");
    assert!(!o.success);
    // It "returns to source" trivially (already there), so not a give-up.
    assert!(!o.gave_up);
    assert_eq!(o.final_config, u.config_of(&["C"]));
}

// --- crash/rejoin resynchronization (the fault-injection extension) ------

#[test]
fn rejoin_while_adapting_restarts_the_agents_step() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    // Agent 0 acknowledges, then crashes and comes back with nothing.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert_eq!(s.len(), 1, "targeted re-reset, not a broadcast");
    assert!(matches!(s[0], (0, ProtoMsg::Reset { .. })), "{s:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);

    // The pre-crash AdaptDone was voided: the barrier waits for agent 0
    // again, then the run converges normally.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "still waiting for the restarted agent");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert_eq!(sends(&eff).len(), 2, "resume broadcast once both re-adapted");
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("completes").success);
}

#[test]
fn rejoin_carrying_the_current_step_is_proof_of_completion() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert_eq!(mgr.phase(), ManagerPhase::Resuming);
    // Agent 0 committed the step, crashed before its ResumeDone was heard,
    // and rejoins advertising the durable completion: the rejoin itself
    // closes the barrier.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: Some(step) },
    });
    let o = outcome(&eff).expect("rejoin is proof of completion");
    assert!(o.success);
    assert_eq!(o.final_config, u.config_of(&["X2", "Y2"]));
}

#[test]
fn rejoin_mid_resume_reruns_the_step_to_completion() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    // Agent 0's uncommitted in-action died with the crash even though the
    // resume barrier passed: the step must still run to completion.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Reset { .. })]), "{s:?}");
    // This time the re-acknowledgement earns a *targeted* resume.
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Resume { .. })]), "{s:?}");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("completes").success);
}

#[test]
fn rejoin_while_rolling_back_resends_rollback() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::FailToReset { step } });
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    // Agent 0 crashed during the abort; the restarted incarnation holds no
    // change to undo, but its RollbackDone is still owed.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Rollback { .. })]), "{s:?}");
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::RollbackDone { step } });
    // Ladder rung 1: the step is retried with a fresh attempt id.
    let retry = reset_step(&eff);
    assert_ne!(retry, step);
}

#[test]
fn rejoin_when_idle_or_from_nonparticipant_is_informational() {
    let (u, mut mgr) = world();
    // Idle: nothing to resynchronize.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    assert!(sends(&eff).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Running);
    // Mid-adaptation, an agent with no role in the current step just gets
    // noted.
    let _ = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 3,
        msg: ProtoMsg::Rejoin { last_completed: None },
    });
    assert!(sends(&eff).is_empty());
    assert_eq!(mgr.phase(), ManagerPhase::Adapting, "step undisturbed");
}

#[test]
fn timer_tokens_strictly_increase_and_stale_timeouts_are_inert() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let t1 = timer_token(&eff);
    let eff = mgr.on_event(ManagerEvent::Timeout { token: t1 });
    let t2 = timer_token(&eff);
    assert!(t2 > t1, "tokens must be strictly monotonic: {t1} then {t2}");
    // A timeout for the superseded timer must not burn a retry or abort
    // the step: only the newest token is live.
    let eff = mgr.on_event(ManagerEvent::Timeout { token: t1 });
    assert!(eff.is_empty(), "stale timer token must be ignored: {eff:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
}

// --- duplicate-delivery idempotence (barrier guards) ---------------------

#[test]
fn duplicate_adapt_done_before_the_barrier_is_inert() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    // The network re-delivers agent 0's AdaptDone: it must not count twice
    // toward the barrier (the step would resume with agent 1 unsafe).
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    assert!(eff.is_empty(), "duplicate must be dropped: {eff:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    assert_eq!(sends(&eff).len(), 2, "barrier still waited for agent 1");
}

#[test]
fn duplicate_resume_done_after_the_transition_is_inert() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    // Replayed ResumeDone from the already-counted agent: no double-count,
    // no premature commit.
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    assert!(eff.is_empty(), "duplicate must be dropped: {eff:?}");
    assert_eq!(mgr.phase(), ManagerPhase::Resuming, "commit must wait for agent 1");
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("commit on the real final ack").success);
}

#[test]
fn duplicate_rollback_done_is_inert() {
    let (u, mut mgr) = world_two_agents();
    let eff = mgr.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::FailToReset { step } });
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
    assert!(eff.is_empty(), "duplicate must not close the rollback barrier: {eff:?}");
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::RollbackDone { step } });
    let retry = reset_step(&eff);
    assert_ne!(retry, step, "exactly one retry, on the real final ack");
}

// --- durable manager: journal, restore, reconciliation -------------------

fn journal_records(effects: &[ManagerEffect]) -> Vec<JournalRecord> {
    effects
        .iter()
        .filter_map(|e| match e {
            ManagerEffect::Journal(rec) => Some(rec.clone()),
            _ => None,
        })
        .collect()
}

/// Synchronous lockstep harness: delivers manager sends straight to
/// in-process [`AgentCore`]s, auto-drives their local-process callbacks, and
/// feeds the replies back — no network, no clock, nothing lost, so timers
/// never fire. Step attempts whose id is in `fail_steps` fail-to-reset;
/// keying failures to the attempt id (which the journal makes stable across
/// a manager restart) lets a restored run make exactly the choices the
/// uninterrupted run made.
struct Lockstep {
    agents: Vec<AgentCore>,
    fail_steps: HashSet<u64>,
    journal: Vec<JournalRecord>,
    outcome: Option<Outcome>,
}

impl Lockstep {
    fn new(agent_count: usize, fail_steps: HashSet<u64>) -> Self {
        Lockstep {
            agents: (0..agent_count).map(|_| AgentCore::new()).collect(),
            fail_steps,
            journal: Vec::new(),
            outcome: None,
        }
    }

    /// Journal records and the outcome are kept; sends are queued.
    fn absorb(&mut self, effects: Vec<ManagerEffect>, inbox: &mut VecDeque<(usize, ProtoMsg)>) {
        for eff in effects {
            match eff {
                ManagerEffect::Journal(rec) => self.journal.push(rec),
                ManagerEffect::Send { agent, msg } => inbox.push_back((agent, msg)),
                ManagerEffect::Complete(o) => self.outcome = Some(o),
                _ => {}
            }
        }
    }

    /// Delivers one message to an agent, auto-completing every local process
    /// action it requests, and returns the agent's protocol replies in order.
    fn agent_replies(&mut self, ix: usize, msg: ProtoMsg) -> Vec<ProtoMsg> {
        let mut replies = Vec::new();
        let mut events = VecDeque::from([AgentEvent::Msg(msg)]);
        while let Some(ev) = events.pop_front() {
            for eff in self.agents[ix].on_event(ev) {
                match eff {
                    AgentEffect::Send(m) => replies.push(m),
                    AgentEffect::BeginReset(_) => {
                        let fails = self.agents[ix]
                            .current_step()
                            .is_some_and(|s| self.fail_steps.contains(&s.0));
                        events.push_back(if fails {
                            AgentEvent::CannotReset
                        } else {
                            AgentEvent::SafeReached
                        });
                    }
                    AgentEffect::DoInAction(_) => events.push_back(AgentEvent::InActionDone),
                    AgentEffect::DoResume => events.push_back(AgentEvent::ResumeFinished),
                    AgentEffect::DoRollback(_) => events.push_back(AgentEvent::RollbackFinished),
                    AgentEffect::PreAction(_) | AgentEffect::PostAction(_) => {}
                }
            }
        }
        replies
    }

    /// Pumps messages to quiescence. With `crash_at = Some(k)`, stops (and
    /// returns `true`) as soon as the journal holds at least `k` records —
    /// the undelivered remainder of `inbox` dies with the crash.
    fn run(
        &mut self,
        mgr: &mut ManagerCore,
        mut inbox: VecDeque<(usize, ProtoMsg)>,
        crash_at: Option<usize>,
    ) -> bool {
        let mut budget = 10_000u32;
        while let Some((ix, msg)) = inbox.pop_front() {
            for reply in self.agent_replies(ix, msg) {
                let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: ix, msg: reply });
                self.absorb(eff, &mut inbox);
                if crash_at.is_some_and(|k| self.journal.len() >= k) {
                    return true;
                }
            }
            budget -= 1;
            assert!(budget > 0, "lockstep run did not converge");
        }
        false
    }
}

/// A fresh manager plus the request endpoints and agent count for one of the
/// two fixture worlds.
fn scenario(two_agents: bool) -> (ManagerCore, Config, Config, usize) {
    if two_agents {
        let (u, mgr) = world_two_agents();
        (mgr, u.config_of(&["X1", "Y1"]), u.config_of(&["X2", "Y2"]), 2)
    } else {
        let (u, mgr) = world();
        (mgr, u.config_of(&["A"]), u.config_of(&["C"]), 1)
    }
}

/// Runs an adaptation to quiescence without any crash.
fn uninterrupted(two_agents: bool, fail_steps: &HashSet<u64>) -> (Config, Vec<JournalRecord>) {
    let (mut mgr, source, target, n) = scenario(two_agents);
    let mut net = Lockstep::new(n, fail_steps.clone());
    let mut inbox = VecDeque::new();
    let eff = mgr.on_event(ManagerEvent::Request { source, target });
    net.absorb(eff, &mut inbox);
    assert!(!net.run(&mut mgr, inbox, None));
    (mgr.current_config().clone(), net.journal)
}

/// Runs the same adaptation, crashes the manager as soon as the journal
/// holds `crash_at` records (in-flight messages die; agents keep their
/// state), restores a new incarnation from the journal, and drives the
/// reconciliation round plus the rest of the run to quiescence.
fn crash_then_restore(
    two_agents: bool,
    fail_steps: &HashSet<u64>,
    crash_at: usize,
) -> (Config, Vec<JournalRecord>) {
    let (mut mgr, source, target, n) = scenario(two_agents);
    let mut net = Lockstep::new(n, fail_steps.clone());
    let mut inbox = VecDeque::new();
    let eff = mgr.on_event(ManagerEvent::Request { source, target });
    net.absorb(eff, &mut inbox);
    let crashed = net.journal.len() >= crash_at || net.run(&mut mgr, inbox, Some(crash_at));
    assert!(crashed, "journal never reached {crash_at} records");
    // The dead incarnation's volatile state is gone; only the planner (a
    // stateless service in the sim) and the journal survive.
    let (mut mgr, eff) =
        ManagerCore::restore(ProtoTiming::default(), mgr.into_planner(), &net.journal)
            .expect("persisted journal prefix must replay");
    let mut inbox = VecDeque::new();
    net.absorb(eff, &mut inbox);
    assert!(!net.run(&mut mgr, inbox, None));
    (mgr.current_config().clone(), net.journal)
}

#[test]
fn restore_of_empty_journal_is_a_fresh_idle_manager() {
    let (_, mgr) = world();
    let (mgr, eff) = ManagerCore::restore(ProtoTiming::default(), mgr.into_planner(), &[]).unwrap();
    assert_eq!(mgr.phase(), ManagerPhase::Running);
    assert!(sends(&eff).is_empty());
}

#[test]
fn restore_mid_adapt_probes_every_participant_and_rearms_the_timer() {
    let (u, mgr) = world_two_agents();
    let mut live = ManagerCore::new(ProtoTiming::default(), mgr.into_planner());
    let eff = live.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let journal = journal_records(&eff);
    assert!(matches!(journal.last(), Some(JournalRecord::StepStarted { .. })), "{journal:?}");

    let (mut mgr, eff) =
        ManagerCore::restore(ProtoTiming::default(), live.into_planner(), &journal).unwrap();
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    let probes = sends(&eff);
    assert_eq!(probes.len(), 2, "one QueryState per participant: {probes:?}");
    assert!(probes.iter().all(|(_, m)| matches!(m, ProtoMsg::QueryState)));
    let _ = timer_token(&eff); // lost probes degrade into the timeout ladder

    // Agent 0 already adapted before the crash; agent 1 never got its Reset.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::StateReport {
            engaged: Some(step),
            adapted: true,
            failed: false,
            last_completed: None,
        },
    });
    assert!(sends(&eff).is_empty(), "adapted participant is simply counted: {eff:?}");
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 1,
        msg: ProtoMsg::StateReport {
            engaged: None,
            adapted: false,
            failed: false,
            last_completed: None,
        },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(1, ProtoMsg::Reset { .. })]), "idle participant is re-reset: {s:?}");
    // The step then converges normally.
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::AdaptDone { step } });
    let _ = mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step } });
    let eff = mgr.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::ResumeDone { step } });
    assert!(outcome(&eff).expect("completes after reconciliation").success);
}

#[test]
fn restore_after_rollback_issued_reissues_rollback_not_resume() {
    // The satellite scenario: crash between "rollback issued" and "rollback
    // done". The restored manager must drive the rollback to completion —
    // never resume a step that was condemned before the crash.
    let (u, mgr) = world_two_agents();
    let mut live = ManagerCore::new(ProtoTiming::default(), mgr.into_planner());
    let eff = live.on_event(ManagerEvent::Request {
        source: u.config_of(&["X1", "Y1"]),
        target: u.config_of(&["X2", "Y2"]),
    });
    let step = reset_step(&eff);
    let mut journal = journal_records(&eff);
    let eff =
        live.on_event(ManagerEvent::AgentMsg { agent: 1, msg: ProtoMsg::FailToReset { step } });
    journal.extend(journal_records(&eff));
    assert!(matches!(journal.last(), Some(JournalRecord::RollbackIssued { .. })), "{journal:?}");

    let (mut mgr, eff) =
        ManagerCore::restore(ProtoTiming::default(), live.into_planner(), &journal).unwrap();
    assert_eq!(mgr.phase(), ManagerPhase::RollingBack);
    assert!(sends(&eff).iter().all(|(_, m)| matches!(m, ProtoMsg::QueryState)));

    // Agent 0 is still holding the step: it gets the rollback again. No
    // Resume may ever be sent from this state.
    let eff = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 0,
        msg: ProtoMsg::StateReport {
            engaged: Some(step),
            adapted: true,
            failed: false,
            last_completed: None,
        },
    });
    let s = sends(&eff);
    assert!(matches!(s[..], [(0, ProtoMsg::Rollback { .. })]), "{s:?}");
    // Agent 1 (the fail-to-reset reporter) rejoined idle: nothing to undo,
    // its rollback obligation is discharged synthetically.
    let _ = mgr.on_event(ManagerEvent::AgentMsg {
        agent: 1,
        msg: ProtoMsg::StateReport {
            engaged: None,
            adapted: false,
            failed: false,
            last_completed: None,
        },
    });
    let eff =
        mgr.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::RollbackDone { step } });
    let retry = reset_step(&eff);
    assert_ne!(retry, step, "ladder continues with the retry rung after the rollback");
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
}

#[test]
fn restore_between_decisions_retakes_the_decision_live() {
    // Journal ends at StepCommitted: the crash swallowed the next step's
    // resets. Restore must re-take the (deterministic) decision and re-send.
    let (u, mgr) = world();
    let mut live = ManagerCore::new(ProtoTiming::default(), mgr.into_planner());
    let eff = live.on_event(ManagerEvent::Request {
        source: u.config_of(&["A"]),
        target: u.config_of(&["C"]),
    });
    let s1 = reset_step(&eff);
    let mut journal = journal_records(&eff);
    let _ =
        live.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::AdaptDone { step: s1 } });
    let eff =
        live.on_event(ManagerEvent::AgentMsg { agent: 0, msg: ProtoMsg::ResumeDone { step: s1 } });
    journal.extend(journal_records(&eff));
    let s2 = reset_step(&eff);
    // Truncate to the commit: the dead incarnation decided the commit but
    // its second StepStarted record (and resets) never made it out.
    let cut = journal
        .iter()
        .position(|r| matches!(r, JournalRecord::StepCommitted { .. }))
        .expect("first step committed")
        + 1;
    let (mgr, eff) =
        ManagerCore::restore(ProtoTiming::default(), live.into_planner(), &journal[..cut]).unwrap();
    assert_eq!(mgr.phase(), ManagerPhase::Adapting);
    assert_eq!(reset_step(&eff), s2, "same attempt id as the uninterrupted run");
    assert!(
        journal_records(&eff).iter().any(|r| matches!(r, JournalRecord::StepStarted { .. })),
        "the re-taken decision is re-journaled"
    );
}

#[test]
fn restore_rejects_a_journal_the_planner_cannot_replay() {
    let (u, mgr) = world();
    let journal = vec![
        JournalRecord::Request { source: u.config_of(&["A"]), target: u.config_of(&["C"]) },
        JournalRecord::PathSelected { actions: vec![sada_plan::ActionId(99)] },
    ];
    let err = ManagerCore::restore(ProtoTiming::default(), mgr.into_planner(), &journal)
        .expect_err("foreign path must not replay");
    assert!(err.contains("record 1"), "{err}");
}

#[test]
fn crash_at_every_journal_prefix_converges_to_the_uninterrupted_config() {
    // The acceptance property, exhaustively over crash points, for both
    // fixture worlds on the happy path.
    for two_agents in [false, true] {
        let none = HashSet::new();
        let (final_config, journal) = uninterrupted(two_agents, &none);
        assert!(matches!(journal.last(), Some(JournalRecord::Outcome { success: true, .. })));
        for crash_at in 1..=journal.len() {
            let (config, replayed) = crash_then_restore(two_agents, &none, crash_at);
            assert_eq!(config, final_config, "crash at prefix {crash_at} diverged");
            assert_eq!(replayed, journal, "journal after crash at {crash_at} diverged");
        }
    }
}

mod replay_equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite property: for any pattern of fail-to-reset faults and
        /// any crash point, replay(prefix) + reconciliation + live
        /// completion reaches the same final configuration — and writes the
        /// same journal — as the uninterrupted run.
        #[test]
        fn replay_prefix_then_live_completion_matches_uninterrupted(
            two_agents in any::<bool>(),
            fail_mask in 0u8..64,
        ) {
            let fail_steps: HashSet<u64> =
                (0..6).filter(|b| fail_mask & (1 << b) != 0).map(|b| b + 1).collect();
            let (final_config, journal) = uninterrupted(two_agents, &fail_steps);
            for crash_at in 1..=journal.len() {
                let (config, replayed) = crash_then_restore(two_agents, &fail_steps, crash_at);
                prop_assert_eq!(&config, &final_config, "crash at prefix {} diverged", crash_at);
                prop_assert_eq!(&replayed, &journal, "journal after crash at {} diverged", crash_at);
            }
        }
    }
}
