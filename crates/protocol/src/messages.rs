//! Wire messages between the adaptation manager and its agents.

use std::fmt;

use sada_expr::CompId;
use sada_plan::ActionId;

/// Identifies one adaptation session at the fleet control plane.
///
/// The single-adaptation stack predates sessions; everything it does runs
/// as [`SessionId::SOLO`] (session 0), which the journal text codec and the
/// JSONL trace codec both elide so pre-fleet artifacts stay byte-identical.
/// The control plane in `sada-fleet` allocates nonzero ids, one per
/// admitted adaptation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The implicit session of a single-adaptation run.
    pub const SOLO: SessionId = SessionId(0);
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Identifies one *execution attempt* of one adaptation step.
///
/// Retried steps get fresh ids so stale acknowledgements from an earlier
/// attempt cannot be confused with the current one (the manager ignores
/// mismatched ids; agents re-acknowledge duplicates of the current id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StepId(pub u64);

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step#{}", self.0)
    }
}

/// The slice of an adaptive action that one process must perform: which of
/// its components to remove and add, and whether the global safe condition
/// requires draining in-flight traffic first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAction {
    /// The distributed action this local action belongs to.
    pub action: ActionId,
    /// Components this process removes during its in-action.
    pub removes: Vec<CompId>,
    /// Components this process adds during its in-action.
    pub adds: Vec<CompId>,
    /// When true, the local safe state is not enough: the process must also
    /// wait for the global safe condition (e.g. "the receiver has received
    /// all the datagram packets that the sender has sent", Section 3.2).
    pub needs_global_drain: bool,
}

impl LocalAction {
    /// The inverse local action, applied during rollback.
    pub fn inverse(&self) -> LocalAction {
        LocalAction {
            action: self.action,
            removes: self.adds.clone(),
            adds: self.removes.clone(),
            needs_global_drain: self.needs_global_drain,
        }
    }
}

/// Protocol messages (the `Courier`-font names of Figures 1 and 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Manager → agent: begin the step — perform the pre-action and drive
    /// the process toward its (local + global) safe state. `solo` tells the
    /// agent it is the only participant, so it may resume without waiting
    /// for `Resume` (Figure 1's direct adapted → resuming arc).
    Reset {
        /// The step attempt this message belongs to.
        step: StepId,
        /// What this process must do.
        action: LocalAction,
        /// True when this agent is the only participant.
        solo: bool,
    },
    /// Agent → manager: the process is blocked in its safe state.
    ResetDone {
        /// Echoed step attempt.
        step: StepId,
    },
    /// Agent → manager: the local in-action completed; process blocked in
    /// the adapted state (unless solo).
    AdaptDone {
        /// Echoed step attempt.
        step: StepId,
    },
    /// Manager → agent: all participants adapted; resume full operation.
    Resume {
        /// The step attempt being resumed.
        step: StepId,
    },
    /// Agent → manager: full operation restored; post-action performed.
    ResumeDone {
        /// Echoed step attempt.
        step: StepId,
    },
    /// Manager → agent: abort the step — restore the state prior to the
    /// adaptation and resume.
    Rollback {
        /// The step attempt being aborted.
        step: StepId,
    },
    /// Agent → manager: rollback finished; process running as before.
    RollbackDone {
        /// Echoed step attempt.
        step: StepId,
    },
    /// Agent → manager: the process cannot reach a safe state in reasonable
    /// time (a long critical communication segment) — Section 4.4's
    /// fail-to-reset failure.
    FailToReset {
        /// Echoed step attempt.
        step: StepId,
    },
    /// Agent → manager: the process crashed and came back up under a new
    /// incarnation. `last_completed` is the most recent step attempt the
    /// agent committed to durable storage before the crash — everything
    /// after it (an uncommitted in-action, blocking state, timers) was
    /// volatile and is gone. The manager answers by resynchronizing the
    /// agent into the current step or, if the crash already tripped the
    /// timeout ladder, by letting the ordinary abort/rollback handling run.
    Rejoin {
        /// Last step the agent fully completed before crashing, if any.
        last_completed: Option<StepId>,
    },
    /// Manager → agent: a restored manager incarnation probing the agent's
    /// actual protocol position during its reconciliation round. Stepless:
    /// the agent answers from whatever state it is in.
    QueryState,
    /// Agent → manager: answer to [`ProtoMsg::QueryState`]. A snapshot of
    /// the agent's protocol position, from which the manager resolves
    /// applied-but-uncommitted steps (rollback before the first resume,
    /// run-to-completion after it).
    StateReport {
        /// The step attempt the agent is currently engaged in, if any.
        engaged: Option<StepId>,
        /// True when the engaged step's local in-action has completed (the
        /// agent is at or past the adapted state).
        adapted: bool,
        /// True when the agent failed to reset for the engaged step.
        failed: bool,
        /// Last step attempt the agent fully committed, if any.
        last_completed: Option<StepId>,
    },
}

impl ProtoMsg {
    /// The step attempt the message refers to, if it refers to one.
    ///
    /// [`ProtoMsg::Rejoin`] and the reconciliation pair
    /// ([`ProtoMsg::QueryState`] / [`ProtoMsg::StateReport`]) are the only
    /// stepless messages: a restarted process (agent or manager) does not
    /// know its peer's current attempt, so these must pass the
    /// stale-step filters unconditionally. `StateReport::engaged` names a
    /// step, but as payload the *receiver* judges, not as a filter key.
    pub fn step(&self) -> Option<StepId> {
        match self {
            ProtoMsg::Reset { step, .. }
            | ProtoMsg::ResetDone { step }
            | ProtoMsg::AdaptDone { step }
            | ProtoMsg::Resume { step }
            | ProtoMsg::ResumeDone { step }
            | ProtoMsg::Rollback { step }
            | ProtoMsg::RollbackDone { step }
            | ProtoMsg::FailToReset { step } => Some(*step),
            ProtoMsg::Rejoin { .. } | ProtoMsg::QueryState | ProtoMsg::StateReport { .. } => None,
        }
    }
}

/// The combined wire format carried by the simulated network: protocol
/// traffic multiplexed with application traffic of type `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire<M> {
    /// Manager/agent coordination, stamped with the sender's incarnation
    /// number. A process starts at epoch 0 and bumps it on every restart;
    /// receivers track the highest epoch seen per peer and discard anything
    /// older, so pre-crash traffic still in flight cannot be mistaken for
    /// the restarted process's messages.
    Proto {
        /// Sender's incarnation number.
        epoch: u64,
        /// Adaptation session the message belongs to. Manager-side senders
        /// stamp their session; agents echo the session of the step they
        /// are engaged in, so a control plane hosting many sessions can
        /// route each reply to the right embedded manager core.
        /// [`SessionId::SOLO`] everywhere in single-adaptation runs.
        session: SessionId,
        /// The protocol message.
        msg: ProtoMsg,
    },
    /// Application payload (video packets in the case study).
    App(M),
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::CompId;

    fn la() -> LocalAction {
        LocalAction {
            action: ActionId(0),
            removes: vec![CompId::from_index(1)],
            adds: vec![CompId::from_index(2)],
            needs_global_drain: true,
        }
    }

    #[test]
    fn inverse_swaps_adds_and_removes() {
        let a = la();
        let inv = a.inverse();
        assert_eq!(inv.removes, a.adds);
        assert_eq!(inv.adds, a.removes);
        assert_eq!(inv.inverse(), a, "involution");
    }

    #[test]
    fn step_accessor_covers_all_variants() {
        let s = StepId(9);
        let msgs = vec![
            ProtoMsg::Reset { step: s, action: la(), solo: false },
            ProtoMsg::ResetDone { step: s },
            ProtoMsg::AdaptDone { step: s },
            ProtoMsg::Resume { step: s },
            ProtoMsg::ResumeDone { step: s },
            ProtoMsg::Rollback { step: s },
            ProtoMsg::RollbackDone { step: s },
            ProtoMsg::FailToReset { step: s },
        ];
        for m in msgs {
            assert_eq!(m.step(), Some(s));
        }
        assert_eq!(s.to_string(), "step#9");
    }

    #[test]
    fn rejoin_is_stepless() {
        assert_eq!(ProtoMsg::Rejoin { last_completed: None }.step(), None);
        assert_eq!(ProtoMsg::Rejoin { last_completed: Some(StepId(3)) }.step(), None);
    }

    #[test]
    fn reconciliation_messages_are_stepless() {
        // A restored manager probes agents whose step bookkeeping it cannot
        // assume; both directions must bypass every stale-step filter.
        assert_eq!(ProtoMsg::QueryState.step(), None);
        let report = ProtoMsg::StateReport {
            engaged: Some(StepId(4)),
            adapted: true,
            failed: false,
            last_completed: Some(StepId(3)),
        };
        assert_eq!(report.step(), None);
    }

    #[test]
    fn wire_multiplexes() {
        let w: Wire<u32> = Wire::App(7);
        assert_eq!(w, Wire::App(7));
        let p: Wire<u32> = Wire::Proto {
            epoch: 0,
            session: SessionId::SOLO,
            msg: ProtoMsg::ResetDone { step: StepId(1) },
        };
        assert!(matches!(p, Wire::Proto { .. }));
        // Same message under a later incarnation is a different wire value.
        let p1: Wire<u32> = Wire::Proto {
            epoch: 1,
            session: SessionId::SOLO,
            msg: ProtoMsg::ResetDone { step: StepId(1) },
        };
        assert_ne!(p, p1);
        // And so is the same message under a different session.
        let p2: Wire<u32> = Wire::Proto {
            epoch: 0,
            session: SessionId(3),
            msg: ProtoMsg::ResetDone { step: StepId(1) },
        };
        assert_ne!(p, p2);
        assert_eq!(SessionId(3).to_string(), "session#3");
        assert_eq!(SessionId::default(), SessionId::SOLO);
    }
}
