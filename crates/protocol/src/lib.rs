//! # sada-proto — the safe adaptation runtime protocol
//!
//! The realization phase of *Enabling Safe Dynamic Component-Based Software
//! Adaptation* (DSN 2004, Sections 4.3–4.4): a centralized **adaptation
//! manager** coordinates per-process **agents** so that every adaptive
//! action of a planned safe adaptation path executes in its global safe
//! state, with rollback and re-planning when failures strike.
//!
//! * [`AgentCore`] — Figure 1's agent state machine
//!   (running → resetting → safe → adapted → resuming), pure and
//!   transport-free.
//! * [`ManagerCore`] — Figure 2's manager state machine, including the
//!   Section 4.4 failure ladder: retransmit on timeout; abort + rollback on
//!   loss-of-message or fail-to-reset before the first `resume`; run to
//!   completion after it; then retry the step once, try the next-cheapest
//!   path, try to return to the source configuration, and finally wait for
//!   the user.
//! * [`SagPlanner`] — plugs the `sada-plan` SAG + Yen ranking into the
//!   manager's re-planning interface.
//! * [`ManagerActor`] / [`ScriptedAgent`] — simnet adapters used by the
//!   protocol tests, benches, and (for the manager) the video case study.
//!
//! ## Crash faults and recovery
//!
//! Beyond the paper's two failure classes (loss-of-message, fail-to-reset),
//! the protocol tolerates *process crashes* injected by `sada-simnet`'s
//! fault plans. Every wire message travels as [`Wire::Proto`] stamped with
//! the sender's **epoch** (incarnation number); receivers track the highest
//! epoch per peer and discard older traffic, so pre-crash messages still in
//! flight cannot masquerade as the restarted process. A restarted agent
//! announces [`ProtoMsg::Rejoin`] carrying the last step it durably
//! completed; the manager resynchronizes it into the current phase
//! (re-`Reset` while adapting or resuming, re-`Rollback` while rolling
//! back) or — when the process stays down past the phase timeout — falls
//! back to the existing Section 4.4 ladder, treating the silence as
//! loss-of-message. Either way the Section 3.3 safety argument is
//! untouched: a crash can only *remove* uncommitted work, never produce an
//! in-action outside its safe state.
//!
//! The *manager* survives crashes too. Every decision point (request
//! accepted, path selected, step dispatched, resume issued, step committed,
//! rollback issued/complete, outcome) is written ahead of the messages it
//! covers to an **adaptation journal** ([`JournalRecord`], emitted as
//! [`ManagerEffect::Journal`]; the host picks the durability medium and the
//! text codec [`encode_journal`]/[`parse_journal`] makes it replayable).
//! After a crash, [`ManagerCore::restore`] replays the journal back to the
//! exact phase/step the dead incarnation had decided, then runs a
//! **reconciliation round**: [`ProtoMsg::QueryState`] probes every
//! participant of the in-flight step and each [`ProtoMsg::StateReport`] is
//! resolved by the paper's rule — steps unconfirmed before the first
//! `resume` are redone or rolled back, steps past it run to completion —
//! after which the restored manager (under a bumped epoch) rejoins the
//! ordinary recovery ladder.
//!
//! The paper's equivalence theorem (Section 3.3) is validated end to end:
//! integration tests record every in-action and configuration the protocol
//! produces and feed them to `sada-model`'s independent [`SafetyAuditor`];
//! a chaos sweep at the workspace root replays hundreds of random fault
//! plans against the same auditor.
//!
//! [`SafetyAuditor`]: sada_model::SafetyAuditor

mod agent;
mod journal;
mod manager;
#[cfg(test)]
mod manager_tests;
mod messages;
mod plan_adapter;
mod relay;
mod sim;

pub use agent::{state_tag as agent_state_tag, AgentCore, AgentEffect, AgentEvent, AgentState};
pub use journal::{
    encode_global_journal, encode_journal, encode_session_journal, parse_global_journal,
    parse_journal, parse_session_journal, GlobalRecord, JournalRecord, SessionRecord,
};
pub use manager::{
    AdaptationPlanner, ManagerCore, ManagerEffect, ManagerEvent, ManagerPhase, Outcome,
    PlannedStep, ProtoTiming,
};
pub use messages::{LocalAction, ProtoMsg, SessionId, StepId, Wire};
pub use plan_adapter::SagPlanner;
pub use relay::RelayActor;
pub use sim::{
    AgentTiming, ManagerActor, ScriptedAgent, TAG_ACT, TAG_REJOIN, TAG_RESUME, TAG_ROLLBACK,
    TAG_SAFE,
};
// The retry/breaker policy vocabulary is owned by the resilience crate;
// re-exported here so protocol embedders configure timing from one import.
pub use sada_resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, ReannouncePolicy, RetryMode, RetryPolicy,
    RttEstimator,
};
