//! The adaptation agent state machine (the paper's Figure 1).
//!
//! `AgentCore` is a *pure* state machine: it consumes [`AgentEvent`]s (wire
//! messages plus notifications from the local process) and emits
//! [`AgentEffect`]s (wire replies plus commands to the local process). The
//! actual blocking, draining and filter swapping is done by the embedding
//! process (a simnet actor in this repository); this split is what lets the
//! test suite cover every arc of the diagram, including the dashed failure
//! arcs, without a network.

use sada_obs::{AgentStateTag, Payload, ProtoEvent};

use crate::messages::{LocalAction, ProtoMsg, StepId};

/// The observability tag for an agent state (exported so embedding actors
/// outside this crate — e.g. the video clients — can emit synthetic
/// transitions for crash recovery).
pub fn state_tag(s: AgentState) -> AgentStateTag {
    match s {
        AgentState::Running => AgentStateTag::Running,
        AgentState::Resetting => AgentStateTag::Resetting,
        AgentState::Safe => AgentStateTag::Safe,
        AgentState::Adapted => AgentStateTag::Adapted,
        AgentState::Resuming => AgentStateTag::Resuming,
        AgentState::RollingBack => AgentStateTag::RollingBack,
        AgentState::FailedReset => AgentStateTag::FailedReset,
    }
}

/// The agent states of Figure 1 (plus the two failure-handling states the
/// figure draws as dashed transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// Full operation; no adaptation in progress.
    Running,
    /// Pre-action done; driving the process toward its safe state (partial
    /// operation).
    Resetting,
    /// Blocked in the (local + global) safe state; in-action underway.
    Safe,
    /// In-action finished; blocked awaiting `resume` (skipped for solo
    /// steps).
    Adapted,
    /// Restoring full operation.
    Resuming,
    /// Undoing the step after a `rollback` command.
    RollingBack,
    /// Reported fail-to-reset; awaiting the manager's rollback.
    FailedReset,
}

/// Inputs to the agent: wire messages and local-process notifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentEvent {
    /// A protocol message arrived from the manager.
    Msg(ProtoMsg),
    /// The local process reached its local safe state *and* the global safe
    /// condition required by the current action.
    SafeReached,
    /// The local in-action completed.
    InActionDone,
    /// Full operation has been restored.
    ResumeFinished,
    /// The rollback finished; the process is as it was before the step.
    RollbackFinished,
    /// The process cannot reach a safe state in reasonable time
    /// (fail-to-reset, Section 4.4).
    CannotReset,
}

/// Outputs of the agent: wire replies and commands to the local process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentEffect {
    /// Send a protocol message to the manager.
    Send(ProtoMsg),
    /// Perform the pre-action (initialize new components, …) — must not
    /// interfere with functional behaviour.
    PreAction(LocalAction),
    /// Start driving the process to its safe state (set the "resetting"
    /// flag, stop at the next packet boundary, drain if required).
    BeginReset(LocalAction),
    /// Perform the structural in-action (the actual recomposition).
    DoInAction(LocalAction),
    /// Restore full operation (unblock the process).
    DoResume,
    /// Perform the post-action (destroy old components, …).
    PostAction(LocalAction),
    /// Undo the step and unblock. `Some(inverse)` when the in-action had
    /// already executed and must be structurally reverted; `None` when no
    /// structural change happened (only blocking/draining to undo).
    DoRollback(Option<LocalAction>),
}

/// The agent half of the realization-phase protocol.
#[derive(Debug)]
pub struct AgentCore {
    state: AgentState,
    current: Option<(StepId, LocalAction, bool)>,
    in_action_done: bool,
    /// Most recently fully-completed step, for idempotent re-acks when the
    /// manager retransmits after losing our answer.
    last_completed: Option<StepId>,
    /// A new attempt received mid-rollback (the manager moved on while our
    /// acks were lost): started as soon as the rollback finishes.
    pending_restart: Option<(StepId, LocalAction, bool)>,
    /// Untimed observability payloads accumulated since the last drain; the
    /// embedding stamps them (virtual time, actor) and emits them on its bus.
    obs: Vec<Payload>,
}

impl Default for AgentCore {
    fn default() -> Self {
        Self::new()
    }
}

impl AgentCore {
    /// A fresh agent in the running state.
    pub fn new() -> Self {
        AgentCore {
            state: AgentState::Running,
            current: None,
            in_action_done: false,
            last_completed: None,
            pending_restart: None,
            obs: Vec::new(),
        }
    }

    /// Rebuilds the state machine a process recovers after a crash: back in
    /// the running state with only the durably-recorded `last_completed`
    /// step surviving. Any step that was in progress — its blocking state,
    /// an uncommitted in-action — was volatile and is simply gone; the
    /// restarted agent relies on the manager's rejoin handling (or plain
    /// `Reset` retransmissions) to be resynchronized.
    pub fn restore(last_completed: Option<StepId>) -> Self {
        AgentCore { last_completed, ..AgentCore::new() }
    }

    /// Current protocol state.
    pub fn state(&self) -> AgentState {
        self.state
    }

    /// The step attempt in progress, if any.
    pub fn current_step(&self) -> Option<StepId> {
        self.current.as_ref().map(|(s, _, _)| *s)
    }

    /// The most recent step this agent fully completed (acknowledged with
    /// `ResumeDone`) — the durable part of its protocol state.
    pub fn last_completed(&self) -> Option<StepId> {
        self.last_completed
    }

    /// The structural change that has been applied but not yet committed:
    /// the current step's in-action after it ran, before `ResumeFinished`
    /// (or a rollback) resolved it. This is exactly what a crash destroys
    /// under the volatile-uncommitted failure model, so embedding processes
    /// use it in their crash hooks to revert ground-truth bookkeeping.
    pub fn uncommitted_action(&self) -> Option<&LocalAction> {
        if self.in_action_done {
            self.current.as_ref().map(|(_, a, _)| a)
        } else {
            None
        }
    }

    /// Takes the observability payloads produced since the last drain, in
    /// emission order. The core is pure and has no clock; whoever embeds it
    /// stamps these and forwards them to the bus.
    pub fn drain_obs(&mut self) -> Vec<Payload> {
        std::mem::take(&mut self.obs)
    }

    /// Feeds one event, returning the effects to perform **in order**.
    pub fn on_event(&mut self, ev: AgentEvent) -> Vec<AgentEffect> {
        let before = self.state;
        let eff = self.dispatch(ev);
        // Every arc of Figure 1 moves the state at most once per event, so a
        // before/after diff captures the full transition history.
        if self.state != before {
            self.obs.push(Payload::Proto(ProtoEvent::AgentState {
                from: state_tag(before),
                to: state_tag(self.state),
                step: self.current_step().map(|s| s.0),
            }));
        }
        eff
    }

    fn dispatch(&mut self, ev: AgentEvent) -> Vec<AgentEffect> {
        use AgentEffect as E;
        use AgentEvent::*;
        use AgentState::*;
        match (self.state, ev) {
            // ---- reconciliation ---------------------------------------------
            // A restored manager incarnation probing where we actually stand.
            // Answered from any state; the report is a snapshot, not a
            // transition, so it never moves the state machine.
            (_, Msg(ProtoMsg::QueryState)) => {
                vec![E::Send(ProtoMsg::StateReport {
                    engaged: self.current_step(),
                    adapted: self.uncommitted_action().is_some(),
                    failed: self.state == FailedReset,
                    last_completed: self.last_completed,
                })]
            }

            // ---- happy path -------------------------------------------------
            (Running, Msg(ProtoMsg::Reset { step, action, solo })) => {
                // Duplicate of a step we already finished: re-acknowledge.
                if self.last_completed == Some(step) {
                    return vec![
                        E::Send(ProtoMsg::AdaptDone { step }),
                        E::Send(ProtoMsg::ResumeDone { step }),
                    ];
                }
                self.state = Resetting;
                self.current = Some((step, action.clone(), solo));
                self.in_action_done = false;
                vec![E::PreAction(action.clone()), E::BeginReset(action)]
            }
            (Resetting, SafeReached) => {
                let (step, action, _) = self.current.clone().expect("resetting implies a step");
                self.state = Safe;
                vec![E::Send(ProtoMsg::ResetDone { step }), E::DoInAction(action)]
            }
            (Safe, InActionDone) => {
                let (step, _, solo) = self.current.clone().expect("safe implies a step");
                self.in_action_done = true;
                if solo {
                    // Only participant: adapted -> resuming without blocking.
                    self.state = Resuming;
                    vec![E::Send(ProtoMsg::AdaptDone { step }), E::DoResume]
                } else {
                    self.state = Adapted;
                    vec![E::Send(ProtoMsg::AdaptDone { step })]
                }
            }
            (Adapted, Msg(ProtoMsg::Resume { step })) if self.matches(step) => {
                self.state = Resuming;
                vec![E::DoResume]
            }
            (Resuming, ResumeFinished) => {
                let (step, action, _) = self.current.take().expect("resuming implies a step");
                self.state = Running;
                self.last_completed = Some(step);
                vec![E::Send(ProtoMsg::ResumeDone { step }), E::PostAction(action)]
            }

            // ---- failure handling (dashed arcs) -----------------------------
            (Resetting, CannotReset) => {
                let (step, _, _) = self.current.clone().expect("resetting implies a step");
                self.state = FailedReset;
                vec![E::Send(ProtoMsg::FailToReset { step })]
            }
            (Resetting | Safe | Adapted | FailedReset, Msg(ProtoMsg::Rollback { step }))
                if self.matches(step) =>
            {
                let (_, action, _) = self.current.clone().expect("step in progress");
                self.state = RollingBack;
                // Only undo the structural change if it actually happened.
                let undo = if self.in_action_done { Some(action.inverse()) } else { None };
                vec![E::DoRollback(undo)]
            }
            (RollingBack, RollbackFinished) => {
                let (step, _, _) = self.current.take().expect("rolling back implies a step");
                self.in_action_done = false;
                let mut eff = vec![E::Send(ProtoMsg::RollbackDone { step })];
                if let Some((new_step, action, solo)) = self.pending_restart.take() {
                    // Implicitly-aborted attempt undone: start the new one.
                    self.state = Resetting;
                    self.current = Some((new_step, action.clone(), solo));
                    eff.push(E::PreAction(action.clone()));
                    eff.push(E::BeginReset(action));
                } else {
                    self.state = Running;
                }
                eff
            }
            // Rollback for a step we are not engaged in. Two very different
            // situations share this state:
            (Running, Msg(ProtoMsg::Rollback { step })) => {
                if self.last_completed == Some(step) {
                    // The step ran to completion here — a solo participant
                    // resumes autonomously, so it can commit before a
                    // rollback order issued by a manager that never heard
                    // its (lost) acks arrives. Resume was the point of no
                    // return: the post-action already destroyed the old
                    // components and the commit cannot be undone. Re-ack
                    // completion so the manager adopts the commit instead
                    // of believing a rollback that never happened.
                    vec![
                        E::Send(ProtoMsg::AdaptDone { step }),
                        E::Send(ProtoMsg::ResumeDone { step }),
                    ]
                } else {
                    // We never started the step (our Reset was lost):
                    // nothing to undo — acknowledge so the manager moves on.
                    vec![E::Send(ProtoMsg::RollbackDone { step })]
                }
            }

            // A Reset for a *different* attempt while one is in progress:
            // every ack and rollback command of the old attempt was lost and
            // the manager has moved on. Treat it as an implicit abort —
            // undo any structural change, then start the new attempt
            // (liveness: without this the agent would stay blocked forever).
            (
                Resetting | Safe | Adapted | FailedReset,
                Msg(ProtoMsg::Reset { step, action, solo }),
            ) if !self.matches(step) => {
                let (_, old_action, _) = self.current.clone().expect("step in progress");
                self.state = RollingBack;
                self.pending_restart = Some((step, action, solo));
                let undo = if self.in_action_done { Some(old_action.inverse()) } else { None };
                vec![E::DoRollback(undo)]
            }

            // ---- retransmission tolerance -----------------------------------
            // Manager re-sent Reset because our answer was lost: re-ack
            // according to how far we actually got.
            (Resetting, Msg(ProtoMsg::Reset { step, .. })) if self.matches(step) => vec![],
            (Safe, Msg(ProtoMsg::Reset { step, .. })) if self.matches(step) => {
                vec![E::Send(ProtoMsg::ResetDone { step })]
            }
            (Adapted, Msg(ProtoMsg::Reset { step, .. })) if self.matches(step) => {
                vec![E::Send(ProtoMsg::ResetDone { step }), E::Send(ProtoMsg::AdaptDone { step })]
            }
            (FailedReset, Msg(ProtoMsg::Reset { step, .. })) if self.matches(step) => {
                vec![E::Send(ProtoMsg::FailToReset { step })]
            }
            // Duplicate Resume while resuming or after completion.
            (Resuming, Msg(ProtoMsg::Resume { step })) if self.matches(step) => vec![],
            (Running, Msg(ProtoMsg::Resume { step })) => {
                if self.last_completed == Some(step) {
                    vec![E::Send(ProtoMsg::ResumeDone { step })]
                } else {
                    vec![]
                }
            }

            // Anything else (stale step ids, out-of-order junk) is dropped.
            _ => vec![],
        }
    }

    fn matches(&self, step: StepId) -> bool {
        self.current.as_ref().map(|(s, _, _)| *s == step).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_plan::ActionId;

    fn la() -> LocalAction {
        LocalAction {
            action: ActionId(1),
            removes: vec![],
            adds: vec![],
            needs_global_drain: false,
        }
    }

    fn reset(step: u64, solo: bool) -> AgentEvent {
        AgentEvent::Msg(ProtoMsg::Reset { step: StepId(step), action: la(), solo })
    }

    #[test]
    fn happy_path_multi_participant() {
        let mut a = AgentCore::new();
        assert_eq!(a.state(), AgentState::Running);

        let eff = a.on_event(reset(1, false));
        assert_eq!(a.state(), AgentState::Resetting);
        assert!(matches!(eff[0], AgentEffect::PreAction(_)));
        assert!(matches!(eff[1], AgentEffect::BeginReset(_)));

        let eff = a.on_event(AgentEvent::SafeReached);
        assert_eq!(a.state(), AgentState::Safe);
        assert_eq!(eff[0], AgentEffect::Send(ProtoMsg::ResetDone { step: StepId(1) }));
        assert!(matches!(eff[1], AgentEffect::DoInAction(_)));

        let eff = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.state(), AgentState::Adapted, "blocked awaiting resume");
        assert_eq!(eff, vec![AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(1) })]);

        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(1) }));
        assert_eq!(a.state(), AgentState::Resuming);
        assert_eq!(eff, vec![AgentEffect::DoResume]);

        let eff = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(a.state(), AgentState::Running);
        assert_eq!(eff[0], AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(1) }));
        assert!(matches!(eff[1], AgentEffect::PostAction(_)), "post-action after resume");
    }

    #[test]
    fn solo_step_skips_adapted_blocking() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(2, true));
        let _ = a.on_event(AgentEvent::SafeReached);
        let eff = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.state(), AgentState::Resuming, "direct adapted -> resuming");
        assert_eq!(eff[0], AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(2) }));
        assert_eq!(eff[1], AgentEffect::DoResume);
    }

    #[test]
    fn rollback_after_solo_completion_reacks_the_commit() {
        // A solo participant resumes autonomously, so a rollback order can
        // arrive after the step already committed here (the manager never
        // heard our lost acks). Resume was the point of no return: the
        // commit stands, and completion is re-acknowledged so the manager
        // adopts it instead of believing a rollback that never happened.
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(12, true));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let _ = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(a.state(), AgentState::Running);
        assert_eq!(a.last_completed(), Some(StepId(12)));
        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Rollback { step: StepId(12) }));
        assert_eq!(
            eff,
            vec![
                AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(12) }),
                AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(12) }),
            ],
            "a committed step is re-acked as complete, never as rolled back"
        );
        assert_eq!(a.state(), AgentState::Running, "the report does not move the machine");
    }

    #[test]
    fn fail_to_reset_reports_and_awaits_rollback() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(3, false));
        let eff = a.on_event(AgentEvent::CannotReset);
        assert_eq!(a.state(), AgentState::FailedReset);
        assert_eq!(eff, vec![AgentEffect::Send(ProtoMsg::FailToReset { step: StepId(3) })]);
        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Rollback { step: StepId(3) }));
        assert_eq!(a.state(), AgentState::RollingBack);
        // In-action never ran: nothing structural to revert.
        assert_eq!(eff[0], AgentEffect::DoRollback(None));
        let eff = a.on_event(AgentEvent::RollbackFinished);
        assert_eq!(a.state(), AgentState::Running);
        assert_eq!(eff, vec![AgentEffect::Send(ProtoMsg::RollbackDone { step: StepId(3) })]);
    }

    #[test]
    fn rollback_after_in_action_applies_inverse() {
        let mut a = AgentCore::new();
        let action = LocalAction {
            action: ActionId(0),
            removes: vec![sada_expr::CompId::from_index(0)],
            adds: vec![sada_expr::CompId::from_index(1)],
            needs_global_drain: false,
        };
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Reset {
            step: StepId(4),
            action: action.clone(),
            solo: false,
        }));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Rollback { step: StepId(4) }));
        assert_eq!(eff, vec![AgentEffect::DoRollback(Some(action.inverse()))]);
    }

    #[test]
    fn duplicate_reset_reacks_by_progress() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(5, false));
        assert_eq!(a.on_event(reset(5, false)), vec![], "still resetting: silent");
        let _ = a.on_event(AgentEvent::SafeReached);
        assert_eq!(
            a.on_event(reset(5, false)),
            vec![AgentEffect::Send(ProtoMsg::ResetDone { step: StepId(5) })]
        );
        let _ = a.on_event(AgentEvent::InActionDone);
        assert_eq!(
            a.on_event(reset(5, false)),
            vec![
                AgentEffect::Send(ProtoMsg::ResetDone { step: StepId(5) }),
                AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(5) }),
            ]
        );
    }

    #[test]
    fn duplicate_reset_after_completion_reacks_everything() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(6, true));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let _ = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(a.state(), AgentState::Running);
        let eff = a.on_event(reset(6, true));
        assert_eq!(
            eff,
            vec![
                AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(6) }),
                AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(6) }),
            ],
            "completed step: re-ack, do not redo"
        );
    }

    #[test]
    fn duplicate_resume_handling() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(7, false));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(7) }));
        assert_eq!(a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(7) })), vec![]);
        let _ = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(
            a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(7) })),
            vec![AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(7) })]
        );
    }

    #[test]
    fn new_attempt_reset_mid_step_aborts_and_restarts() {
        let mut a = AgentCore::new();
        let action = LocalAction {
            action: ActionId(0),
            removes: vec![sada_expr::CompId::from_index(0)],
            adds: vec![sada_expr::CompId::from_index(1)],
            needs_global_drain: false,
        };
        // Old attempt progresses through its in-action; every ack is "lost".
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Reset {
            step: StepId(20),
            action: action.clone(),
            solo: false,
        }));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.state(), AgentState::Adapted);
        // The manager gave up on attempt 20 and starts attempt 21.
        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Reset {
            step: StepId(21),
            action: action.clone(),
            solo: false,
        }));
        assert_eq!(a.state(), AgentState::RollingBack);
        assert_eq!(
            eff,
            vec![AgentEffect::DoRollback(Some(action.inverse()))],
            "undo the applied change"
        );
        // Rollback finishes: the new attempt begins automatically.
        let eff = a.on_event(AgentEvent::RollbackFinished);
        assert_eq!(a.state(), AgentState::Resetting);
        assert_eq!(a.current_step(), Some(StepId(21)));
        assert_eq!(eff[0], AgentEffect::Send(ProtoMsg::RollbackDone { step: StepId(20) }));
        assert!(matches!(eff[1], AgentEffect::PreAction(_)));
        assert!(matches!(eff[2], AgentEffect::BeginReset(_)));
        // And it can complete normally.
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(21) }));
        let eff = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(eff[0], AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(21) }));
        assert_eq!(a.state(), AgentState::Running);
    }

    #[test]
    fn new_attempt_reset_before_in_action_restarts_without_undo() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(30, false));
        assert_eq!(a.state(), AgentState::Resetting);
        let eff = a.on_event(reset(31, false));
        assert_eq!(eff, vec![AgentEffect::DoRollback(None)], "nothing structural to undo");
        let _ = a.on_event(AgentEvent::RollbackFinished);
        assert_eq!(a.current_step(), Some(StepId(31)));
        assert_eq!(a.state(), AgentState::Resetting);
    }

    #[test]
    fn stale_step_ids_ignored() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(8, false));
        assert_eq!(a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(99) })), vec![]);
        assert_eq!(a.on_event(AgentEvent::Msg(ProtoMsg::Rollback { step: StepId(99) })), vec![]);
        assert_eq!(a.state(), AgentState::Resetting);
    }

    #[test]
    fn rollback_for_unstarted_step_acks_immediately() {
        let mut a = AgentCore::new();
        let eff = a.on_event(AgentEvent::Msg(ProtoMsg::Rollback { step: StepId(10) }));
        assert_eq!(eff, vec![AgentEffect::Send(ProtoMsg::RollbackDone { step: StepId(10) })]);
        assert_eq!(a.state(), AgentState::Running);
    }

    #[test]
    fn uncommitted_action_tracks_the_crash_window() {
        let mut a = AgentCore::new();
        assert!(a.uncommitted_action().is_none());
        let _ = a.on_event(reset(40, false));
        assert!(a.uncommitted_action().is_none(), "nothing applied while resetting");
        let _ = a.on_event(AgentEvent::SafeReached);
        assert!(a.uncommitted_action().is_none(), "in-action scheduled, not applied");
        let _ = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.uncommitted_action(), Some(&la()), "applied but uncommitted");
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(40) }));
        assert_eq!(a.uncommitted_action(), Some(&la()), "still uncommitted while resuming");
        let _ = a.on_event(AgentEvent::ResumeFinished);
        assert!(a.uncommitted_action().is_none(), "commit point passed");
        assert_eq!(a.last_completed(), Some(StepId(40)));
    }

    #[test]
    fn restore_keeps_only_durable_state() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(50, true));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        let _ = a.on_event(AgentEvent::ResumeFinished);
        let _ = a.on_event(reset(51, false));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        // Crash here: step 51 applied but uncommitted; 50 is durable.
        let r = AgentCore::restore(a.last_completed());
        assert_eq!(r.state(), AgentState::Running);
        assert_eq!(r.current_step(), None, "in-progress attempt lost");
        assert!(r.uncommitted_action().is_none());
        assert_eq!(r.last_completed(), Some(StepId(50)));
        // The restored machine still re-acks its completed step on duplicates.
        let mut r = r;
        let eff = r.on_event(reset(50, true));
        assert_eq!(
            eff,
            vec![
                AgentEffect::Send(ProtoMsg::AdaptDone { step: StepId(50) }),
                AgentEffect::Send(ProtoMsg::ResumeDone { step: StepId(50) }),
            ]
        );
    }

    #[test]
    fn query_state_reports_position_without_moving() {
        let mut a = AgentCore::new();
        let q = AgentEvent::Msg(ProtoMsg::QueryState);
        assert_eq!(
            a.on_event(q.clone()),
            vec![AgentEffect::Send(ProtoMsg::StateReport {
                engaged: None,
                adapted: false,
                failed: false,
                last_completed: None,
            })],
            "idle agent reports an empty snapshot"
        );
        let _ = a.on_event(reset(60, false));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.state(), AgentState::Adapted);
        assert_eq!(
            a.on_event(q.clone()),
            vec![AgentEffect::Send(ProtoMsg::StateReport {
                engaged: Some(StepId(60)),
                adapted: true,
                failed: false,
                last_completed: None,
            })]
        );
        assert_eq!(a.state(), AgentState::Adapted, "the probe is not a transition");
        let _ = a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(60) }));
        let _ = a.on_event(AgentEvent::ResumeFinished);
        assert_eq!(
            a.on_event(q),
            vec![AgentEffect::Send(ProtoMsg::StateReport {
                engaged: None,
                adapted: false,
                failed: false,
                last_completed: Some(StepId(60)),
            })]
        );
    }

    #[test]
    fn query_state_reports_failed_reset() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(61, false));
        let _ = a.on_event(AgentEvent::CannotReset);
        assert_eq!(
            a.on_event(AgentEvent::Msg(ProtoMsg::QueryState)),
            vec![AgentEffect::Send(ProtoMsg::StateReport {
                engaged: Some(StepId(61)),
                adapted: false,
                failed: true,
                last_completed: None,
            })]
        );
    }

    #[test]
    fn resume_in_adapted_requires_matching_step() {
        let mut a = AgentCore::new();
        let _ = a.on_event(reset(11, false));
        let _ = a.on_event(AgentEvent::SafeReached);
        let _ = a.on_event(AgentEvent::InActionDone);
        assert_eq!(a.on_event(AgentEvent::Msg(ProtoMsg::Resume { step: StepId(12) })), vec![]);
        assert_eq!(a.state(), AgentState::Adapted, "wrong step id keeps us blocked");
    }
}
