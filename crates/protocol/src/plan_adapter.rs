//! Bridges the eager SAG planner into the manager's [`AdaptationPlanner`]
//! interface and compiles paths into per-process steps.

use std::collections::{BTreeMap, HashSet};

use sada_expr::{CompId, Config};
use sada_model::SystemModel;
use sada_plan::{Action, ActionId, Path, Sag};

use crate::manager::{AdaptationPlanner, PlannedStep};
use crate::messages::LocalAction;

/// An [`AdaptationPlanner`] backed by a fully-built SAG (Yen's algorithm
/// supplies the ranked alternatives the failure ladder consumes) and a
/// [`SystemModel`] for participant assignment.
pub struct SagPlanner {
    sag: Sag,
    actions: Vec<Action>,
    model: SystemModel,
    /// Maps a process (by [`SystemModel`] id index) to the agent index the
    /// manager addresses. Usually the identity.
    agent_of_process: Vec<usize>,
    drain_actions: HashSet<ActionId>,
}

impl SagPlanner {
    /// Builds a planner.
    ///
    /// * `sag` — the safe adaptation graph for this adaptation's scope.
    /// * `actions` — the full action table (indexed by [`ActionId`]).
    /// * `model` — component placement; every component any action touches
    ///   must be placed.
    /// * `agent_of_process` — agent index per process id index.
    /// * `drain_actions` — actions whose global safe condition requires the
    ///   stream to drain (the paper's expensive encoder/decoder compound
    ///   actions, A6–A15 in Table 2).
    pub fn new(
        sag: Sag,
        actions: Vec<Action>,
        model: SystemModel,
        agent_of_process: Vec<usize>,
        drain_actions: HashSet<ActionId>,
    ) -> Self {
        assert_eq!(agent_of_process.len(), model.process_count(), "one agent mapping per process");
        SagPlanner { sag, actions, model, agent_of_process, drain_actions }
    }

    /// The underlying SAG (for reporting).
    pub fn sag(&self) -> &Sag {
        &self.sag
    }

    fn locals_for(&self, action: &Action) -> Vec<(usize, LocalAction)> {
        let needs_drain = self.drain_actions.contains(&action.id());
        let mut per_agent: BTreeMap<usize, (Vec<CompId>, Vec<CompId>)> = BTreeMap::new();
        for &comp in action.removes() {
            let p = self.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.agent_of_process[p.index()]).or_default().0.push(comp);
        }
        for &comp in action.adds() {
            let p = self.model.host_of(comp).expect("touched component must be placed");
            per_agent.entry(self.agent_of_process[p.index()]).or_default().1.push(comp);
        }
        per_agent
            .into_iter()
            .map(|(agent, (removes, adds))| {
                (
                    agent,
                    LocalAction {
                        action: action.id(),
                        removes,
                        adds,
                        needs_global_drain: needs_drain,
                    },
                )
            })
            .collect()
    }
}

impl AdaptationPlanner for SagPlanner {
    /// Candidate paths, cheapest first. This ranking must be a pure function
    /// of `(from, to, k)`: [`ManagerCore::restore`] re-derives a journaled
    /// `PathSelected` decision by re-querying the planner, so a
    /// non-deterministic ranking would make a crashed manager unrecoverable.
    /// Yen's algorithm over the eager SAG satisfies this — ties are broken
    /// by deterministic vertex order, never by iteration over unordered
    /// maps.
    ///
    /// [`ManagerCore::restore`]: crate::ManagerCore::restore
    fn paths(&mut self, from: &Config, to: &Config, k: usize) -> Vec<Path> {
        self.sag.k_shortest_paths(from, to, k)
    }

    fn compile(&mut self, path: &Path) -> Vec<PlannedStep> {
        path.steps
            .iter()
            .map(|s| {
                let action = &self.actions[s.action.index()];
                PlannedStep {
                    action: s.action,
                    from: s.from.clone(),
                    to: s.to.clone(),
                    cost: s.cost,
                    locals: self.locals_for(action),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sada_expr::{enumerate, InvariantSet, Universe};

    fn setup() -> (Universe, SagPlanner) {
        let mut u = Universe::new();
        for n in ["E1", "E2", "D1", "D2"] {
            u.intern(n);
        }
        let inv =
            InvariantSet::parse(&["one_of(E1, E2)", "one_of(D1, D2)", "E2 => D2"], &mut u).unwrap();
        let actions = vec![
            Action::replace(0, "D1->D2", &u.config_of(&["D1"]), &u.config_of(&["D2"]), 10),
            Action::replace(1, "E1->E2", &u.config_of(&["E1"]), &u.config_of(&["E2"]), 10),
            Action::replace(
                2,
                "(E1,D1)->(E2,D2)",
                &u.config_of(&["E1", "D1"]),
                &u.config_of(&["E2", "D2"]),
                100,
            ),
        ];
        let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
        let mut model = SystemModel::new();
        let server = model.add_process("server");
        let client = model.add_process("client");
        model.place_all(&u, &[("E1", server), ("E2", server), ("D1", client), ("D2", client)]);
        let drain: HashSet<ActionId> = [ActionId(2)].into();
        let planner = SagPlanner::new(sag, actions, model, vec![0, 1], drain);
        (u, planner)
    }

    #[test]
    fn paths_ranked_by_cost() {
        let (u, mut p) = setup();
        let src = u.config_of(&["E1", "D1"]);
        let dst = u.config_of(&["E2", "D2"]);
        let paths = p.paths(&src, &dst, 4);
        assert!(paths.len() >= 2);
        assert_eq!(paths[0].cost, 20, "two single replaces beat the pair");
        assert!(paths[1].cost >= paths[0].cost);
    }

    #[test]
    fn compile_assigns_participants_by_placement() {
        let (u, mut p) = setup();
        let src = u.config_of(&["E1", "D1"]);
        let dst = u.config_of(&["E2", "D2"]);
        let path = p.paths(&src, &dst, 1).remove(0);
        let steps = p.compile(&path);
        assert_eq!(steps.len(), 2);
        for step in &steps {
            assert_eq!(step.locals.len(), 1, "single replaces touch one process");
        }
        // D1->D2 runs on the client (agent 1), E1->E2 on the server (agent 0).
        let agents: HashSet<usize> =
            steps.iter().flat_map(|s| s.locals.iter().map(|(a, _)| *a)).collect();
        assert_eq!(agents, [0usize, 1].into());
    }

    #[test]
    fn compound_action_spans_processes_and_drains() {
        let (u, mut p) = setup();
        let pair = Path {
            steps: vec![sada_plan::PathStep {
                from: u.config_of(&["E1", "D1"]),
                to: u.config_of(&["E2", "D2"]),
                action: ActionId(2),
                cost: 100,
            }],
            cost: 100,
        };
        let steps = p.compile(&pair);
        assert_eq!(steps[0].locals.len(), 2, "both processes participate");
        for (_, la) in &steps[0].locals {
            assert!(la.needs_global_drain, "pair actions require draining");
            assert_eq!(la.removes.len(), 1);
            assert_eq!(la.adds.len(), 1);
        }
    }

    #[test]
    fn path_ranking_is_deterministic_across_queries() {
        // Journal replay after a manager crash re-asks the planner for the
        // same candidates; repeated queries must return the identical list.
        let (u, mut p) = setup();
        let src = u.config_of(&["E1", "D1"]);
        let dst = u.config_of(&["E2", "D2"]);
        let first = p.paths(&src, &dst, 8);
        for _ in 0..3 {
            assert_eq!(p.paths(&src, &dst, 8), first, "ranking must be stable");
        }
        let (_, mut fresh) = setup();
        assert_eq!(fresh.paths(&src, &dst, 8), first, "and identical across incarnations");
    }

    use sada_plan::Path;

    #[test]
    #[should_panic(expected = "one agent mapping per process")]
    fn mismatched_agent_table_panics() {
        let (_u, p) = setup();
        let SagPlanner { sag, actions, model, .. } = p;
        let _ = SagPlanner::new(sag, actions, model, vec![0], HashSet::new());
    }
}
