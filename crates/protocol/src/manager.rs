//! The adaptation manager state machine (the paper's Figure 2) with the
//! Section 4.4 failure-handling ladder.
//!
//! Like [`AgentCore`](crate::AgentCore), `ManagerCore` is pure: events in,
//! effects out. Planning is delegated to an [`AdaptationPlanner`] so the
//! manager can re-plan after failures ("try the second minimum adaptation
//! path") without owning the SAG directly.

use std::collections::{BTreeSet, HashSet};

use sada_expr::Config;
use sada_obs::{ManagerPhaseTag, Payload, PlanEvent, ProtoEvent};
use sada_plan::{ActionId, Path};
use sada_simnet::SimDuration;

use sada_resilience::RetryPolicy;

use crate::journal::JournalRecord;
use crate::messages::{LocalAction, ProtoMsg, StepId};

/// The observability tag for a manager phase.
fn phase_tag(p: ManagerPhase) -> ManagerPhaseTag {
    match p {
        ManagerPhase::Running => ManagerPhaseTag::Running,
        ManagerPhase::Adapting => ManagerPhaseTag::Adapting,
        ManagerPhase::Resuming => ManagerPhaseTag::Resuming,
        ManagerPhase::RollingBack => ManagerPhaseTag::RollingBack,
        ManagerPhase::GaveUp => ManagerPhaseTag::GaveUp,
    }
}

/// One step of a compiled adaptation plan: the action, the configuration
/// transition it realizes, and each participating agent's local action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedStep {
    /// The distributed adaptive action.
    pub action: ActionId,
    /// Configuration before the step.
    pub from: Config,
    /// Configuration after the step.
    pub to: Config,
    /// Cost weight (for reporting).
    pub cost: u64,
    /// `(agent index, local action)` for every participating process.
    pub locals: Vec<(usize, LocalAction)>,
}

/// Supplies candidate paths and compiles them into per-process steps.
///
/// Implemented over an eager SAG by [`SagPlanner`](crate::SagPlanner); tests
/// use hand-rolled implementations to script failure scenarios.
pub trait AdaptationPlanner {
    /// Up to `k` loopless paths from `from` to `to`, cheapest first.
    fn paths(&mut self, from: &Config, to: &Config, k: usize) -> Vec<Path>;

    /// Compiles a path into executable steps with participant assignments.
    fn compile(&mut self, path: &Path) -> Vec<PlannedStep>;
}

/// Timing and retry policy for the realization phase.
#[derive(Debug, Clone, Copy)]
pub struct ProtoTiming {
    /// Retransmission deadline schedule (the paper's time-out mechanism):
    /// base interval, exponential backoff cap, deterministic jitter seed,
    /// and whether the base is the fixed ladder or an RTT-adaptive hint
    /// supplied by the host via [`ManagerCore::set_timeout_hint`].
    pub retry: RetryPolicy,
    /// Retransmissions of `reset` before declaring a loss-of-message
    /// failure ("several attempts to send the messages").
    pub send_retries: u32,
    /// Retransmissions of `resume` before the manager force-completes the
    /// step — after the first resume the adaptation must run to completion,
    /// so the manager never rolls back here.
    pub resume_force_limit: u32,
    /// Retransmissions of `rollback` before assuming the rollback happened.
    pub rollback_force_limit: u32,
}

impl Default for ProtoTiming {
    fn default() -> Self {
        ProtoTiming {
            retry: RetryPolicy::default(),
            send_retries: 3,
            resume_force_limit: 10,
            rollback_force_limit: 10,
        }
    }
}

/// The manager's coarse protocol phase (Figure 2's states; `Preparing` is
/// synchronous in this implementation and `Adapted` is transient).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerPhase {
    /// No adaptation in progress.
    Running,
    /// Resets sent; collecting `adapt done` from every participant.
    Adapting,
    /// Resumes sent (or solo auto-resume pending); collecting `resume done`.
    Resuming,
    /// Rollback commands sent; collecting `rollback done`.
    RollingBack,
    /// All recovery options exhausted; waiting for user intervention.
    GaveUp,
}

/// Final report of an adaptation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// True when the system reached the requested target configuration.
    pub success: bool,
    /// True when the manager exhausted every recovery option and stopped at
    /// the current safe configuration awaiting the user.
    pub gave_up: bool,
    /// The configuration the system ended in (always safe).
    pub final_config: Config,
    /// Steps successfully committed.
    pub steps_committed: u32,
    /// Non-fatal anomalies (e.g. force-completed resumes).
    pub warnings: Vec<String>,
}

/// Inputs to the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerEvent {
    /// An adaptation request: move the system from `source` to `target`.
    Request {
        /// Current (safe) configuration.
        source: Config,
        /// Desired (safe) configuration.
        target: Config,
    },
    /// A protocol message arrived from agent `agent`.
    AgentMsg {
        /// Agent index (0-based, dense).
        agent: usize,
        /// The message.
        msg: ProtoMsg,
    },
    /// A timer armed via [`ManagerEffect::SetTimer`] fired.
    Timeout {
        /// The token of the fired timer.
        token: u64,
    },
}

/// Outputs of the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerEffect {
    /// Send `msg` to agent `agent`.
    Send {
        /// Destination agent index.
        agent: usize,
        /// The message.
        msg: ProtoMsg,
    },
    /// Arm a one-shot timer; deliver [`ManagerEvent::Timeout`] with `token`
    /// after `after`.
    SetTimer {
        /// Token echoed by the timeout event.
        token: u64,
        /// Delay.
        after: SimDuration,
    },
    /// Disarm the timer with `token` (best-effort; stale timeouts are also
    /// ignored by token comparison).
    CancelTimer {
        /// Token to disarm.
        token: u64,
    },
    /// The adaptation finished (successfully or not).
    Complete(Outcome),
    /// Append `record` to the write-ahead adaptation journal. The core emits
    /// this **before** the sends it covers, so a host that persists the
    /// record before acting on later effects gets crash-consistent
    /// write-ahead semantics; the host chooses the durability medium.
    Journal(JournalRecord),
    /// Progress note for human logs.
    Info(String),
}

/// The manager half of the realization-phase protocol.
pub struct ManagerCore {
    timing: ProtoTiming,
    planner: Box<dyn AdaptationPlanner>,
    phase: ManagerPhase,
    source: Config,
    target: Config,
    current: Config,
    goal_is_source: bool,
    steps: Vec<PlannedStep>,
    step_ix: usize,
    steps_committed: u32,
    step_id: StepId,
    next_attempt: u64,
    solo: bool,
    resume_sent: bool,
    pending_adapt: BTreeSet<usize>,
    pending_resume: BTreeSet<usize>,
    pending_rollback: BTreeSet<usize>,
    retries: u32,
    step_retry_used: bool,
    tried_paths: HashSet<(Config, Vec<ActionId>)>,
    timer_token: u64,
    timer_seq: u64,
    journal_seq: u64,
    /// RTT-derived deadline hint for the slowest participant of the current
    /// step, maintained by the host (volatile: not journaled, reset on
    /// restore — the estimator re-learns after a crash). Only consulted
    /// when the retry policy is in adaptive mode.
    timeout_hint: Option<SimDuration>,
    warnings: Vec<String>,
    queued_requests: std::collections::VecDeque<(Config, Config)>,
    /// Untimed observability payloads accumulated since the last drain; the
    /// embedding stamps them (virtual time, actor) and emits them on its bus.
    obs: Vec<Payload>,
}

impl std::fmt::Debug for ManagerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagerCore")
            .field("phase", &self.phase)
            .field("current", &self.current)
            .field("step_ix", &self.step_ix)
            .field("steps", &self.steps.len())
            .finish()
    }
}

impl ManagerCore {
    /// Creates a manager with the given policy and planner.
    pub fn new(timing: ProtoTiming, planner: Box<dyn AdaptationPlanner>) -> Self {
        ManagerCore {
            timing,
            planner,
            phase: ManagerPhase::Running,
            source: Config::empty(0),
            target: Config::empty(0),
            current: Config::empty(0),
            goal_is_source: false,
            steps: Vec::new(),
            step_ix: 0,
            steps_committed: 0,
            step_id: StepId(0),
            next_attempt: 1,
            solo: false,
            resume_sent: false,
            pending_adapt: BTreeSet::new(),
            pending_resume: BTreeSet::new(),
            pending_rollback: BTreeSet::new(),
            retries: 0,
            step_retry_used: false,
            tried_paths: HashSet::new(),
            timer_token: 0,
            timer_seq: 0,
            journal_seq: 0,
            timeout_hint: None,
            warnings: Vec::new(),
            queued_requests: std::collections::VecDeque::new(),
            obs: Vec::new(),
        }
    }

    /// Takes the observability payloads produced since the last drain, in
    /// emission order. The core is pure and has no clock; whoever embeds it
    /// stamps these and forwards them to the bus.
    pub fn drain_obs(&mut self) -> Vec<Payload> {
        std::mem::take(&mut self.obs)
    }

    /// Sets the RTT-derived retransmission hint the host computed from its
    /// per-agent estimators (the RTO of the slowest participant). The core
    /// stays pure: it never measures latency itself, it only folds the hint
    /// into the next timer it arms. Ignored unless `timing.retry.mode` is
    /// `RetryMode::Adaptive`.
    pub fn set_timeout_hint(&mut self, hint: Option<SimDuration>) {
        self.timeout_hint = hint;
    }

    /// Records a phase change (and the transition event for it).
    fn set_phase(&mut self, to: ManagerPhase) {
        if to == self.phase {
            return;
        }
        let step = (self.step_id.0 != 0).then_some(self.step_id.0);
        self.obs.push(Payload::Proto(ProtoEvent::ManagerPhase {
            from: phase_tag(self.phase),
            to: phase_tag(to),
            step,
        }));
        self.phase = to;
    }

    /// Current protocol phase.
    pub fn phase(&self) -> ManagerPhase {
        self.phase
    }

    /// The configuration the manager believes the system is in (updated as
    /// steps commit).
    pub fn current_config(&self) -> &Config {
        &self.current
    }

    /// Feeds one event, returning the effects to perform **in order**.
    pub fn on_event(&mut self, ev: ManagerEvent) -> Vec<ManagerEffect> {
        match ev {
            ManagerEvent::Request { source, target } => self.on_request(source, target),
            ManagerEvent::AgentMsg { agent, msg } => self.on_agent_msg(agent, msg),
            ManagerEvent::Timeout { token } => self.on_timeout(token),
        }
    }

    fn on_request(&mut self, source: Config, target: Config) -> Vec<ManagerEffect> {
        if self.phase != ManagerPhase::Running {
            // One adaptation at a time (the centralized manager is the
            // serialization point); later requests wait their turn.
            let mut eff = Vec::new();
            self.journal(
                &mut eff,
                JournalRecord::Queued { source: source.clone(), target: target.clone() },
            );
            self.queued_requests.push_back((source, target));
            eff.push(ManagerEffect::Info(format!(
                "adaptation in progress; request queued ({} waiting)",
                self.queued_requests.len()
            )));
            return eff;
        }
        self.source = source.clone();
        self.target = target;
        self.current = source;
        self.goal_is_source = false;
        self.steps_committed = 0;
        self.tried_paths.clear();
        self.warnings.clear();
        self.step_retry_used = false;
        let mut eff = Vec::new();
        self.journal(
            &mut eff,
            JournalRecord::Request { source: self.source.clone(), target: self.target.clone() },
        );
        eff.extend(self.select_and_start());
        eff
    }

    fn goal(&self) -> &Config {
        if self.goal_is_source {
            &self.source
        } else {
            &self.target
        }
    }

    /// Picks the cheapest untried path from `current` to the goal and starts
    /// its first step; walks down the recovery ladder when nothing is left.
    fn select_and_start(&mut self) -> Vec<ManagerEffect> {
        if &self.current == self.goal() {
            return self.complete();
        }
        const K_MAX: usize = 16;
        let (from, goal) = (self.current.clone(), self.goal().clone());
        let candidates = self.planner.paths(&from, &goal, K_MAX);
        let chosen = candidates
            .into_iter()
            .enumerate()
            .find(|(_, p)| !self.tried_paths.contains(&(self.current.clone(), p.action_ids())));
        match chosen {
            Some((rank, path)) => {
                self.obs.push(Payload::Plan(PlanEvent::PathSelected {
                    rank: rank as u32 + 1,
                    steps: path.len() as u32,
                    cost: path.cost,
                }));
                self.tried_paths.insert((self.current.clone(), path.action_ids()));
                let steps = self.planner.compile(&path);
                debug_assert!(!steps.is_empty());
                let mut eff = Vec::new();
                self.journal(&mut eff, JournalRecord::PathSelected { actions: path.action_ids() });
                eff.push(ManagerEffect::Info(format!(
                    "executing path {path} toward {}",
                    if self.goal_is_source { "source (abort)" } else { "target" }
                )));
                self.steps = steps;
                self.step_ix = 0;
                eff.extend(self.start_step());
                eff
            }
            None if !self.goal_is_source => {
                // All paths to the target exhausted: try to return to the
                // source configuration.
                self.obs
                    .push(Payload::Plan(PlanEvent::PathsExhausted { returning_to_source: true }));
                self.goal_is_source = true;
                let mut eff = Vec::new();
                self.journal(&mut eff, JournalRecord::GoalReversed);
                eff.push(ManagerEffect::Info(
                    "all paths to target failed; attempting to return to source configuration"
                        .into(),
                ));
                eff.extend(self.select_and_start());
                eff
            }
            None => {
                // Even the way back failed: wait for user intervention.
                self.obs
                    .push(Payload::Plan(PlanEvent::PathsExhausted { returning_to_source: false }));
                self.set_phase(ManagerPhase::GaveUp);
                self.obs.push(Payload::Proto(ProtoEvent::OutcomeReached {
                    success: false,
                    gave_up: true,
                    steps_committed: u64::from(self.steps_committed),
                }));
                let mut eff = Vec::new();
                self.journal(&mut eff, JournalRecord::Outcome { success: false, gave_up: true });
                eff.push(ManagerEffect::Info(
                    "all recovery options exhausted; awaiting user intervention".into(),
                ));
                eff.push(ManagerEffect::Complete(Outcome {
                    success: false,
                    gave_up: true,
                    final_config: self.current.clone(),
                    steps_committed: self.steps_committed,
                    warnings: self.warnings.clone(),
                }));
                eff
            }
        }
    }

    fn complete(&mut self) -> Vec<ManagerEffect> {
        self.set_phase(ManagerPhase::Running);
        let success = !self.goal_is_source && self.current == self.target;
        self.obs.push(Payload::Proto(ProtoEvent::OutcomeReached {
            success,
            gave_up: false,
            steps_committed: u64::from(self.steps_committed),
        }));
        let mut eff = Vec::new();
        self.journal(&mut eff, JournalRecord::Outcome { success, gave_up: false });
        eff.push(ManagerEffect::Complete(Outcome {
            success,
            gave_up: false,
            final_config: self.current.clone(),
            steps_committed: self.steps_committed,
            warnings: self.warnings.clone(),
        }));
        // Serve the next queued request, re-anchored at wherever the system
        // actually ended up (its stated source may be stale).
        if let Some((source, target)) = self.queued_requests.pop_front() {
            let effective_source =
                if source == self.current { source } else { self.current.clone() };
            eff.push(ManagerEffect::Info("starting queued adaptation request".into()));
            eff.extend(self.on_request(effective_source, target));
        }
        eff
    }

    /// Appends a record to the write-ahead journal: the observability marker
    /// first (so traces carry the journal sequence), then the effect the
    /// host must persist before acting on anything that follows it.
    fn journal(&mut self, eff: &mut Vec<ManagerEffect>, rec: JournalRecord) {
        self.obs.push(Payload::Proto(ProtoEvent::JournalAppended { seq: self.journal_seq }));
        self.journal_seq += 1;
        eff.push(ManagerEffect::Journal(rec));
    }

    fn fresh_timer(&mut self, eff: &mut Vec<ManagerEffect>) {
        if self.timer_token != 0 {
            eff.push(ManagerEffect::CancelTimer { token: self.timer_token });
        }
        let prev = self.timer_token;
        self.timer_seq += 1;
        self.timer_token = self.timer_seq << 16 | u64::from(self.retries);
        // Stale-timeout rejection relies on this: a disarmed token must never
        // be reissued, or a late timeout could abort the wrong phase.
        debug_assert!(self.timer_token > prev, "timer tokens must be strictly monotonic");
        // Exponential backoff, capped: each retransmission of the same phase
        // doubles the wait, so a delay burst no longer walks the whole retry
        // budget at once and triggers a spurious rollback. The first timer of
        // a phase (retries == 0) is exactly the policy base, keeping the
        // happy path and its tests bit-identical; retried timers add a
        // deterministic seeded jitter of up to a quarter interval so a fleet
        // of retransmissions does not stay synchronized. In adaptive mode
        // the base comes from the host's RTT hint for the slowest
        // participant instead of the fixed ladder.
        let after = self.timing.retry.deadline(self.retries, self.timer_token, self.timeout_hint);
        eff.push(ManagerEffect::SetTimer { token: self.timer_token, after });
    }

    fn start_step(&mut self) -> Vec<ManagerEffect> {
        let step = self.steps[self.step_ix].clone();
        debug_assert_eq!(step.from, self.current, "plan out of sync with committed config");
        self.step_id = StepId(self.next_attempt);
        self.next_attempt += 1;
        self.solo = step.locals.len() == 1;
        self.resume_sent = false;
        self.retries = 0;
        self.pending_adapt = step.locals.iter().map(|(a, _)| *a).collect();
        self.pending_resume = self.pending_adapt.clone();
        self.pending_rollback.clear();
        self.obs.push(Payload::Proto(ProtoEvent::StepStarted {
            step: self.step_id.0,
            solo: self.solo,
            participants: step.locals.len() as u32,
        }));
        self.set_phase(ManagerPhase::Adapting);
        let mut eff = Vec::new();
        self.journal(
            &mut eff,
            JournalRecord::StepStarted { step: self.step_id, ix: self.step_ix as u32 },
        );
        for (agent, local) in &step.locals {
            eff.push(ManagerEffect::Send {
                agent: *agent,
                msg: ProtoMsg::Reset { step: self.step_id, action: local.clone(), solo: self.solo },
            });
        }
        self.fresh_timer(&mut eff);
        eff
    }

    fn on_agent_msg(&mut self, agent: usize, msg: ProtoMsg) -> Vec<ManagerEffect> {
        if msg.step().is_some_and(|s| s != self.step_id) {
            return Vec::new(); // stale attempt (rejoins carry no step)
        }
        match (self.phase, msg) {
            (_, ProtoMsg::Rejoin { last_completed }) => self.on_rejoin(agent, last_completed),
            (_, ProtoMsg::StateReport { engaged, adapted, failed, last_completed }) => {
                self.on_state_report(agent, engaged, adapted, failed, last_completed)
            }
            (ManagerPhase::Adapting, ProtoMsg::ResetDone { .. }) => Vec::new(),
            (ManagerPhase::Adapting, ProtoMsg::AdaptDone { .. }) => {
                // Idempotence: only a first-time ack from a still-pending
                // participant advances the barrier; replayed duplicates of
                // the last ack must not re-run the phase transition.
                if !self.pending_adapt.remove(&agent) {
                    return Vec::new();
                }
                if !self.pending_adapt.is_empty() {
                    return Vec::new();
                }
                // All in-actions done: the adapted state. Solo agents resume
                // autonomously; otherwise broadcast resume. Either way the
                // point of no return is passed.
                self.set_phase(ManagerPhase::Resuming);
                self.resume_sent = true;
                self.retries = 0;
                let mut eff = Vec::new();
                self.journal(&mut eff, JournalRecord::ResumeIssued { step: self.step_id });
                if !self.solo {
                    let step = &self.steps[self.step_ix];
                    for (a, _) in &step.locals {
                        eff.push(ManagerEffect::Send {
                            agent: *a,
                            msg: ProtoMsg::Resume { step: self.step_id },
                        });
                    }
                }
                self.fresh_timer(&mut eff);
                eff
            }
            (ManagerPhase::Resuming, ProtoMsg::AdaptDone { .. }) => {
                // Usually a duplicate ack. But an agent that crashed after
                // the resume barrier and was resynchronized (see
                // `on_rejoin`) re-runs the step and genuinely needs its
                // `Resume` again; it is recognizable because its
                // `ResumeDone` is still outstanding. Solo agents resume on
                // their own.
                if !self.solo && self.pending_resume.contains(&agent) {
                    vec![ManagerEffect::Send {
                        agent,
                        msg: ProtoMsg::Resume { step: self.step_id },
                    }]
                } else {
                    Vec::new()
                }
            }
            (ManagerPhase::Resuming, ProtoMsg::ResumeDone { .. }) => {
                if !self.pending_resume.remove(&agent) {
                    return Vec::new(); // duplicate delivery of the final ack
                }
                if !self.pending_resume.is_empty() {
                    return Vec::new();
                }
                let mut eff = vec![ManagerEffect::CancelTimer { token: self.timer_token }];
                eff.extend(self.commit_step());
                eff
            }
            (ManagerPhase::Adapting, ProtoMsg::FailToReset { .. }) => {
                let mut eff = vec![ManagerEffect::Info(format!(
                    "agent {agent} failed to reset; aborting step {}",
                    self.step_id
                ))];
                eff.extend(self.begin_rollback());
                eff
            }
            (ManagerPhase::RollingBack, ProtoMsg::ResumeDone { .. }) if self.solo => {
                // The solo participant self-resumed past the point of no
                // return before our rollback order reached it (its acks were
                // lost on the way here). The step is durably committed out
                // there and cannot be undone: abandon the rollback and adopt
                // the commit. Only solo steps can race this way — multi-agent
                // participants resume strictly on our Resume, which is never
                // followed by a rollback.
                let mut eff = vec![
                    ManagerEffect::Info(format!(
                        "agent {agent} had already committed step {}; abandoning its rollback",
                        self.step_id
                    )),
                    ManagerEffect::CancelTimer { token: self.timer_token },
                ];
                eff.extend(self.commit_step());
                eff
            }
            (ManagerPhase::RollingBack, ProtoMsg::RollbackDone { .. }) => {
                if !self.pending_rollback.remove(&agent) {
                    return Vec::new(); // duplicate delivery of the final ack
                }
                if !self.pending_rollback.is_empty() {
                    return Vec::new();
                }
                let mut eff = vec![ManagerEffect::CancelTimer { token: self.timer_token }];
                eff.extend(self.rollback_complete());
                eff
            }
            // Late FailToReset while rolling back, stray acks, etc.
            _ => Vec::new(),
        }
    }

    /// The crash-recovery rung of the failure ladder: a restarted agent
    /// announced itself mid-adaptation.
    ///
    /// The crash destroyed the agent's volatile protocol state (an
    /// uncommitted in-action, blocking, timers), so for safety purposes the
    /// agent stands at its last *committed* step. Resynchronization
    /// re-issues the current phase's command to that one agent:
    ///
    /// * `Adapting` — re-send `Reset`: the agent redoes the step from the
    ///   beginning (pre-crash partial progress evaporated with the crash).
    /// * `Resuming` — if its `ResumeDone` is outstanding, either the rejoin
    ///   itself proves completion (`last_completed` matches the current
    ///   attempt: the crash happened after the commit point and only the
    ///   ack was lost) or the agent must redo the step; the
    ///   `(Resuming, AdaptDone)` arm then re-issues its targeted `Resume`.
    /// * `RollingBack` — re-send `Rollback`; the restarted agent has
    ///   nothing structural to undo (the uncommitted change died with the
    ///   crash) and acknowledges immediately.
    ///
    /// If the agent instead stays down past the phase timeout, no rejoin
    /// arrives and the existing loss-of-message ladder (retransmit → abort
    /// → rollback → re-plan → give up) handles the crash as the paper's
    /// Section 4.4 failure classes — the safety argument is unchanged, only
    /// liveness improves when the process comes back in time.
    fn on_rejoin(&mut self, agent: usize, last_completed: Option<StepId>) -> Vec<ManagerEffect> {
        self.obs.push(Payload::Proto(ProtoEvent::RejoinReceived {
            agent: agent as u32,
            last_completed: last_completed.map(|s| s.0),
        }));
        if matches!(self.phase, ManagerPhase::Running | ManagerPhase::GaveUp) {
            return vec![ManagerEffect::Info(format!("agent {agent} rejoined while idle"))];
        }
        let step = &self.steps[self.step_ix];
        let Some(local) = step.locals.iter().find(|(a, _)| *a == agent).map(|(_, l)| l.clone())
        else {
            return vec![ManagerEffect::Info(format!(
                "agent {agent} rejoined (not a participant of {})",
                self.step_id
            ))];
        };
        match self.phase {
            ManagerPhase::Adapting => {
                // Whatever the agent had acknowledged pre-crash is void: put
                // it back on both barriers and start it over on this attempt
                // with a fresh retry budget.
                self.pending_adapt.insert(agent);
                self.pending_resume.insert(agent);
                self.retries = 0;
                let mut eff = vec![ManagerEffect::Info(format!(
                    "agent {agent} rejoined; resynchronizing into {}",
                    self.step_id
                ))];
                eff.push(ManagerEffect::Send {
                    agent,
                    msg: ProtoMsg::Reset { step: self.step_id, action: local, solo: self.solo },
                });
                self.fresh_timer(&mut eff);
                eff
            }
            ManagerPhase::Resuming => {
                if !self.pending_resume.contains(&agent) {
                    return vec![ManagerEffect::Info(format!(
                        "agent {agent} rejoined after acknowledging {}; nothing to resync",
                        self.step_id
                    ))];
                }
                if last_completed == Some(self.step_id) {
                    // Crashed between committing and the ack being heard:
                    // the rejoin itself is proof of completion.
                    self.pending_adapt.remove(&agent);
                    self.pending_resume.remove(&agent);
                    let mut eff = vec![ManagerEffect::Info(format!(
                        "agent {agent} rejoined having completed {}",
                        self.step_id
                    ))];
                    if self.pending_resume.is_empty() {
                        eff.push(ManagerEffect::CancelTimer { token: self.timer_token });
                        eff.extend(self.commit_step());
                    }
                    return eff;
                }
                // The uncommitted in-action died with the crash even though
                // the resume barrier has passed: the step *must* still run
                // to completion, so drive the agent through it again.
                self.retries = 0;
                let mut eff = vec![ManagerEffect::Info(format!(
                    "agent {agent} rejoined mid-resume; re-running {} to completion",
                    self.step_id
                ))];
                eff.push(ManagerEffect::Send {
                    agent,
                    msg: ProtoMsg::Reset { step: self.step_id, action: local, solo: self.solo },
                });
                self.fresh_timer(&mut eff);
                eff
            }
            ManagerPhase::RollingBack => {
                if !self.pending_rollback.contains(&agent) {
                    return vec![ManagerEffect::Info(format!(
                        "agent {agent} rejoined after rolling back {}",
                        self.step_id
                    ))];
                }
                self.retries = 0;
                let mut eff = vec![ManagerEffect::Info(format!(
                    "agent {agent} rejoined; re-sending rollback for {}",
                    self.step_id
                ))];
                eff.push(ManagerEffect::Send {
                    agent,
                    msg: ProtoMsg::Rollback { step: self.step_id },
                });
                self.fresh_timer(&mut eff);
                eff
            }
            ManagerPhase::Running | ManagerPhase::GaveUp => unreachable!("handled above"),
        }
    }

    /// Reconciliation: an agent answered the restored manager's
    /// [`ProtoMsg::QueryState`] probe with its actual protocol position.
    ///
    /// The journal restored the manager's *decision* state exactly, but
    /// whether an agent acted on a dispatched command may have been known
    /// only to the crashed incarnation. The report closes that gap, and the
    /// paper's rule decides the direction: before the first resume an
    /// unconfirmed step may be redone from scratch (abort semantics), after
    /// it the step must run to completion. Each resolution is mapped onto
    /// the ordinary barrier arms (synthesized acks or re-sent commands), so
    /// reconciliation reuses the exact guards the live protocol uses — and
    /// if a probe or report is lost, the phase timer is already armed and
    /// the ordinary retransmission ladder takes over.
    fn on_state_report(
        &mut self,
        agent: usize,
        engaged: Option<StepId>,
        adapted: bool,
        failed: bool,
        last_completed: Option<StepId>,
    ) -> Vec<ManagerEffect> {
        self.obs.push(Payload::Proto(ProtoEvent::StateReported {
            agent: agent as u32,
            engaged: engaged.map(|s| s.0),
            adapted,
            failed,
            last_completed: last_completed.map(|s| s.0),
        }));
        if matches!(self.phase, ManagerPhase::Running | ManagerPhase::GaveUp) {
            return vec![ManagerEffect::Info(format!("agent {agent} reported state while idle"))];
        }
        let step = &self.steps[self.step_ix];
        let Some(local) = step.locals.iter().find(|(a, _)| *a == agent).map(|(_, l)| l.clone())
        else {
            return vec![ManagerEffect::Info(format!(
                "agent {agent} reported state (not a participant of {})",
                self.step_id
            ))];
        };
        let completed = last_completed == Some(self.step_id);
        let on_step = engaged == Some(self.step_id);
        match self.phase {
            ManagerPhase::Adapting => {
                if completed {
                    // The agent already ran the whole step (the previous
                    // incarnation got further than its journal shows).
                    // Synthesize the acks the crash swallowed; the barrier
                    // arms dedupe via the pending sets.
                    let mut eff =
                        self.on_agent_msg(agent, ProtoMsg::AdaptDone { step: self.step_id });
                    if self.phase == ManagerPhase::Resuming {
                        eff.extend(
                            self.on_agent_msg(agent, ProtoMsg::ResumeDone { step: self.step_id }),
                        );
                    }
                    eff
                } else if on_step && failed {
                    self.on_agent_msg(agent, ProtoMsg::FailToReset { step: self.step_id })
                } else if on_step && adapted {
                    self.on_agent_msg(agent, ProtoMsg::AdaptDone { step: self.step_id })
                } else if on_step {
                    Vec::new() // engaged and working; the ack will come
                } else {
                    // Not engaged in this step at all: the Reset never
                    // arrived (or the agent crashed too). Re-issue it.
                    self.retries = 0;
                    let mut eff = vec![ManagerEffect::Send {
                        agent,
                        msg: ProtoMsg::Reset { step: self.step_id, action: local, solo: self.solo },
                    }];
                    self.fresh_timer(&mut eff);
                    eff
                }
            }
            ManagerPhase::Resuming => {
                if completed {
                    self.on_agent_msg(agent, ProtoMsg::ResumeDone { step: self.step_id })
                } else if on_step && adapted {
                    // Past the point of no return and still blocked on the
                    // resume signal the crash may have swallowed.
                    if self.solo {
                        Vec::new() // solo agents resume autonomously
                    } else {
                        vec![ManagerEffect::Send {
                            agent,
                            msg: ProtoMsg::Resume { step: self.step_id },
                        }]
                    }
                } else if on_step {
                    Vec::new() // mid-step; run-to-completion continues
                } else {
                    // The step must run to completion: drive the agent
                    // through it again from the start.
                    self.retries = 0;
                    let mut eff = vec![ManagerEffect::Send {
                        agent,
                        msg: ProtoMsg::Reset { step: self.step_id, action: local, solo: self.solo },
                    }];
                    self.fresh_timer(&mut eff);
                    eff
                }
            }
            ManagerPhase::RollingBack => {
                if on_step {
                    // Still holding (possibly partial) step state: tell it to
                    // undo — the Rollback may have been lost in the crash.
                    vec![ManagerEffect::Send {
                        agent,
                        msg: ProtoMsg::Rollback { step: self.step_id },
                    }]
                } else if completed {
                    // It finished the whole step before the abort decision
                    // reached it (solo self-resume): past the point of no
                    // return the commit stands, so fold the evidence into
                    // the barrier logic, which abandons the rollback.
                    self.on_agent_msg(agent, ProtoMsg::ResumeDone { step: self.step_id })
                } else {
                    // Nothing of this attempt survives on the agent: its
                    // rollback is trivially done.
                    self.on_agent_msg(agent, ProtoMsg::RollbackDone { step: self.step_id })
                }
            }
            ManagerPhase::Running | ManagerPhase::GaveUp => unreachable!("handled above"),
        }
    }

    fn commit_step(&mut self) -> Vec<ManagerEffect> {
        self.obs.push(Payload::Proto(ProtoEvent::StepCommitted { step: self.step_id.0 }));
        let mut eff = Vec::new();
        self.journal(&mut eff, JournalRecord::StepCommitted { step: self.step_id });
        let step = &self.steps[self.step_ix];
        self.current = step.to.clone();
        self.steps_committed += 1;
        self.step_retry_used = false;
        self.step_ix += 1;
        eff.extend(self.advance_after_commit());
        eff
    }

    /// What happens after a commit has been applied (shared between the live
    /// path and journal replay, which lands here after a trailing
    /// `StepCommitted` record).
    fn advance_after_commit(&mut self) -> Vec<ManagerEffect> {
        if self.step_ix < self.steps.len() {
            // "more adaptation steps remaining: prepare for the next step".
            self.start_step()
        } else if &self.current == self.goal() {
            self.complete()
        } else {
            // Path exhausted without reaching the goal — cannot happen with
            // well-formed plans, but re-plan defensively.
            self.select_and_start()
        }
    }

    fn begin_rollback(&mut self) -> Vec<ManagerEffect> {
        self.obs.push(Payload::Proto(ProtoEvent::RollbackIssued { step: self.step_id.0 }));
        self.set_phase(ManagerPhase::RollingBack);
        self.retries = 0;
        let mut eff = Vec::new();
        self.journal(&mut eff, JournalRecord::RollbackIssued { step: self.step_id });
        let step = &self.steps[self.step_ix];
        self.pending_rollback = step.locals.iter().map(|(a, _)| *a).collect();
        for (agent, _) in &step.locals {
            eff.push(ManagerEffect::Send {
                agent: *agent,
                msg: ProtoMsg::Rollback { step: self.step_id },
            });
        }
        self.fresh_timer(&mut eff);
        eff
    }

    fn rollback_complete(&mut self) -> Vec<ManagerEffect> {
        // The system is back at the step's source configuration (= current).
        let retry = !self.step_retry_used;
        let mut eff = Vec::new();
        self.journal(&mut eff, JournalRecord::RollbackComplete { step: self.step_id, retry });
        if retry {
            // Ladder rung 1: retry the same step once more.
            self.step_retry_used = true;
            eff.push(ManagerEffect::Info(format!("retrying step {} once", self.step_ix)));
            eff.extend(self.start_step());
        } else {
            // Ladder rungs 2-4: next-cheapest path, return to source, give up.
            self.step_retry_used = false;
            eff.extend(self.select_and_start());
        }
        eff
    }

    fn on_timeout(&mut self, token: u64) -> Vec<ManagerEffect> {
        if token != self.timer_token {
            return Vec::new(); // stale timer
        }
        self.obs.push(Payload::Proto(ProtoEvent::TimeoutFired {
            phase: phase_tag(self.phase),
            step: (self.step_id.0 != 0).then_some(self.step_id.0),
            retries: self.retries,
        }));
        match self.phase {
            ManagerPhase::Adapting => {
                if self.retries < self.timing.send_retries {
                    self.retries += 1;
                    self.obs.push(Payload::Proto(ProtoEvent::RetrySent {
                        step: self.step_id.0,
                        resends: self.retries,
                    }));
                    let step = self.steps[self.step_ix].clone();
                    let mut eff = vec![ManagerEffect::Info(format!(
                        "timeout in adapting; retransmitting reset (attempt {})",
                        self.retries
                    ))];
                    for (agent, local) in &step.locals {
                        if self.pending_adapt.contains(agent) {
                            eff.push(ManagerEffect::Send {
                                agent: *agent,
                                msg: ProtoMsg::Reset {
                                    step: self.step_id,
                                    action: local.clone(),
                                    solo: self.solo,
                                },
                            });
                        }
                    }
                    self.fresh_timer(&mut eff);
                    eff
                } else {
                    // Loss-of-message before any resume: abort the step.
                    let mut eff = vec![ManagerEffect::Info(
                        "reset/adapt phase timed out; aborting step (rollback)".into(),
                    )];
                    eff.extend(self.begin_rollback());
                    eff
                }
            }
            ManagerPhase::Resuming => {
                if self.retries < self.timing.resume_force_limit {
                    self.retries += 1;
                    self.obs.push(Payload::Proto(ProtoEvent::RetrySent {
                        step: self.step_id.0,
                        resends: self.retries,
                    }));
                    let step = self.steps[self.step_ix].clone();
                    let mut eff = Vec::new();
                    for (agent, local) in &step.locals {
                        if self.pending_resume.contains(agent) {
                            // Solo steps never send Resume; retransmit Reset
                            // instead, which elicits idempotent re-acks.
                            let msg = if self.solo {
                                ProtoMsg::Reset {
                                    step: self.step_id,
                                    action: local.clone(),
                                    solo: true,
                                }
                            } else {
                                ProtoMsg::Resume { step: self.step_id }
                            };
                            eff.push(ManagerEffect::Send { agent: *agent, msg });
                        }
                    }
                    self.fresh_timer(&mut eff);
                    eff
                } else {
                    // After resume the adaptation must run to completion: the
                    // unreachable agents will finish on their own. Commit.
                    self.warnings.push(format!(
                        "step {} force-completed: {} agent(s) never acknowledged resume",
                        self.step_ix,
                        self.pending_resume.len()
                    ));
                    let mut eff = vec![ManagerEffect::Info(
                        "resume acks lost; running to completion and committing step".into(),
                    )];
                    eff.extend(self.commit_step());
                    eff
                }
            }
            ManagerPhase::RollingBack => {
                if self.retries < self.timing.rollback_force_limit {
                    self.retries += 1;
                    self.obs.push(Payload::Proto(ProtoEvent::RetrySent {
                        step: self.step_id.0,
                        resends: self.retries,
                    }));
                    let step = self.steps[self.step_ix].clone();
                    let mut eff = Vec::new();
                    for (agent, _) in &step.locals {
                        if self.pending_rollback.contains(agent) {
                            eff.push(ManagerEffect::Send {
                                agent: *agent,
                                msg: ProtoMsg::Rollback { step: self.step_id },
                            });
                        }
                    }
                    self.fresh_timer(&mut eff);
                    eff
                } else {
                    self.warnings.push(format!(
                        "rollback of step {} assumed complete after retries exhausted",
                        self.step_ix
                    ));
                    self.rollback_complete()
                }
            }
            ManagerPhase::Running | ManagerPhase::GaveUp => Vec::new(),
        }
    }

    /// Consumes the core, returning its planner (used by hosts to carry the
    /// planner across a manager restart into [`ManagerCore::restore`]).
    pub fn into_planner(self) -> Box<dyn AdaptationPlanner> {
        self.planner
    }

    /// Rebuilds a manager from its write-ahead journal after a crash.
    ///
    /// Replay walks the records, mutating state exactly as the live code
    /// paths did when each record was written (journal records precede the
    /// sends they cover, so a persisted prefix never claims more than the
    /// crashed incarnation actually decided). No messages are re-sent and no
    /// observability events are re-emitted during replay — the journal is a
    /// record of decisions, not of traffic.
    ///
    /// After replay the manager lands in one of two situations:
    ///
    /// * **Between decisions** (the journal's last record fully determines
    ///   the next move — e.g. it ends at `StepCommitted` or `GoalReversed`):
    ///   the decision is simply re-taken live, re-journaling and re-sending
    ///   whatever the crash swallowed. Replay relies on the planner being
    ///   deterministic, which the DES guarantees.
    /// * **Inside a wait** (`StepStarted` / `ResumeIssued` /
    ///   `RollbackIssued` last): which acks the dead incarnation had already
    ///   collected is unknowable, so the barrier is reset conservatively to
    ///   the full participant set and a **reconciliation round** begins:
    ///   [`ProtoMsg::QueryState`] probes every participant, and
    ///   [`Self::on_state_report`] folds each answer back into the ordinary
    ///   barrier arms. The phase timer is armed before any report arrives,
    ///   so lost probes degrade into the existing retransmission ladder
    ///   rather than a hang.
    ///
    /// Returns the restored core plus the effects (probes, re-sends, timer)
    /// to perform. Errors only on a journal that is not replayable against
    /// this planner (corrupt input or a non-deterministic planner).
    pub fn restore(
        timing: ProtoTiming,
        planner: Box<dyn AdaptationPlanner>,
        journal: &[JournalRecord],
    ) -> Result<(Self, Vec<ManagerEffect>), String> {
        /// Where replay left off — the continuation to run live.
        enum Cursor {
            /// Idle (or gave up); maybe a queued request to serve.
            Idle,
            /// A goal is set; a path must be (re-)selected.
            Decide,
            /// A path is selected and compiled; its next step must start.
            StartStep,
            /// Waiting on the adapt barrier of the current step.
            WaitAdapt,
            /// Waiting on the resume barrier.
            WaitResume,
            /// Waiting on the rollback barrier.
            WaitRollback,
            /// A step just committed; advance (next step / complete / replan).
            AfterCommit,
            /// A rollback just finished; retry the step or replan.
            AfterRollback { retry: bool },
        }

        let mut core = ManagerCore::new(timing, planner);
        let mut cursor = Cursor::Idle;
        for (i, rec) in journal.iter().enumerate() {
            let fail = |why: &str| format!("journal record {i} not replayable: {why} ({rec})");
            match rec {
                JournalRecord::Request { source, target } => {
                    core.source = source.clone();
                    core.target = target.clone();
                    core.current = source.clone();
                    core.goal_is_source = false;
                    core.steps_committed = 0;
                    core.tried_paths.clear();
                    core.warnings.clear();
                    core.step_retry_used = false;
                    core.phase = ManagerPhase::Running;
                    // A Request that served the queue popped its entry live.
                    if core.queued_requests.front().is_some_and(|(_, t)| t == target) {
                        core.queued_requests.pop_front();
                    }
                    cursor = Cursor::Decide;
                }
                JournalRecord::Queued { source, target } => {
                    core.queued_requests.push_back((source.clone(), target.clone()));
                }
                JournalRecord::PathSelected { actions } => {
                    const K_MAX: usize = 16;
                    let (from, goal) = (core.current.clone(), core.goal().clone());
                    let path = core
                        .planner
                        .paths(&from, &goal, K_MAX)
                        .into_iter()
                        .find(|p| &p.action_ids() == actions)
                        .ok_or_else(|| fail("planner no longer offers this path"))?;
                    core.tried_paths.insert((core.current.clone(), path.action_ids()));
                    core.steps = core.planner.compile(&path);
                    core.step_ix = 0;
                    cursor = Cursor::StartStep;
                }
                JournalRecord::GoalReversed => {
                    core.goal_is_source = true;
                    cursor = Cursor::Decide;
                }
                JournalRecord::StepStarted { step, ix } => {
                    let ix = *ix as usize;
                    if ix >= core.steps.len() {
                        return Err(fail("step index out of range for the selected path"));
                    }
                    if core.steps[ix].from != core.current {
                        return Err(fail("step source disagrees with committed configuration"));
                    }
                    core.step_ix = ix;
                    core.step_id = *step;
                    core.next_attempt = step.0 + 1;
                    core.solo = core.steps[ix].locals.len() == 1;
                    core.resume_sent = false;
                    core.retries = 0;
                    core.pending_adapt = core.steps[ix].locals.iter().map(|(a, _)| *a).collect();
                    core.pending_resume = core.pending_adapt.clone();
                    core.pending_rollback.clear();
                    core.phase = ManagerPhase::Adapting;
                    cursor = Cursor::WaitAdapt;
                }
                JournalRecord::ResumeIssued { step } => {
                    if *step != core.step_id {
                        return Err(fail("resume for a step that is not current"));
                    }
                    core.phase = ManagerPhase::Resuming;
                    core.resume_sent = true;
                    core.pending_adapt.clear();
                    core.retries = 0;
                    cursor = Cursor::WaitResume;
                }
                JournalRecord::StepCommitted { step } => {
                    if *step != core.step_id {
                        return Err(fail("commit for a step that is not current"));
                    }
                    core.current = core.steps[core.step_ix].to.clone();
                    core.steps_committed += 1;
                    core.step_retry_used = false;
                    core.step_ix += 1;
                    cursor = Cursor::AfterCommit;
                }
                JournalRecord::RollbackIssued { step } => {
                    if *step != core.step_id {
                        return Err(fail("rollback for a step that is not current"));
                    }
                    core.phase = ManagerPhase::RollingBack;
                    core.pending_rollback =
                        core.steps[core.step_ix].locals.iter().map(|(a, _)| *a).collect();
                    core.retries = 0;
                    cursor = Cursor::WaitRollback;
                }
                JournalRecord::RollbackComplete { step, retry } => {
                    if *step != core.step_id {
                        return Err(fail("rollback completion for a step that is not current"));
                    }
                    core.step_retry_used = *retry;
                    core.pending_rollback.clear();
                    cursor = Cursor::AfterRollback { retry: *retry };
                }
                JournalRecord::Outcome { gave_up, .. } => {
                    core.phase =
                        if *gave_up { ManagerPhase::GaveUp } else { ManagerPhase::Running };
                    cursor = Cursor::Idle;
                }
            }
        }
        core.journal_seq = journal.len() as u64;
        core.obs.push(Payload::Proto(ProtoEvent::ManagerRestored {
            records: journal.len() as u64,
            phase: phase_tag(core.phase),
            step: (core.step_id.0 != 0).then_some(core.step_id.0),
        }));

        let mut eff = Vec::new();
        match cursor {
            Cursor::Idle => {
                // Re-taking a give-up decision would double-complete; a
                // successfully idle manager only owes service to the queue.
                if core.phase == ManagerPhase::Running {
                    if let Some((source, target)) = core.queued_requests.pop_front() {
                        let effective_source =
                            if source == core.current { source } else { core.current.clone() };
                        eff.push(ManagerEffect::Info("starting queued adaptation request".into()));
                        eff.extend(core.on_request(effective_source, target));
                    }
                }
            }
            Cursor::Decide => eff.extend(core.select_and_start()),
            Cursor::StartStep => eff.extend(core.start_step()),
            Cursor::AfterCommit => eff.extend(core.advance_after_commit()),
            Cursor::AfterRollback { retry } => {
                if retry {
                    eff.push(ManagerEffect::Info(format!("retrying step {} once", core.step_ix)));
                    eff.extend(core.start_step());
                } else {
                    eff.extend(core.select_and_start());
                }
            }
            Cursor::WaitAdapt | Cursor::WaitResume | Cursor::WaitRollback => {
                // Mid-wait: which acks the dead incarnation saw is unknown.
                // Reset the barrier conservatively and probe everyone.
                let participants: BTreeSet<usize> =
                    core.steps[core.step_ix].locals.iter().map(|(a, _)| *a).collect();
                match cursor {
                    Cursor::WaitAdapt => {
                        core.pending_adapt = participants.clone();
                        core.pending_resume = participants.clone();
                    }
                    Cursor::WaitResume => {
                        core.pending_adapt.clear();
                        core.pending_resume = participants.clone();
                    }
                    Cursor::WaitRollback => core.pending_rollback = participants.clone(),
                    _ => unreachable!(),
                }
                eff.push(ManagerEffect::Info(format!(
                    "restored mid-{:?}; reconciling {} with {} participant(s)",
                    core.phase,
                    core.step_id,
                    participants.len()
                )));
                for agent in &participants {
                    core.obs
                        .push(Payload::Proto(ProtoEvent::StateQueried { agent: *agent as u32 }));
                    eff.push(ManagerEffect::Send { agent: *agent, msg: ProtoMsg::QueryState });
                }
                core.fresh_timer(&mut eff);
            }
        }
        Ok((core, eff))
    }
}
