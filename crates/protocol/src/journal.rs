//! The adaptation journal: a write-ahead log of manager decision points.
//!
//! Every irreversible decision the [`ManagerCore`](crate::ManagerCore) makes
//! — accepting a request, committing to a path, dispatching a step, passing
//! the resume barrier, ordering or finishing a rollback, reaching an outcome
//! — is emitted as a [`JournalRecord`] *before* the wire messages it covers
//! (`ManagerEffect::Journal` precedes the `Send`s in the effect list). The
//! host chooses the durability medium: the simulator keeps the vector across
//! incarnations, a real deployment would fsync a file. After a crash,
//! [`ManagerCore::restore`](crate::ManagerCore::restore) replays the journal
//! to the exact phase/step/attempt state and reconciles with the agents.
//!
//! Volatile bookkeeping is deliberately *not* journaled: retransmission
//! counters, armed timers, and which acknowledgements have arrived are all
//! reconstructible (conservatively) from the agents themselves, which is what
//! the reconciliation round does.
//!
//! Records serialize to a line-oriented text form ([`encode_journal`] /
//! [`parse_journal`]) in the same `verb key=value` style as
//! `sada_simnet::FaultPlan`, so a failing chaos run can dump its journal next
//! to the trace and the run can be replayed from any prefix.

use std::fmt;

use sada_expr::Config;
use sada_plan::ActionId;

use crate::messages::{SessionId, StepId};

/// One durable manager decision point, in the order it was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// An adaptation request was accepted and planning began. `source` is
    /// the *effective* source (queued requests are re-anchored at the
    /// configuration the previous adaptation actually ended in).
    Request {
        /// Configuration the adaptation starts from.
        source: Config,
        /// Configuration the adaptation drives toward.
        target: Config,
    },
    /// A request arrived while another adaptation was in flight and was
    /// queued behind it.
    Queued {
        /// The queued request's stated source.
        source: Config,
        /// The queued request's target.
        target: Config,
    },
    /// The planner committed to a path (its action ids, in step order) from
    /// the current configuration toward the current goal.
    PathSelected {
        /// Action ids of the chosen path, cheapest untried candidate first.
        actions: Vec<ActionId>,
    },
    /// Every path to the target is exhausted; the goal reversed to the
    /// source configuration (the ladder's return-to-source rung).
    GoalReversed,
    /// A step attempt was dispatched: resets go out under this attempt id.
    StepStarted {
        /// The fresh attempt id.
        step: StepId,
        /// Index of the step within the committed path.
        ix: u32,
    },
    /// The adapt-done barrier passed and resumes were issued — the point of
    /// no return; after this record the step must run to completion.
    ResumeIssued {
        /// The attempt passing the barrier.
        step: StepId,
    },
    /// All resume-dones arrived (or the force-complete rung fired): the
    /// step's configuration transition became durable.
    StepCommitted {
        /// The committed attempt.
        step: StepId,
    },
    /// The step was abandoned and rollback commands were issued.
    RollbackIssued {
        /// The attempt being rolled back.
        step: StepId,
    },
    /// The rollback finished (acknowledged or assumed). `retry` is true when
    /// the ladder's retry-once rung re-runs the same step next.
    RollbackComplete {
        /// The attempt that was rolled back.
        step: StepId,
        /// Whether the same step is retried once more.
        retry: bool,
    },
    /// The adaptation resolved (successfully, aborted back to the source, or
    /// given up at a safe intermediate configuration).
    Outcome {
        /// Target configuration reached.
        success: bool,
        /// Every recovery option exhausted; awaiting the user.
        gave_up: bool,
    },
}

fn fmt_config(c: &Config) -> String {
    c.to_bit_string()
}

fn fmt_actions(actions: &[ActionId]) -> String {
    if actions.is_empty() {
        "-".to_string()
    } else {
        actions.iter().map(|a| a.0.to_string()).collect::<Vec<_>>().join(",")
    }
}

impl fmt::Display for JournalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalRecord::Request { source, target } => {
                write!(f, "request source={} target={}", fmt_config(source), fmt_config(target))
            }
            JournalRecord::Queued { source, target } => {
                write!(f, "queued source={} target={}", fmt_config(source), fmt_config(target))
            }
            JournalRecord::PathSelected { actions } => {
                write!(f, "path actions={}", fmt_actions(actions))
            }
            JournalRecord::GoalReversed => write!(f, "reverse"),
            JournalRecord::StepStarted { step, ix } => write!(f, "step id={} ix={ix}", step.0),
            JournalRecord::ResumeIssued { step } => write!(f, "resume id={}", step.0),
            JournalRecord::StepCommitted { step } => write!(f, "commit id={}", step.0),
            JournalRecord::RollbackIssued { step } => write!(f, "rollback id={}", step.0),
            JournalRecord::RollbackComplete { step, retry } => {
                write!(f, "rolledback id={} retry={retry}", step.0)
            }
            JournalRecord::Outcome { success, gave_up } => {
                write!(f, "outcome success={success} gave_up={gave_up}")
            }
        }
    }
}

/// Serializes a journal to its line-oriented text form (one record per
/// line, in order).
pub fn encode_journal(records: &[JournalRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Parses the text form produced by [`encode_journal`]. Blank lines and `#`
/// comments are ignored.
pub fn parse_journal(text: &str) -> Result<Vec<JournalRecord>, String> {
    let mut records = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(records)
}

fn parse_config(bits: &str) -> Result<Config, String> {
    let mut cfg = Config::empty(bits.len());
    for (pos, ch) in bits.chars().enumerate() {
        let ix = bits.len() - 1 - pos;
        match ch {
            '1' => cfg.insert(sada_expr::CompId::from_index(ix)),
            '0' => {}
            other => return Err(format!("invalid config bit {other:?}")),
        }
    }
    Ok(cfg)
}

fn parse_record(line: &str) -> Result<JournalRecord, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty journal line")?;
    let mut fields = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| format!("expected key=value, got '{w}'"))?;
        fields.insert(k, v);
    }
    let raw = |k: &str| -> Result<&str, String> {
        fields.get(k).copied().ok_or_else(|| format!("missing field '{k}'"))
    };
    let num = |k: &str| -> Result<u64, String> {
        raw(k)?.parse::<u64>().map_err(|e| format!("field '{k}': {e}"))
    };
    let boolean = |k: &str| -> Result<bool, String> {
        raw(k)?.parse::<bool>().map_err(|e| format!("field '{k}': {e}"))
    };
    let config = |k: &str| -> Result<Config, String> {
        parse_config(raw(k)?).map_err(|e| format!("field '{k}': {e}"))
    };
    let step = |k: &str| -> Result<StepId, String> { Ok(StepId(num(k)?)) };
    match verb {
        "request" => {
            Ok(JournalRecord::Request { source: config("source")?, target: config("target")? })
        }
        "queued" => {
            Ok(JournalRecord::Queued { source: config("source")?, target: config("target")? })
        }
        "path" => {
            let v = raw("actions")?;
            let actions = if v == "-" {
                Vec::new()
            } else {
                v.split(',')
                    .map(|s| {
                        s.parse::<u32>().map(ActionId).map_err(|e| format!("field 'actions': {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(JournalRecord::PathSelected { actions })
        }
        "reverse" => Ok(JournalRecord::GoalReversed),
        "step" => Ok(JournalRecord::StepStarted { step: step("id")?, ix: num("ix")? as u32 }),
        "resume" => Ok(JournalRecord::ResumeIssued { step: step("id")? }),
        "commit" => Ok(JournalRecord::StepCommitted { step: step("id")? }),
        "rollback" => Ok(JournalRecord::RollbackIssued { step: step("id")? }),
        "rolledback" => {
            Ok(JournalRecord::RollbackComplete { step: step("id")?, retry: boolean("retry")? })
        }
        "outcome" => Ok(JournalRecord::Outcome {
            success: boolean("success")?,
            gave_up: boolean("gave_up")?,
        }),
        other => Err(format!("unknown journal verb '{other}'")),
    }
}

/// One journal record tagged with the adaptation session it belongs to.
///
/// The fleet control plane interleaves every session's decision points into
/// a single durable journal (append order is the decision order, which
/// restore needs for requeue ordering); partitioning the records by session
/// recovers each session's plain `Vec<JournalRecord>` for
/// [`ManagerCore::restore`](crate::ManagerCore::restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// The session the record belongs to ([`SessionId::SOLO`] outside the
    /// control plane).
    pub session: SessionId,
    /// The decision point.
    pub record: JournalRecord,
}

impl From<JournalRecord> for SessionRecord {
    fn from(record: JournalRecord) -> Self {
        SessionRecord { session: SessionId::SOLO, record }
    }
}

impl fmt::Display for SessionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Session 0 is elided, so a solo journal is byte-identical to the
        // pre-fleet text form; and because `parse_record` ignores unknown
        // `key=value` fields, the pre-fleet parser still reads tagged lines
        // (it just drops the tag). Both directions stay compatible.
        self.record.fmt(f)?;
        if self.session != SessionId::SOLO {
            write!(f, " session={}", self.session.0)?;
        }
        Ok(())
    }
}

/// Serializes a session-tagged journal to its line-oriented text form.
pub fn encode_session_journal(records: &[SessionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Parses the text form produced by [`encode_session_journal`]. Lines
/// without a `session=` field — i.e. every pre-fleet journal — parse as
/// [`SessionId::SOLO`]. Blank lines and `#` comments are ignored.
pub fn parse_session_journal(text: &str) -> Result<Vec<SessionRecord>, String> {
    let mut records = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_session_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(records)
}

fn parse_session_record(line: &str) -> Result<SessionRecord, String> {
    let record = parse_record(line)?;
    let mut session = SessionId::SOLO;
    for w in line.split_whitespace().skip(1) {
        if let Some(v) = w.strip_prefix("session=") {
            session = SessionId(v.parse::<u64>().map_err(|e| format!("field 'session': {e}"))?);
        }
    }
    Ok(SessionRecord { session, record })
}

/// One durable decision point of the *global* (straddler) control tier.
///
/// The global tier runs scope-straddling sessions by acquiring per-region
/// lock slices over the cross-shard fabric. Each irreversible step of that
/// handshake — escalating a session onto the fabric, durably applying a
/// region's grant, submitting the fully-held session to the embedded
/// control plane, confirming a region's release, withdrawing, or abandoning
/// an unreachable region — is journaled *before* the fabric messages it
/// covers, mirroring the [`JournalRecord`] write-ahead discipline. After a
/// crash the global tier replays this journal to re-drive partial ascending
/// lock chains under a bumped incarnation (regions reclaim stale leases by
/// epoch comparison) and requeues waiting straddlers in journal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalRecord {
    /// A straddling session began its ascending-order slice acquisition.
    Escalated {
        /// The straddling session.
        session: u64,
        /// The regions its scope crosses, ascending.
        regions: Vec<u32>,
    },
    /// A region's `LockGranted` was applied durably (its authoritative
    /// component values folded into the global configuration).
    SliceGranted {
        /// The straddling session.
        session: u64,
        /// The granting region.
        region: u32,
    },
    /// Every slice was held and the session entered the embedded control
    /// plane (whose own session journal takes over from here).
    Submitted {
        /// The straddling session.
        session: u64,
    },
    /// A region acknowledged the session's `LockRelease`: the slice is free
    /// and the final component values are folded on the region's side.
    Released {
        /// The straddling session.
        session: u64,
        /// The acknowledging region.
        region: u32,
    },
    /// The session withdrew before every slice was granted; releases for
    /// the acquired prefix are (re-)issued until acknowledged.
    Withdrawn {
        /// The straddling session.
        session: u64,
    },
    /// The fabric retransmission ladder exhausted against an unreachable
    /// region: the session resolves with a clean `Rejected` outcome and its
    /// acquired prefix is released.
    Abandoned {
        /// The straddling session.
        session: u64,
        /// The unreachable region.
        region: u32,
    },
}

fn fmt_regions(regions: &[u32]) -> String {
    if regions.is_empty() {
        "-".to_string()
    } else {
        regions.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(",")
    }
}

impl fmt::Display for GlobalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalRecord::Escalated { session, regions } => {
                write!(f, "escalated session={session} regions={}", fmt_regions(regions))
            }
            GlobalRecord::SliceGranted { session, region } => {
                write!(f, "slice session={session} region={region}")
            }
            GlobalRecord::Submitted { session } => write!(f, "submitted session={session}"),
            GlobalRecord::Released { session, region } => {
                write!(f, "released session={session} region={region}")
            }
            GlobalRecord::Withdrawn { session } => write!(f, "withdrawn session={session}"),
            GlobalRecord::Abandoned { session, region } => {
                write!(f, "abandoned session={session} region={region}")
            }
        }
    }
}

/// Serializes a global-tier journal to its line-oriented text form.
pub fn encode_global_journal(records: &[GlobalRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Parses the text form produced by [`encode_global_journal`]. Blank lines
/// and `#` comments are ignored.
pub fn parse_global_journal(text: &str) -> Result<Vec<GlobalRecord>, String> {
    let mut records = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_global_record(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(records)
}

fn parse_global_record(line: &str) -> Result<GlobalRecord, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or("empty journal line")?;
    let mut fields = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| format!("expected key=value, got '{w}'"))?;
        fields.insert(k, v);
    }
    let raw = |k: &str| -> Result<&str, String> {
        fields.get(k).copied().ok_or_else(|| format!("missing field '{k}'"))
    };
    let num = |k: &str| -> Result<u64, String> {
        raw(k)?.parse::<u64>().map_err(|e| format!("field '{k}': {e}"))
    };
    let region = |k: &str| -> Result<u32, String> {
        raw(k)?.parse::<u32>().map_err(|e| format!("field '{k}': {e}"))
    };
    match verb {
        "escalated" => {
            let v = raw("regions")?;
            let regions = if v == "-" {
                Vec::new()
            } else {
                v.split(',')
                    .map(|s| s.parse::<u32>().map_err(|e| format!("field 'regions': {e}")))
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(GlobalRecord::Escalated { session: num("session")?, regions })
        }
        "slice" => {
            Ok(GlobalRecord::SliceGranted { session: num("session")?, region: region("region")? })
        }
        "submitted" => Ok(GlobalRecord::Submitted { session: num("session")? }),
        "released" => {
            Ok(GlobalRecord::Released { session: num("session")?, region: region("region")? })
        }
        "withdrawn" => Ok(GlobalRecord::Withdrawn { session: num("session")? }),
        "abandoned" => {
            Ok(GlobalRecord::Abandoned { session: num("session")?, region: region("region")? })
        }
        other => Err(format!("unknown global journal verb '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sada_expr::CompId;

    fn cfg(bits: &str) -> Config {
        parse_config(bits).unwrap()
    }

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Request { source: cfg("0101"), target: cfg("0110") },
            JournalRecord::Queued { source: cfg("0110"), target: cfg("1001") },
            JournalRecord::PathSelected { actions: vec![ActionId(2), ActionId(0)] },
            JournalRecord::StepStarted { step: StepId(1), ix: 0 },
            JournalRecord::ResumeIssued { step: StepId(1) },
            JournalRecord::StepCommitted { step: StepId(1) },
            JournalRecord::StepStarted { step: StepId(2), ix: 1 },
            JournalRecord::RollbackIssued { step: StepId(2) },
            JournalRecord::RollbackComplete { step: StepId(2), retry: true },
            JournalRecord::GoalReversed,
            JournalRecord::PathSelected { actions: vec![] },
            JournalRecord::Outcome { success: false, gave_up: false },
        ]
    }

    #[test]
    fn text_round_trip_is_identity() {
        let records = sample();
        let text = encode_journal(&records);
        let parsed = parse_journal(&text).unwrap();
        assert_eq!(records, parsed, "text:\n{text}");
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let parsed = parse_journal("# preamble\n\nstep id=4 ix=1\n").unwrap();
        assert_eq!(parsed, vec![JournalRecord::StepStarted { step: StepId(4), ix: 1 }]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_journal("explode id=1").is_err());
        assert!(parse_journal("step ix=1").is_err());
        assert!(parse_journal("step id=x ix=1").is_err());
        assert!(parse_journal("request source=012 target=000").is_err());
        assert!(parse_journal("rolledback id=1 retry=maybe").is_err());
    }

    #[test]
    fn config_bits_preserve_order() {
        // The leftmost bit is the highest component index, as in the paper.
        let c = cfg("100");
        assert!(c.contains(CompId::from_index(2)));
        assert!(!c.contains(CompId::from_index(0)));
        assert_eq!(c.to_bit_string(), "100");
    }

    fn arb_config(width: usize) -> impl Strategy<Value = Config> {
        proptest::collection::vec(any::<bool>(), width).prop_map(|bits| {
            let mut c = Config::empty(bits.len());
            for (ix, b) in bits.iter().enumerate() {
                if *b {
                    c.insert(CompId::from_index(ix));
                }
            }
            c
        })
    }

    fn arb_step() -> impl Strategy<Value = StepId> {
        (1u64..1_000).prop_map(StepId)
    }

    fn arb_record() -> impl Strategy<Value = JournalRecord> {
        prop_oneof![
            (arb_config(7), arb_config(7))
                .prop_map(|(source, target)| JournalRecord::Request { source, target }),
            (arb_config(7), arb_config(7))
                .prop_map(|(source, target)| JournalRecord::Queued { source, target }),
            proptest::collection::vec((0u32..64).prop_map(ActionId), 0..5)
                .prop_map(|actions| JournalRecord::PathSelected { actions }),
            Just(JournalRecord::GoalReversed),
            (arb_step(), 0u32..16).prop_map(|(step, ix)| JournalRecord::StepStarted { step, ix }),
            arb_step().prop_map(|step| JournalRecord::ResumeIssued { step }),
            arb_step().prop_map(|step| JournalRecord::StepCommitted { step }),
            arb_step().prop_map(|step| JournalRecord::RollbackIssued { step }),
            (arb_step(), any::<bool>())
                .prop_map(|(step, retry)| JournalRecord::RollbackComplete { step, retry }),
            (any::<bool>(), any::<bool>())
                .prop_map(|(success, gave_up)| JournalRecord::Outcome { success, gave_up }),
        ]
    }

    #[test]
    fn old_sessionless_lines_parse_as_session_zero() {
        let records = sample();
        // A pre-fleet journal (no session fields anywhere) read by the new
        // parser: every record lands in session 0.
        let old_text = encode_journal(&records);
        let tagged = parse_session_journal(&old_text).unwrap();
        assert!(tagged.iter().all(|r| r.session == SessionId::SOLO));
        assert_eq!(tagged.iter().map(|r| r.record.clone()).collect::<Vec<_>>(), records);
        // And a solo session-tagged journal encodes byte-identically to the
        // pre-fleet form.
        let solo: Vec<SessionRecord> = records.into_iter().map(SessionRecord::from).collect();
        assert_eq!(encode_session_journal(&solo), old_text);
    }

    #[test]
    fn old_parser_reads_tagged_lines_by_dropping_the_tag() {
        let tagged: Vec<SessionRecord> = sample()
            .into_iter()
            .enumerate()
            .map(|(i, record)| SessionRecord { session: SessionId(i as u64 % 3), record })
            .collect();
        let text = encode_session_journal(&tagged);
        // Forward compatibility: the session-less parser accepts the tagged
        // text, ignoring the unknown field.
        let stripped = parse_journal(&text).unwrap();
        assert_eq!(stripped, tagged.iter().map(|r| r.record.clone()).collect::<Vec<_>>());
    }

    fn arb_session_record() -> impl Strategy<Value = SessionRecord> {
        (0u64..9, arb_record())
            .prop_map(|(s, record)| SessionRecord { session: SessionId(s), record })
    }

    fn arb_global_record() -> impl Strategy<Value = GlobalRecord> {
        let session = 1u64..1_000;
        prop_oneof![
            (session.clone(), proptest::collection::vec(0u32..16, 0..5))
                .prop_map(|(session, regions)| GlobalRecord::Escalated { session, regions }),
            (session.clone(), 0u32..16)
                .prop_map(|(session, region)| GlobalRecord::SliceGranted { session, region }),
            session.clone().prop_map(|session| GlobalRecord::Submitted { session }),
            (session.clone(), 0u32..16)
                .prop_map(|(session, region)| GlobalRecord::Released { session, region }),
            session.clone().prop_map(|session| GlobalRecord::Withdrawn { session }),
            (session, 0u32..16)
                .prop_map(|(session, region)| GlobalRecord::Abandoned { session, region }),
        ]
    }

    #[test]
    fn global_journal_text_round_trips() {
        let records = vec![
            GlobalRecord::Escalated { session: 7, regions: vec![0, 3] },
            GlobalRecord::SliceGranted { session: 7, region: 0 },
            GlobalRecord::SliceGranted { session: 7, region: 3 },
            GlobalRecord::Submitted { session: 7 },
            GlobalRecord::Released { session: 7, region: 0 },
            GlobalRecord::Withdrawn { session: 9 },
            GlobalRecord::Abandoned { session: 11, region: 2 },
        ];
        let text = encode_global_journal(&records);
        assert_eq!(parse_global_journal(&text).unwrap(), records, "text:\n{text}");
    }

    #[test]
    fn global_journal_rejects_malformed_lines() {
        assert!(parse_global_journal("teleported session=1").is_err());
        assert!(parse_global_journal("slice session=1").is_err());
        assert!(parse_global_journal("slice session=x region=0").is_err());
        assert!(parse_global_journal("escalated session=1 regions=0,oops").is_err());
    }

    proptest! {
        #[test]
        fn every_journal_round_trips(records in proptest::collection::vec(arb_record(), 0..40)) {
            let text = encode_journal(&records);
            let parsed = parse_journal(&text).unwrap();
            prop_assert_eq!(records, parsed);
        }

        #[test]
        fn every_global_journal_round_trips(
            records in proptest::collection::vec(arb_global_record(), 0..40),
        ) {
            let text = encode_global_journal(&records);
            let parsed = parse_global_journal(&text).unwrap();
            prop_assert_eq!(records, parsed);
        }

        #[test]
        fn every_session_journal_round_trips(
            records in proptest::collection::vec(arb_session_record(), 0..40),
        ) {
            let text = encode_session_journal(&records);
            let parsed = parse_session_journal(&text).unwrap();
            prop_assert_eq!(&records, &parsed);
            // The session-less view of the same text is the record column.
            let stripped = parse_journal(&text).unwrap();
            let expected: Vec<JournalRecord> =
                records.iter().map(|r| r.record.clone()).collect();
            prop_assert_eq!(stripped, expected);
        }
    }
}
