//! Simnet adapters: running the manager and scriptable agents on the
//! discrete-event network.
//!
//! [`ManagerActor`] is the production adapter (the video application reuses
//! it unchanged); [`ScriptedAgent`] is a configurable stand-in for a real
//! process, used by the protocol tests and benches to exercise every failure
//! mode with controlled timing.

use std::collections::HashMap;
use std::marker::PhantomData;

use sada_expr::Config;
use sada_obs::{Bus, FleetEvent, Payload};
use sada_plan::{ActionId, Path};
use sada_resilience::{
    BreakerConfig, BreakerTransition, CircuitBreaker, ReannouncePolicy, RetryMode, RttEstimator,
};
use sada_simnet::{Actor, ActorId, Context, SimDuration, SimTime, TimerId};

use crate::agent::{AgentCore, AgentEffect, AgentEvent};
use crate::journal::JournalRecord;
use crate::manager::{
    AdaptationPlanner, ManagerCore, ManagerEffect, ManagerEvent, Outcome, PlannedStep, ProtoTiming,
};
use crate::messages::{LocalAction, SessionId, Wire};

/// Placeholder planner installed while the real planner is carried across a
/// manager restart (never consulted).
struct NoopPlanner;

impl AdaptationPlanner for NoopPlanner {
    fn paths(&mut self, _from: &Config, _to: &Config, _k: usize) -> Vec<Path> {
        Vec::new()
    }

    fn compile(&mut self, _path: &Path) -> Vec<PlannedStep> {
        Vec::new()
    }
}

/// The adaptation manager as a simulated process.
///
/// Generic over the application payload `M` (the manager itself only speaks
/// [`ProtoMsg`]). The adaptation request fires at start-up; the outcome is
/// readable from the actor state after the run.
///
/// The actor models the durability split of a crash-safe deployment: the
/// [`ManagerCore`] and its timers are the volatile process image and are
/// rebuilt from scratch when fault injection crashes this actor, while the
/// write-ahead [`journal`](Self::journal) plays the role of the durable log
/// a production manager would fsync — it survives the crash, and the
/// restarted incarnation replays it through [`ManagerCore::restore`], then
/// reconciles agent state with [`ProtoMsg::QueryState`] probes under a
/// bumped epoch.
///
/// Application-message predicate that fires the adaptation request.
type Trigger<M> = Box<dyn Fn(&M) -> bool>;

pub struct ManagerActor<M> {
    core: ManagerCore,
    agents: Vec<ActorId>,
    actor_to_agent: HashMap<ActorId, usize>,
    timers: HashMap<u64, TimerId>,
    request: Option<(Config, Config)>,
    request_delay: SimDuration,
    trigger: Option<Trigger<M>>,
    /// Timing policy, kept so a restarted incarnation is rebuilt under the
    /// same policy the dead one ran.
    timing: ProtoTiming,
    /// This manager's incarnation number (stamped on outgoing traffic).
    epoch: u64,
    /// Highest incarnation seen per agent; older traffic is pre-crash
    /// residue and is discarded before it reaches the state machine.
    agent_epochs: HashMap<ActorId, u64>,
    /// The durable write-ahead adaptation journal (everything the core
    /// emitted as [`ManagerEffect::Journal`], in order). Survives crashes of
    /// this actor by construction — the simulator only destroys in-flight
    /// deliveries and timers, which is exactly the volatile set.
    pub journal: Vec<JournalRecord>,
    /// Times this manager crashed and was rebuilt from its journal.
    pub restores: u64,
    /// Final outcome, set when the adaptation completes.
    pub outcome: Option<Outcome>,
    /// Virtual time at which the outcome was produced (the realization
    /// latency; the simulation may quiesce later while stale timers drain).
    pub completed_at: Option<sada_simnet::SimTime>,
    /// Progress log (the manager's `Info` effects).
    pub infos: Vec<String>,
    /// Breaker policy, kept (like `timing`) so a restarted incarnation is
    /// rebuilt under the same policy. `None` disables the gate entirely.
    breaker_cfg: Option<BreakerConfig>,
    /// Per-agent circuit breakers (volatile process state).
    breakers: Vec<CircuitBreaker>,
    /// Per-agent RTT estimators feeding the adaptive retry deadline
    /// (volatile: a restarted manager re-learns the network).
    rtt: Vec<RttEstimator>,
    /// First unanswered send per agent, for Karn-rule RTT sampling.
    pending_since: HashMap<usize, SimTime>,
    /// True while applying effects produced by a protocol timeout — sends
    /// in that window are retransmissions, i.e. breaker failure evidence.
    in_timeout: bool,
    /// Times any breaker tripped open (diagnostics; survives restarts).
    pub breaker_trips: u64,
    /// Sends refused by open breakers (diagnostics; survives restarts).
    pub suppressed_sends: u64,
    bus: Bus,
    _marker: PhantomData<fn() -> M>,
}

impl<M> ManagerActor<M> {
    /// Creates a manager actor that will drive `source → target` over the
    /// given agent actors as soon as the simulation starts.
    pub fn new(
        timing: ProtoTiming,
        planner: Box<dyn AdaptationPlanner>,
        agents: Vec<ActorId>,
        source: Config,
        target: Config,
    ) -> Self {
        let actor_to_agent = agents.iter().enumerate().map(|(ix, &a)| (a, ix)).collect();
        let rtt = vec![RttEstimator::new(); agents.len()];
        ManagerActor {
            core: ManagerCore::new(timing, planner),
            agents,
            actor_to_agent,
            timers: HashMap::new(),
            request: Some((source, target)),
            request_delay: SimDuration::ZERO,
            trigger: None,
            timing,
            epoch: 0,
            agent_epochs: HashMap::new(),
            journal: Vec::new(),
            restores: 0,
            outcome: None,
            completed_at: None,
            infos: Vec::new(),
            breaker_cfg: None,
            breakers: Vec::new(),
            rtt,
            pending_since: HashMap::new(),
            in_timeout: false,
            breaker_trips: 0,
            suppressed_sends: 0,
            bus: Bus::new(),
            _marker: PhantomData,
        }
    }

    /// Installs per-agent circuit breakers between the core and the wire:
    /// an agent that keeps timing out stops absorbing retransmissions and
    /// is re-engaged through a single seeded half-open probe.
    pub fn with_breakers(mut self, cfg: BreakerConfig) -> Self {
        self.breaker_cfg = Some(cfg);
        self.breakers = (0..self.agents.len()).map(|_| CircuitBreaker::new(cfg)).collect();
        self
    }

    /// Emits the manager's protocol/plan events onto `bus` (timestamped
    /// with the virtual clock, attributed to this actor).
    pub fn with_bus(mut self, bus: Bus) -> Self {
        self.bus = bus;
        self
    }

    /// Delays the adaptation request by `delay` of simulated time after
    /// start-up (the case study streams video first, then hardens security).
    pub fn with_request_delay(mut self, delay: SimDuration) -> Self {
        self.request_delay = delay;
        self
    }

    /// Withholds the request until an application message satisfying
    /// `trigger` arrives — the hook a decision-making monitor uses to start
    /// the adaptation (e.g. "packet loss exceeded threshold, insert FEC").
    /// Overrides any request delay.
    pub fn with_request_trigger(mut self, trigger: Box<dyn Fn(&M) -> bool>) -> Self {
        self.trigger = Some(trigger);
        self
    }

    /// The manager state machine (for phase assertions in tests).
    pub fn core(&self) -> &ManagerCore {
        &self.core
    }

    /// This manager's incarnation number (0 until the first crash/restart).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn emit_fleet(&mut self, ctx: &mut Context<'_, Wire<M>>, ev: FleetEvent)
    where
        M: Clone + 'static,
    {
        if self.bus.has_sinks() {
            self.bus.emit(sada_obs::Event {
                at: ctx.now(),
                actor: ctx.self_id().index() as u32,
                session: 0,
                shard: 0,
                payload: Payload::Fleet(ev),
            });
        }
    }

    fn emit_transition(
        &mut self,
        ctx: &mut Context<'_, Wire<M>>,
        agent: usize,
        tr: BreakerTransition,
    ) where
        M: Clone + 'static,
    {
        let agent = agent as u32;
        let ev = match tr {
            BreakerTransition::Opened { cooldown } => {
                self.breaker_trips += 1;
                FleetEvent::BreakerOpened { agent, cooldown_us: cooldown.as_micros() }
            }
            BreakerTransition::Probing => FleetEvent::BreakerProbed { agent },
            BreakerTransition::Closed => FleetEvent::BreakerClosed { agent },
        };
        self.emit_fleet(ctx, ev);
    }

    /// Records an arrival from `agent`: an RTT sample when a send was
    /// outstanding (Karn's rule — the timestamp of the *first* transmission,
    /// never a retransmission's), and success evidence for the breaker. Runs
    /// for every current-epoch message, including acks the core will discard
    /// as stale: a slow agent whose answer arrives after the manager already
    /// gave up on the phase still teaches the estimator its true latency.
    fn observe_arrival(&mut self, ctx: &mut Context<'_, Wire<M>>, agent: usize)
    where
        M: Clone + 'static,
    {
        if let Some(t0) = self.pending_since.remove(&agent) {
            let sample = ctx.now().saturating_since(t0);
            self.rtt[agent].observe(sample);
            if self.timing.retry.mode == RetryMode::Adaptive {
                let (srtt, rto) = (self.rtt[agent].srtt(), self.rtt[agent].rto());
                if let (Some(srtt), Some(rto)) = (srtt, rto) {
                    self.emit_fleet(
                        ctx,
                        FleetEvent::TimeoutAdapted {
                            agent: agent as u32,
                            srtt_us: srtt.as_micros(),
                            rto_us: rto.as_micros(),
                        },
                    );
                }
            }
        }
        if agent < self.breakers.len() {
            if let Some(tr) = self.breakers[agent].on_success(ctx.now()) {
                self.emit_transition(ctx, agent, tr);
            }
        }
    }

    /// Feeds the core the RTO of the slowest agent before its next event, so
    /// adaptive retry deadlines track observed latency. No-op in fixed mode.
    fn refresh_hint(&mut self) {
        if self.timing.retry.mode != RetryMode::Adaptive {
            return;
        }
        let hint = self.rtt.iter().filter_map(RttEstimator::rto).max();
        self.core.set_timeout_hint(hint);
    }

    fn apply(&mut self, ctx: &mut Context<'_, Wire<M>>, effects: Vec<ManagerEffect>)
    where
        M: Clone + 'static,
    {
        let obs = self.core.drain_obs();
        if self.bus.has_sinks() {
            let (at, actor) = (ctx.now(), ctx.self_id().index() as u32);
            for payload in obs {
                self.bus.emit(sada_obs::Event { at, actor, session: 0, shard: 0, payload });
            }
        }
        for eff in effects {
            match eff {
                ManagerEffect::Send { agent, msg } => {
                    // A send emitted while handling a timeout is a
                    // retransmission: failure evidence for the breaker.
                    if self.in_timeout && agent < self.breakers.len() {
                        if let Some(tr) = self.breakers[agent].on_failure(ctx.now()) {
                            self.emit_transition(ctx, agent, tr);
                        }
                    }
                    if agent < self.breakers.len() {
                        let (ok, tr) = self.breakers[agent].allow_send(ctx.now());
                        if let Some(tr) = tr {
                            self.emit_transition(ctx, agent, tr);
                        }
                        if !ok {
                            // The breaker absorbs the retry; the protocol's
                            // own timeout ladder keeps running and will
                            // journal an outcome either way.
                            self.suppressed_sends += 1;
                            continue;
                        }
                    }
                    self.pending_since.entry(agent).or_insert_with(|| ctx.now());
                    ctx.send(
                        self.agents[agent],
                        Wire::Proto { epoch: self.epoch, session: SessionId::SOLO, msg },
                    );
                }
                ManagerEffect::SetTimer { token, after } => {
                    let id = ctx.set_timer(after, token);
                    self.timers.insert(token, id);
                }
                ManagerEffect::CancelTimer { token } => {
                    if let Some(id) = self.timers.remove(&token) {
                        ctx.cancel_timer(id);
                    }
                }
                ManagerEffect::Complete(outcome) => {
                    self.outcome = Some(outcome);
                    self.completed_at = Some(ctx.now());
                }
                ManagerEffect::Journal(rec) => self.journal.push(rec),
                ManagerEffect::Info(s) => self.infos.push(s),
            }
        }
    }
}

/// Timer tag reserved for the delayed adaptation request.
const TAG_REQUEST: u64 = u64::MAX;

impl<M: Clone + 'static> Actor<Wire<M>> for ManagerActor<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        if self.trigger.is_some() {
            // Waiting for the decision-making monitor.
        } else if self.request_delay > SimDuration::ZERO {
            ctx.set_timer(self.request_delay, TAG_REQUEST);
        } else if let Some((source, target)) = self.request.take() {
            let eff = self.core.on_event(ManagerEvent::Request { source, target });
            self.apply(ctx, eff);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Wire<M>>, from: ActorId, msg: Wire<M>) {
        match msg {
            Wire::Proto { epoch, msg: p, .. } => {
                if let Some(&agent) = self.actor_to_agent.get(&from) {
                    let seen = self.agent_epochs.entry(from).or_insert(0);
                    if epoch < *seen {
                        return; // pre-crash residue from an old incarnation
                    }
                    *seen = epoch;
                    self.observe_arrival(ctx, agent);
                    self.refresh_hint();
                    let eff = self.core.on_event(ManagerEvent::AgentMsg { agent, msg: p });
                    self.apply(ctx, eff);
                }
            }
            Wire::App(m) => {
                if self.trigger.as_ref().is_some_and(|t| t(&m)) {
                    if let Some((source, target)) = self.request.take() {
                        let eff = self.core.on_event(ManagerEvent::Request { source, target });
                        self.apply(ctx, eff);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<M>>, tag: u64) {
        if tag == TAG_REQUEST {
            if let Some((source, target)) = self.request.take() {
                let eff = self.core.on_event(ManagerEvent::Request { source, target });
                self.apply(ctx, eff);
            }
            return;
        }
        self.timers.remove(&tag);
        self.refresh_hint();
        let eff = self.core.on_event(ManagerEvent::Timeout { token: tag });
        self.in_timeout = true;
        self.apply(ctx, eff);
        self.in_timeout = false;
    }

    fn on_crash(&mut self, _now: SimTime) {
        // The process image dies: armed timers, the per-agent epoch
        // watermark, breakers, and RTT estimators are volatile. The journal
        // field deliberately survives — it stands in for the durable log of
        // a real deployment.
        self.timers.clear();
        self.agent_epochs.clear();
        self.pending_since.clear();
        for e in &mut self.rtt {
            *e = RttEstimator::new();
        }
        if let Some(cfg) = self.breaker_cfg {
            self.breakers = (0..self.agents.len()).map(|_| CircuitBreaker::new(cfg)).collect();
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        self.epoch += 1;
        self.restores += 1;
        // Carry the planner out of the dead core (planners are deterministic
        // and stateless with respect to protocol progress, so reuse is
        // sound) and replay the journal into a fresh one.
        let dead =
            std::mem::replace(&mut self.core, ManagerCore::new(self.timing, Box::new(NoopPlanner)));
        let (core, eff) = ManagerCore::restore(self.timing, dead.into_planner(), &self.journal)
            .unwrap_or_else(|e| panic!("manager journal replay failed: {e}"));
        self.core = core;
        self.apply(ctx, eff);
        // If the request had not yet fired (its arming timer died with the
        // crash), re-arm it for the originally scheduled instant; trigger
        // mode just keeps waiting for the application predicate.
        if self.request.is_some() && self.trigger.is_none() {
            let due = self.request_delay.as_micros();
            let now = ctx.now().as_micros();
            if due > now {
                ctx.set_timer(SimDuration::from_micros(due - now), TAG_REQUEST);
            } else if let Some((source, target)) = self.request.take() {
                let eff = self.core.on_event(ManagerEvent::Request { source, target });
                self.apply(ctx, eff);
            }
        }
    }
}

/// How long each local operation takes on a [`ScriptedAgent`].
#[derive(Debug, Clone, Copy)]
pub struct AgentTiming {
    /// Delay from `reset` to the safe state (packet boundary + drain).
    pub safe_delay: SimDuration,
    /// Extra delay when the action's global safe condition requires
    /// draining in-flight traffic (the paper's expensive compound actions).
    pub drain_extra: SimDuration,
    /// Duration of the structural in-action.
    pub act_delay: SimDuration,
    /// Delay to restore full operation.
    pub resume_delay: SimDuration,
    /// Duration of a rollback.
    pub rollback_delay: SimDuration,
}

impl Default for AgentTiming {
    fn default() -> Self {
        AgentTiming {
            safe_delay: SimDuration::from_millis(5),
            drain_extra: SimDuration::from_millis(25),
            act_delay: SimDuration::from_millis(2),
            resume_delay: SimDuration::from_millis(1),
            rollback_delay: SimDuration::from_millis(2),
        }
    }
}

/// Timer tag for reaching the safe state ([`ScriptedAgent`] and arena
/// embeddings of the same state machine share these, so traces line up).
pub const TAG_SAFE: u64 = 1;
/// Timer tag for completing the structural in-action.
pub const TAG_ACT: u64 = 2;
/// Timer tag for restoring full operation.
pub const TAG_RESUME: u64 = 3;
/// Timer tag for completing a rollback.
pub const TAG_ROLLBACK: u64 = 4;
/// Timer tag for retransmitting a post-restart `Rejoin` announcement.
pub const TAG_REJOIN: u64 = 5;

/// A process whose local adaptation behaviour is scripted: it reaches its
/// safe state, performs in-actions, resumes and rolls back after fixed
/// delays, and can be told to exhibit the paper's fail-to-reset failure.
///
/// Under fault injection it models the volatile-uncommitted crash model:
/// a crash destroys the step in progress (an applied-but-uncommitted
/// in-action is recorded as evaporated in [`ScriptedAgent::applied`])
/// while completed steps survive on durable storage; the restart bumps the
/// agent's epoch and announces [`ProtoMsg::Rejoin`] to the manager,
/// retransmitting until it is resynchronized.
///
/// [`ProtoMsg::Rejoin`]: crate::ProtoMsg::Rejoin
pub struct ScriptedAgent {
    core: AgentCore,
    manager: ActorId,
    timing: AgentTiming,
    /// When true, the agent reports `fail to reset` instead of reaching its
    /// safe state (a long critical communication segment).
    pub fail_to_reset: bool,
    /// Forward (`true`) and rollback (`false`) structural changes actually
    /// applied, in order — the ground truth tests compare against.
    pub applied: Vec<(ActionId, bool)>,
    /// Crashes suffered (fault injection).
    pub crashes: u64,
    /// `Rejoin` announcements put on the wire.
    pub rejoins_sent: u64,
    epoch: u64,
    manager_epoch: u64,
    /// How often a restarted agent retransmits `Rejoin` until the manager
    /// engages it, and how many times it tries. The budget must outlast a
    /// partition window plus the manager's phase timeout, or a lost rejoin
    /// degenerates into the (safe but slower) pure-timeout recovery.
    reannounce: ReannouncePolicy,
    rejoin_budget: u32,
    pending_action: Option<LocalAction>,
    pending_rollback: Option<LocalAction>,
    /// Last session seen on incoming protocol traffic; echoed on every
    /// outgoing message (and stamped on bus events) so a multi-session
    /// control plane can route this agent's replies. Stays
    /// [`SessionId::SOLO`] under a single-session manager.
    session: SessionId,
    bus: Bus,
}

impl ScriptedAgent {
    /// Creates an agent reporting to `manager`.
    pub fn new(manager: ActorId, timing: AgentTiming) -> Self {
        ScriptedAgent {
            core: AgentCore::new(),
            manager,
            timing,
            fail_to_reset: false,
            applied: Vec::new(),
            crashes: 0,
            rejoins_sent: 0,
            epoch: 0,
            manager_epoch: 0,
            reannounce: ReannouncePolicy::default(),
            rejoin_budget: 0,
            pending_action: None,
            pending_rollback: None,
            session: SessionId::SOLO,
            bus: Bus::new(),
        }
    }

    /// Emits the agent's protocol state transitions onto `bus` (timestamped
    /// with the virtual clock, attributed to this actor).
    pub fn with_bus(mut self, bus: Bus) -> Self {
        self.bus = bus;
        self
    }

    /// Overrides the rejoin re-announcement schedule (period and budget).
    pub fn with_reannounce(mut self, policy: ReannouncePolicy) -> Self {
        self.reannounce = policy;
        self
    }

    /// The agent state machine (for state assertions in tests).
    pub fn core(&self) -> &AgentCore {
        &self.core
    }

    /// This agent's incarnation number (0 until the first crash/restart).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session this agent last worked under (for routing assertions).
    pub fn session(&self) -> SessionId {
        self.session
    }

    fn send_rejoin<M: Clone + 'static>(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        self.rejoins_sent += 1;
        ctx.send(
            self.manager,
            Wire::Proto {
                epoch: self.epoch,
                session: self.session,
                msg: crate::messages::ProtoMsg::Rejoin {
                    last_completed: self.core.last_completed(),
                },
            },
        );
        ctx.set_timer(self.reannounce.period, TAG_REJOIN);
    }

    fn apply<M: Clone + 'static>(
        &mut self,
        ctx: &mut Context<'_, Wire<M>>,
        effects: Vec<AgentEffect>,
    ) {
        let obs = self.core.drain_obs();
        if self.bus.has_sinks() {
            let (at, actor) = (ctx.now(), ctx.self_id().index() as u32);
            for payload in obs {
                self.bus.emit(sada_obs::Event {
                    at,
                    actor,
                    session: self.session.0,
                    shard: 0,
                    payload,
                });
            }
        }
        for eff in effects {
            match eff {
                AgentEffect::Send(msg) => ctx.send(
                    self.manager,
                    Wire::Proto { epoch: self.epoch, session: self.session, msg },
                ),
                AgentEffect::PreAction(_) => {}
                AgentEffect::BeginReset(la) => {
                    // Reaching the safe state takes time — more when the
                    // global safe condition demands draining; a
                    // fail-to-reset agent discovers after the same delay
                    // that it cannot.
                    let delay = if la.needs_global_drain {
                        self.timing.safe_delay + self.timing.drain_extra
                    } else {
                        self.timing.safe_delay
                    };
                    ctx.set_timer(delay, TAG_SAFE);
                }
                AgentEffect::DoInAction(la) => {
                    self.pending_action = Some(la);
                    ctx.set_timer(self.timing.act_delay, TAG_ACT);
                }
                AgentEffect::DoResume => {
                    ctx.set_timer(self.timing.resume_delay, TAG_RESUME);
                }
                AgentEffect::PostAction(_) => {}
                AgentEffect::DoRollback(la) => {
                    self.pending_rollback = la;
                    ctx.set_timer(self.timing.rollback_delay, TAG_ROLLBACK);
                }
            }
        }
    }
}

impl<M: Clone + 'static> Actor<Wire<M>> for ScriptedAgent {
    fn on_message(&mut self, ctx: &mut Context<'_, Wire<M>>, _from: ActorId, msg: Wire<M>) {
        if let Wire::Proto { epoch, session, msg: p } = msg {
            if epoch < self.manager_epoch {
                return; // residue from a previous manager incarnation
            }
            self.manager_epoch = epoch;
            // Adopt the sender's session so replies (and this agent's bus
            // events) are tagged with the adaptation they belong to.
            self.session = session;
            let eff = self.core.on_event(AgentEvent::Msg(p));
            self.apply(ctx, eff);
            if self.core.state() != crate::AgentState::Running {
                // The manager has re-engaged this incarnation: the rejoin
                // announcement has served its purpose. (A Resume ignored in
                // the running state does NOT count — that is exactly the
                // lost-rejoin divergence the retransmissions exist for.)
                self.rejoin_budget = 0;
            }
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        self.crashes += 1;
        // The volatile-uncommitted model: a structural change that was
        // applied but never committed evaporates with the process image.
        // Record it as undone so the ground-truth replay sees what a fresh
        // process image actually contains.
        if let Some(la) = self.core.uncommitted_action() {
            self.applied.push((la.action, false));
        }
        self.pending_action = None;
        self.pending_rollback = None;
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Wire<M>>) {
        // New incarnation: only durable state (completed steps) survives.
        self.epoch += 1;
        let prev = self.core.state();
        self.core = AgentCore::restore(self.core.last_completed());
        // The crash snapped the state machine back to Running without an
        // ordinary transition; emit one so per-phase interval integration
        // closes the dead incarnation's phase at the restart instant.
        if prev != crate::AgentState::Running {
            self.bus.scoped(self.session.0).publish(
                ctx.now(),
                ctx.self_id().index() as u32,
                || {
                    sada_obs::Payload::Proto(sada_obs::ProtoEvent::AgentState {
                        from: crate::agent::state_tag(prev),
                        to: sada_obs::AgentStateTag::Running,
                        step: None,
                    })
                },
            );
        }
        self.rejoin_budget = self.reannounce.budget;
        self.send_rejoin(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Wire<M>>, tag: u64) {
        if tag == TAG_REJOIN {
            // Keep announcing until the manager engages us (we leave the
            // running state) or the budget runs out; after that, recovery
            // falls back to the manager's ordinary timeout ladder.
            if self.rejoin_budget > 0 && self.core.state() == crate::AgentState::Running {
                self.rejoin_budget -= 1;
                self.send_rejoin(ctx);
            }
            return;
        }
        let ev = match tag {
            TAG_SAFE => {
                if self.fail_to_reset {
                    AgentEvent::CannotReset
                } else {
                    AgentEvent::SafeReached
                }
            }
            TAG_ACT => {
                if let Some(la) = self.pending_action.take() {
                    // The structural change happens exactly here — atomically
                    // with respect to the (blocked) data path.
                    self.applied.push((la.action, true));
                }
                AgentEvent::InActionDone
            }
            TAG_RESUME => AgentEvent::ResumeFinished,
            TAG_ROLLBACK => {
                if let Some(la) = self.pending_rollback.take() {
                    // `Some` means a forward change was applied and must be
                    // recorded as undone.
                    self.applied.push((la.action, false));
                }
                AgentEvent::RollbackFinished
            }
            _ => return,
        };
        let eff = self.core.on_event(ev);
        self.apply(ctx, eff);
    }
}
