//! End-to-end protocol runs over the simulated network: manager + scripted
//! agents, with the paper's failure classes injected through link loss,
//! partitions, and fail-to-reset agents.

use std::collections::HashSet;

use sada_expr::{enumerate, Config, InvariantSet, Universe};
use sada_model::SystemModel;
use sada_plan::{Action, ActionId, Sag};
use sada_proto::{AgentTiming, ManagerActor, ProtoTiming, SagPlanner, ScriptedAgent, Wire};
use sada_simnet::{ActorId, LinkConfig, SimDuration, Simulator};

type Msg = Wire<()>;

struct World {
    sim: Simulator<Msg>,
    manager: ActorId,
    agents: Vec<ActorId>,
    universe: Universe,
}

/// Two-agent system: encoder-ish component on agent 0, decoder-ish on
/// agent 1, moved together or separately.
fn build_world(seed: u64, source: &[&str], target: &[&str], timing: ProtoTiming) -> World {
    let mut u = Universe::new();
    for n in ["X1", "X2", "Y1", "Y2"] {
        u.intern(n);
    }
    let actions = vec![
        Action::replace(0, "X1->X2", &u.config_of(&["X1"]), &u.config_of(&["X2"]), 10),
        Action::replace(1, "Y1->Y2", &u.config_of(&["Y1"]), &u.config_of(&["Y2"]), 10),
        Action::replace(
            2,
            "(X1,Y1)->(X2,Y2)",
            &u.config_of(&["X1", "Y1"]),
            &u.config_of(&["X2", "Y2"]),
            100,
        ),
        Action::replace(3, "X2->X1", &u.config_of(&["X2"]), &u.config_of(&["X1"]), 10),
        Action::replace(4, "Y2->Y1", &u.config_of(&["Y2"]), &u.config_of(&["Y1"]), 10),
    ];
    // Y2 only works with X2 (like the paper's E2 needing D3/D2).
    let inv =
        InvariantSet::parse(&["one_of(X1, X2)", "one_of(Y1, Y2)", "Y2 => X2"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("px");
    let p1 = model.add_process("py");
    model.place_all(&u, &[("X1", p0), ("X2", p0), ("Y1", p1), ("Y2", p1)]);
    let drain: HashSet<ActionId> = [ActionId(2)].into();
    let planner = SagPlanner::new(sag, actions, model, vec![0, 1], drain);

    let mut sim: Simulator<Msg> = Simulator::new(seed);
    // Agents must exist before the manager so their ids are known.
    let a0 = sim
        .add_actor("agent-x", ScriptedAgent::new(ActorId::from_index(2), AgentTiming::default()));
    let a1 = sim
        .add_actor("agent-y", ScriptedAgent::new(ActorId::from_index(2), AgentTiming::default()));
    let manager = sim.add_actor(
        "manager",
        ManagerActor::<()>::new(
            timing,
            Box::new(planner),
            vec![a0, a1],
            u.config_of(source),
            u.config_of(target),
        ),
    );
    assert_eq!(manager, ActorId::from_index(2), "manager id wired into agents");
    World { sim, manager, agents: vec![a0, a1], universe: u }
}

fn outcome_of(world: &Simulator<Msg>, manager: ActorId) -> sada_proto::Outcome {
    world
        .actor::<ManagerActor<()>>(manager)
        .expect("manager actor")
        .outcome
        .clone()
        .expect("adaptation finished")
}

/// Final config implied by the actions the agents actually applied.
fn replay_applied(
    _u: &Universe,
    world: &Simulator<Msg>,
    agents: &[ActorId],
    actions: &[Action],
    start: &Config,
) -> Config {
    let mut all: Vec<(u64, ActionId, bool)> = Vec::new();
    // ScriptedAgent.applied is in per-agent order; we don't have global
    // timestamps, but forward/undo pairs per action commute here because
    // each action touches disjoint components per agent.
    for &a in agents {
        let ag = world.actor::<ScriptedAgent>(a).expect("agent");
        for (ix, &(action, fwd)) in ag.applied.iter().enumerate() {
            all.push((ix as u64, action, fwd));
        }
    }
    let mut cfg = start.clone();
    for (_, action, fwd) in all {
        let act = &actions[action.index()];
        let (rm, add) = if fwd { (act.removes(), act.adds()) } else { (act.adds(), act.removes()) };
        // Apply only this agent's share; since both agents report the same
        // action id for pair actions, apply component-wise idempotently.
        for &c in rm {
            if cfg.contains(c) {
                cfg.remove(c);
            }
        }
        for &c in add {
            if !cfg.contains(c) {
                cfg.insert(c);
            }
        }
    }
    cfg
}

fn case_actions(u: &Universe) -> Vec<Action> {
    vec![
        Action::replace(0, "X1->X2", &u.config_of(&["X1"]), &u.config_of(&["X2"]), 10),
        Action::replace(1, "Y1->Y2", &u.config_of(&["Y1"]), &u.config_of(&["Y2"]), 10),
        Action::replace(
            2,
            "(X1,Y1)->(X2,Y2)",
            &u.config_of(&["X1", "Y1"]),
            &u.config_of(&["X2", "Y2"]),
            100,
        ),
        Action::replace(3, "X2->X1", &u.config_of(&["X2"]), &u.config_of(&["X1"]), 10),
        Action::replace(4, "Y2->Y1", &u.config_of(&["Y2"]), &u.config_of(&["Y1"]), 10),
    ]
}

#[test]
fn happy_path_reaches_target_in_order() {
    let mut w = build_world(1, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    assert!(o.success, "infos: {:?}", w.sim.actor::<ManagerActor<()>>(w.manager).unwrap().infos);
    assert_eq!(o.final_config, w.universe.config_of(&["X2", "Y2"]));
    assert_eq!(o.steps_committed, 2, "X first (Y2 => X2), then Y");
    assert!(o.warnings.is_empty());
    // Replaying the agents' applied actions lands on the same config.
    let actions = case_actions(&w.universe);
    let replayed = replay_applied(
        &w.universe,
        &w.sim,
        &w.agents,
        &actions,
        &w.universe.config_of(&["X1", "Y1"]),
    );
    assert_eq!(replayed, o.final_config);
}

#[test]
fn ordering_respects_dependency_invariant() {
    // Moving X2,Y2 -> X1,Y1 must replace Y first (Y2 => X2 forbids X1,Y2).
    let mut w = build_world(2, &["X2", "Y2"], &["X1", "Y1"], ProtoTiming::default());
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    assert!(o.success);
    let ay = w.sim.actor::<ScriptedAgent>(w.agents[1]).unwrap();
    let ax = w.sim.actor::<ScriptedAgent>(w.agents[0]).unwrap();
    assert_eq!(ay.applied, vec![(ActionId(4), true)]);
    assert_eq!(ax.applied, vec![(ActionId(3), true)]);
}

#[test]
fn moderate_message_loss_is_survived() {
    for seed in [3u64, 4, 5, 6] {
        let mut w = build_world(seed, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
        // 25% loss on every manager<->agent link.
        for &a in &w.agents {
            w.sim.set_link(w.manager, a, LinkConfig::lossy(SimDuration::from_millis(1), 0.25));
            w.sim.set_link(a, w.manager, LinkConfig::lossy(SimDuration::from_millis(1), 0.25));
        }
        w.sim.run();
        let o = outcome_of(&w.sim, w.manager);
        // Whatever happened, the system must end in a *safe* configuration
        // consistent with what the agents actually executed.
        let mut u2 = w.universe.clone();
        let inv = InvariantSet::parse(&["one_of(X1, X2)", "one_of(Y1, Y2)", "Y2 => X2"], &mut u2)
            .unwrap();
        assert!(
            inv.satisfied_by(&o.final_config),
            "seed {seed}: unsafe final config {}",
            o.final_config
        );
        let actions = case_actions(&w.universe);
        let replayed = replay_applied(
            &w.universe,
            &w.sim,
            &w.agents,
            &actions,
            &w.universe.config_of(&["X1", "Y1"]),
        );
        assert_eq!(
            replayed, o.final_config,
            "seed {seed}: manager view diverged from ground truth"
        );
    }
}

#[test]
fn fail_to_reset_aborts_back_to_source() {
    let mut w = build_world(7, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
    // Agent 0 can never reach a safe state: every path needs X1->X2 first,
    // so the whole adaptation must abort back to the source configuration.
    w.sim.actor_mut::<ScriptedAgent>(w.agents[0]).unwrap().fail_to_reset = true;
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    assert!(!o.success);
    assert!(!o.gave_up);
    assert_eq!(o.final_config, w.universe.config_of(&["X1", "Y1"]), "rolled back to source");
    // No structural change may survive.
    for &a in &w.agents {
        let ag = w.sim.actor::<ScriptedAgent>(a).unwrap();
        let forwards = ag.applied.iter().filter(|(_, f)| *f).count();
        let undos = ag.applied.iter().filter(|(_, f)| !*f).count();
        assert_eq!(forwards, undos, "every applied action undone on {a}");
    }
}

#[test]
fn partition_before_resume_rolls_back() {
    let mut w = build_world(8, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
    // Sever agent 0 from the start: resets never arrive; after
    // send_retries timeouts the step aborts; rollback acks from agent 0 are
    // also lost, so the rollback force-limit kicks in; ladder runs dry at
    // the source.
    w.sim.set_partitioned(w.manager, w.agents[0], true);
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    assert!(!o.success);
    assert_eq!(o.final_config, w.universe.config_of(&["X1", "Y1"]));
    let ax = w.sim.actor::<ScriptedAgent>(w.agents[0]).unwrap();
    assert!(ax.applied.is_empty(), "partitioned agent never adapted");
}

#[test]
fn partition_after_resume_runs_to_completion() {
    let mut w = build_world(9, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
    w.sim.set_trace_enabled(true);
    // Let the first solo step (X1->X2 on agent 0) pass cleanly, then cut
    // agent 1 off *after* it has adapted — its ResumeDone for step 2 is
    // lost. The manager must not roll back; it force-completes.
    // We approximate "after adapt" by cutting the agent->manager direction
    // only once the simulation reaches the second step's resume window.
    w.sim.run_until(sada_simnet::SimTime::from_millis(25));
    let a1 = w.agents[1];
    let cfg = w.sim.link(a1, w.manager).with_partitioned(true);
    w.sim.set_link(a1, w.manager, cfg);
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    // Depending on where 25ms lands, either the step had not begun (abort,
    // back to source or stuck) or the resume boundary was passed (success
    // with warnings). Both end safe; what is forbidden is a mixed config.
    let mut u2 = w.universe.clone();
    let inv =
        InvariantSet::parse(&["one_of(X1, X2)", "one_of(Y1, Y2)", "Y2 => X2"], &mut u2).unwrap();
    assert!(inv.satisfied_by(&o.final_config), "final config {} unsafe", o.final_config);
}

#[test]
fn deterministic_across_identical_seeds() {
    let run = |seed| {
        let mut w = build_world(seed, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
        for &a in &w.agents {
            w.sim.set_link(w.manager, a, LinkConfig::lossy(SimDuration::from_millis(1), 0.3));
            w.sim.set_link(a, w.manager, LinkConfig::lossy(SimDuration::from_millis(1), 0.3));
        }
        w.sim.run();
        let o = outcome_of(&w.sim, w.manager);
        (o.success, o.final_config, o.steps_committed, w.sim.stats().events_processed)
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn pair_action_blocks_both_agents_until_barrier() {
    // Force the compound path by removing the single-replace actions.
    let mut u = Universe::new();
    for n in ["X1", "X2", "Y1", "Y2"] {
        u.intern(n);
    }
    let actions = vec![Action::replace(
        0,
        "(X1,Y1)->(X2,Y2)",
        &u.config_of(&["X1", "Y1"]),
        &u.config_of(&["X2", "Y2"]),
        100,
    )];
    let inv = InvariantSet::parse(&["one_of(X1, X2)", "one_of(Y1, Y2)"], &mut u).unwrap();
    let sag = Sag::build(enumerate::safe_configs(&u, &inv), &actions);
    let mut model = SystemModel::new();
    let p0 = model.add_process("px");
    let p1 = model.add_process("py");
    model.place_all(&u, &[("X1", p0), ("X2", p0), ("Y1", p1), ("Y2", p1)]);
    let planner = SagPlanner::new(sag, actions, model, vec![0, 1], [ActionId(0)].into());

    let mut sim: Simulator<Msg> = Simulator::new(11);
    // Agent 1 is slow to reach its safe state; agent 0 must wait blocked.
    let fast = AgentTiming::default();
    let slow = AgentTiming { safe_delay: SimDuration::from_millis(50), ..AgentTiming::default() };
    let a0 = sim.add_actor("agent-x", ScriptedAgent::new(ActorId::from_index(2), fast));
    let a1 = sim.add_actor("agent-y", ScriptedAgent::new(ActorId::from_index(2), slow));
    let manager = sim.add_actor(
        "manager",
        ManagerActor::<()>::new(
            ProtoTiming::default(),
            Box::new(planner),
            vec![a0, a1],
            u.config_of(&["X1", "Y1"]),
            u.config_of(&["X2", "Y2"]),
        ),
    );
    sim.run();
    let o = sim.actor::<ManagerActor<()>>(manager).unwrap().outcome.clone().unwrap();
    assert!(o.success);
    assert_eq!(o.steps_committed, 1);
    for a in [a0, a1] {
        let ag = sim.actor::<ScriptedAgent>(a).unwrap();
        assert_eq!(ag.applied, vec![(ActionId(0), true)]);
    }
}

#[test]
fn agent_crash_mid_step_rejoins_and_reaches_target() {
    let mut w = build_world(20, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
    // Kill agent 0 while its solo step is in flight; bring it back 120 ms
    // later. Its uncommitted in-action dies with the process, the restart
    // announces a Rejoin, and the manager re-runs the step.
    let plan = sada_simnet::FaultPlan::new()
        .crash(w.agents[0], sada_simnet::SimTime::from_millis(6))
        .restart(w.agents[0], sada_simnet::SimTime::from_millis(126));
    w.sim.schedule_faults(&plan);
    w.sim.run();
    let o = outcome_of(&w.sim, w.manager);
    assert!(o.success, "infos: {:?}", w.sim.actor::<ManagerActor<()>>(w.manager).unwrap().infos);
    assert_eq!(o.final_config, w.universe.config_of(&["X2", "Y2"]));
    let ax = w.sim.actor::<ScriptedAgent>(w.agents[0]).unwrap();
    assert_eq!(ax.crashes, 1);
    assert!(ax.rejoins_sent >= 1, "restart must announce itself");
    assert!(ax.epoch() >= 1, "incarnation bumped");
    // Ground truth: what the agents actually executed lands on the target.
    let actions = case_actions(&w.universe);
    let replayed = replay_applied(
        &w.universe,
        &w.sim,
        &w.agents,
        &actions,
        &w.universe.config_of(&["X1", "Y1"]),
    );
    assert_eq!(replayed, o.final_config);
}

#[test]
fn crash_and_rejoin_is_safe_across_crash_times() {
    // Sweep the crash instant across the whole protocol window (reset,
    // adapt, resume, commit of either step): every run must terminate in a
    // safe configuration that matches the agents' ground truth, crash or no
    // crash pending work.
    let mut u2 = Universe::new();
    for n in ["X1", "X2", "Y1", "Y2"] {
        u2.intern(n);
    }
    let inv =
        InvariantSet::parse(&["one_of(X1, X2)", "one_of(Y1, Y2)", "Y2 => X2"], &mut u2).unwrap();
    for crash_ms in [2u64, 5, 8, 11, 14, 17, 20, 25, 30] {
        let mut w =
            build_world(30 + crash_ms, &["X1", "Y1"], &["X2", "Y2"], ProtoTiming::default());
        let victim = w.agents[(crash_ms % 2) as usize];
        let plan = sada_simnet::FaultPlan::new()
            .crash(victim, sada_simnet::SimTime::from_millis(crash_ms))
            .restart(victim, sada_simnet::SimTime::from_millis(crash_ms + 90));
        w.sim.schedule_faults(&plan);
        w.sim.run();
        let o = outcome_of(&w.sim, w.manager);
        assert!(
            inv.satisfied_by(&o.final_config),
            "crash at {crash_ms}ms: unsafe final config {}",
            o.final_config
        );
        let actions = case_actions(&w.universe);
        let replayed = replay_applied(
            &w.universe,
            &w.sim,
            &w.agents,
            &actions,
            &w.universe.config_of(&["X1", "Y1"]),
        );
        assert_eq!(replayed, o.final_config, "crash at {crash_ms}ms: manager view diverged");
        assert!(
            o.success,
            "crash at {crash_ms}ms: a restarted agent within budget must not doom the run"
        );
    }
}
