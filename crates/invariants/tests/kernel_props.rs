//! Property corpus for the compiled invariant kernels: random `Expr` trees
//! × random `Config`s must evaluate exactly like the tree walk, and the
//! support-masked incremental check must agree with the full check after
//! random action applications.

use proptest::prelude::*;

use sada_expr::{CompId, CompiledExpr, CompiledInvariants, Config, Expr, InvariantSet};

/// Width shared by every generated expression and configuration.
const NVARS: usize = 8;

fn arb_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0usize..NVARS).prop_map(|ix| Expr::var(CompId::from_index(ix))),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::and),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::xor),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::exactly_one),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

fn config_from_bits(bits: u8) -> Config {
    let mut cfg = Config::empty(NVARS);
    for ix in 0..NVARS {
        if bits & (1 << ix) != 0 {
            cfg.insert(CompId::from_index(ix));
        }
    }
    cfg
}

proptest! {
    #[test]
    fn compiled_kernel_matches_tree_walk(e in arb_expr(), bits in any::<u8>()) {
        let cfg = config_from_bits(bits);
        let compiled = CompiledExpr::compile(&e, NVARS);
        prop_assert_eq!(compiled.eval(&cfg), e.eval(&cfg), "{} on {}", e, cfg);
    }

    #[test]
    fn flips_outside_the_support_never_change_the_verdict(
        e in arb_expr(),
        bits in any::<u8>(),
        flip in 0usize..NVARS,
    ) {
        let compiled = CompiledExpr::compile(&e, NVARS);
        prop_assume!(!compiled.support().contains(&CompId::from_index(flip)));
        let cfg = config_from_bits(bits);
        let flipped = config_from_bits(bits ^ (1 << flip));
        prop_assert_eq!(compiled.eval(&cfg), compiled.eval(&flipped), "{}", e);
    }

    #[test]
    fn incremental_check_matches_full_check_after_actions(
        exprs in prop::collection::vec(arb_expr(), 1..4),
        pre_bits in any::<u8>(),
        touched_bits in any::<u8>(),
    ) {
        let mut inv = InvariantSet::new();
        for e in exprs {
            inv.push(e);
        }
        let pre = config_from_bits(pre_bits);
        // The incremental check's contract assumes a safe predecessor; an
        // action application toggles exactly its touched components.
        prop_assume!(inv.satisfied_by(&pre));
        let next = config_from_bits(pre_bits ^ touched_bits);
        let touched = config_from_bits(touched_bits);

        let compiled = CompiledInvariants::compile(&inv, NVARS);
        prop_assert!(compiled.satisfied_by(&pre));
        let mut evals = 0u64;
        let incremental = compiled.still_satisfied_after_counting(&next, &touched, &mut evals);
        prop_assert_eq!(incremental, inv.satisfied_by(&next), "incremental vs tree walk");
        prop_assert_eq!(incremental, compiled.satisfied_by(&next), "incremental vs full kernel");
        prop_assert!(evals <= compiled.len() as u64);
        // The affected set is exactly the predicates sharing support.
        for ix in compiled.affected_by(&touched) {
            let support = compiled.preds()[ix as usize].support();
            prop_assert!(support.iter().any(|&c| touched.contains(c)));
        }
        // The inverted index finds the same affected set from a sparse list.
        let touched_ids: Vec<CompId> = touched.iter().collect();
        prop_assert_eq!(compiled.affected_by_ids(&touched_ids), compiled.affected_by(&touched));
    }
}
