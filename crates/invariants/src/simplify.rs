//! Expression simplification: constant folding, identity elimination, and
//! flattening. Used to keep machine-generated invariants (e.g. from the
//! inference engine) readable, and as an optimization before repeated
//! evaluation — simplification preserves semantics exactly
//! (property-tested).

use crate::expr::Expr;

impl Expr {
    /// Returns a semantically-equivalent, usually smaller expression.
    ///
    /// Rules applied bottom-up:
    ///
    /// * constant folding through every connective;
    /// * `!!e → e`;
    /// * nested `And`/`Or` flattening, identity/absorbing elements removed
    ///   (`true` in `And`, `false` in `Or`);
    /// * single-operand `And`/`Or`/`Xor` unwrapping;
    /// * `a => false → !a`, `true => b → b`, `false => _ → true`,
    ///   `_ => true → true`;
    /// * `Xor`/`ExactlyOne` constant-operand extraction (`false` operands
    ///   drop out; a `true` operand flips parity / forces the rest false).
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Var(v) => Expr::Var(*v),
            Expr::Not(e) => match e.simplify() {
                Expr::Const(b) => Expr::Const(!b),
                Expr::Not(inner) => *inner,
                other => Expr::not(other),
            },
            Expr::And(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(true) => {}
                        Expr::Const(false) => return Expr::Const(false),
                        Expr::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Expr::Const(true),
                    1 => out.pop().expect("len checked"),
                    _ => Expr::And(out),
                }
            }
            Expr::Or(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(false) => {}
                        Expr::Const(true) => return Expr::Const(true),
                        Expr::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Expr::Const(false),
                    1 => out.pop().expect("len checked"),
                    _ => Expr::Or(out),
                }
            }
            Expr::Xor(es) => {
                let mut parity = false;
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(true) => parity = !parity,
                        Expr::Const(false) => {}
                        other => out.push(other),
                    }
                }
                let core = match out.len() {
                    0 => Expr::Const(false),
                    1 => out.pop().expect("len checked"),
                    _ => Expr::Xor(out),
                };
                if parity {
                    match core {
                        Expr::Const(b) => Expr::Const(!b),
                        Expr::Not(inner) => *inner,
                        other => Expr::not(other),
                    }
                } else {
                    core
                }
            }
            Expr::ExactlyOne(es) => {
                let mut trues = 0usize;
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(true) => trues += 1,
                        Expr::Const(false) => {}
                        other => out.push(other),
                    }
                }
                match trues {
                    0 if out.is_empty() => Expr::Const(false),
                    0 if out.len() == 1 => out.pop().expect("len checked"),
                    0 => Expr::ExactlyOne(out),
                    // One constant-true operand: the rest must all be false.
                    1 if out.is_empty() => Expr::Const(true),
                    1 => Expr::not(Expr::Or(out)).simplify(),
                    _ => Expr::Const(false),
                }
            }
            Expr::Implies(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(false), _) => Expr::Const(true),
                (_, Expr::Const(true)) => Expr::Const(true),
                (Expr::Const(true), rhs) => rhs,
                (lhs, Expr::Const(false)) => Expr::not(lhs).simplify(),
                (lhs, rhs) => lhs.implies(rhs),
            },
            Expr::Iff(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x == y),
                (Expr::Const(true), rhs) | (rhs, Expr::Const(true)) => rhs,
                (Expr::Const(false), rhs) | (rhs, Expr::Const(false)) => Expr::not(rhs).simplify(),
                (lhs, rhs) => lhs.iff(rhs),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompId, Config, Universe};

    fn v(i: usize) -> Expr {
        Expr::var(CompId::from_index(i))
    }

    fn t() -> Expr {
        Expr::Const(true)
    }

    fn f() -> Expr {
        Expr::Const(false)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Expr::and(vec![t(), t()]).simplify(), t());
        assert_eq!(Expr::and(vec![t(), f()]).simplify(), f());
        assert_eq!(Expr::or(vec![f(), f()]).simplify(), f());
        assert_eq!(Expr::not(f()).simplify(), t());
        assert_eq!(t().implies(f()).simplify(), f());
        assert_eq!(f().implies(f()).simplify(), t());
        assert_eq!(t().iff(t()).simplify(), t());
    }

    #[test]
    fn identities_eliminated() {
        assert_eq!(Expr::and(vec![t(), v(0)]).simplify(), v(0));
        assert_eq!(Expr::or(vec![f(), v(0)]).simplify(), v(0));
        assert_eq!(Expr::not(Expr::not(v(1))).simplify(), v(1));
        assert_eq!(t().implies(v(0)).simplify(), v(0));
        assert_eq!(v(0).implies(f()).simplify(), Expr::not(v(0)));
        assert_eq!(v(0).iff(f()).simplify(), Expr::not(v(0)));
    }

    #[test]
    fn nested_flattening() {
        let e = Expr::and(vec![Expr::and(vec![v(0), v(1)]), v(2)]);
        assert_eq!(e.simplify(), Expr::and(vec![v(0), v(1), v(2)]));
        let e = Expr::or(vec![v(0), Expr::or(vec![v(1), Expr::or(vec![v(2)])])]);
        assert_eq!(e.simplify(), Expr::or(vec![v(0), v(1), v(2)]));
    }

    #[test]
    fn xor_constant_extraction() {
        assert_eq!(Expr::xor(vec![t(), v(0)]).simplify(), Expr::not(v(0)));
        assert_eq!(Expr::xor(vec![f(), v(0)]).simplify(), v(0));
        assert_eq!(Expr::xor(vec![t(), t(), v(0)]).simplify(), v(0));
        assert_eq!(Expr::xor(vec![t()]).simplify(), t());
    }

    #[test]
    fn exactly_one_special_cases() {
        assert_eq!(Expr::exactly_one(vec![]).simplify(), f());
        assert_eq!(Expr::exactly_one(vec![v(0)]).simplify(), v(0));
        assert_eq!(Expr::exactly_one(vec![t(), t(), v(0)]).simplify(), f());
        assert_eq!(Expr::exactly_one(vec![t()]).simplify(), t());
        // one constant-true + variables: all variables must be false.
        assert_eq!(
            Expr::exactly_one(vec![t(), v(0), v(1)]).simplify(),
            Expr::not(Expr::or(vec![v(0), v(1)]))
        );
    }

    #[test]
    fn exhaustive_equivalence_on_small_expressions() {
        // Enumerate a family of expressions and verify simplify preserves
        // truth tables over 3 variables.
        let leaves = [v(0), v(1), v(2), t(), f()];
        let mut exprs: Vec<Expr> = leaves.to_vec();
        for a in &leaves {
            for b in &leaves {
                exprs.push(Expr::and(vec![a.clone(), b.clone()]));
                exprs.push(Expr::or(vec![a.clone(), b.clone()]));
                exprs.push(Expr::xor(vec![a.clone(), b.clone()]));
                exprs.push(Expr::exactly_one(vec![a.clone(), b.clone()]));
                exprs.push(a.clone().implies(b.clone()));
                exprs.push(a.clone().iff(b.clone()));
                exprs.push(Expr::not(Expr::and(vec![a.clone(), b.clone()])));
            }
        }
        // One level deeper for good measure.
        let sample: Vec<Expr> = exprs.iter().take(40).cloned().collect();
        for a in &sample {
            for b in sample.iter().take(10) {
                exprs.push(Expr::exactly_one(vec![a.clone(), b.clone(), t()]));
                exprs.push(Expr::xor(vec![a.clone(), b.clone(), f()]));
            }
        }
        let mut u = Universe::new();
        for i in 0..3 {
            u.intern(&format!("V{i}"));
        }
        for e in &exprs {
            let s = e.simplify();
            for bits in 0u32..8 {
                let mut cfg = Config::empty(3);
                for i in 0..3 {
                    if bits & (1 << i) != 0 {
                        cfg.insert(CompId::from_index(i));
                    }
                }
                assert_eq!(e.eval(&cfg), s.eval(&cfg), "{e} vs {s} on {cfg}");
            }
            // Simplification is idempotent.
            assert_eq!(s.simplify(), s, "{s}");
        }
    }
}
