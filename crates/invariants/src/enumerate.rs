//! Safe-configuration enumeration (the "Construct Safe Configuration Set"
//! step of the detection and setup phase, Section 4.2).
//!
//! Two strategies are provided:
//!
//! * [`safe_configs_exhaustive`] — evaluate the invariant conjunction on all
//!   `2^n` subsets. Simple, and the ground truth the pruned search is tested
//!   against.
//! * [`safe_configs`] — depth-first search over components with three-valued
//!   early termination: a partial assignment whose invariants are already
//!   [`Tri::False`] prunes the whole subtree. This is the practical
//!   implementation; the ablation in `bench_enumeration` quantifies the gap.
//!
//! Both restrict attention to a *scope*: by default every component of the
//! universe, but [`safe_configs_scoped`] searches only the components touched
//! by an adaptation while holding the rest of the configuration fixed —
//! exactly the paper's observation that "only a small fraction of the graph
//! is actually related to the given adaptation".

use crate::config::{CompId, Config, Universe};
use crate::expr::{InvariantSet, PartialAssignment, Tri};

/// Enumerates safe configurations by brute force over the full universe.
///
/// Intended for testing and ablation; cost is `Θ(2^n)` invariant
/// evaluations. Results are sorted (bitset order) and deterministic.
pub fn safe_configs_exhaustive(u: &Universe, inv: &InvariantSet) -> Vec<Config> {
    let n = u.len();
    assert!(n <= 28, "exhaustive enumeration capped at 28 components");
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << n) {
        let mut cfg = Config::empty(n);
        for ix in 0..n {
            if bits & (1 << ix) != 0 {
                cfg.insert(CompId::from_index(ix));
            }
        }
        if inv.satisfied_by(&cfg) {
            out.push(cfg);
        }
    }
    out.sort();
    out
}

/// Enumerates safe configurations with three-valued pruning over the whole
/// universe.
///
/// Equivalent to [`safe_configs_exhaustive`] (property-tested), but skips
/// any subtree whose partial assignment already falsifies an invariant.
pub fn safe_configs(u: &Universe, inv: &InvariantSet) -> Vec<Config> {
    let scope: Vec<CompId> = u.iter().collect();
    let base = u.empty_config();
    safe_configs_scoped(u, inv, &scope, &base)
}

/// Enumerates safe configurations over `scope` only, with every component
/// outside `scope` fixed to its membership in `base`.
///
/// This is the planner's entry point: when an adaptation touches components
/// `{E1,E2,D1..D5}` of a larger system, the search space is `2^7` regardless
/// of total system size.
///
/// # Panics
///
/// Panics if `scope` contains duplicate components.
pub fn safe_configs_scoped(
    u: &Universe,
    inv: &InvariantSet,
    scope: &[CompId],
    base: &Config,
) -> Vec<Config> {
    let n = u.len();
    let mut in_scope = Config::empty(n);
    for &id in scope {
        assert!(!in_scope.contains(id), "duplicate component in scope");
        in_scope.insert(id);
    }
    // Everything outside scope is decided by `base`.
    let mut decided = Config::empty(n);
    for id in u.iter() {
        if !in_scope.contains(id) {
            decided.insert(id);
        }
    }
    let mut pa = PartialAssignment::with_fixed(decided, base.clone());
    let mut out = Vec::new();
    search(inv, scope, 0, &mut pa, &mut out);
    out.sort();
    out
}

fn search(
    inv: &InvariantSet,
    scope: &[CompId],
    depth: usize,
    pa: &mut PartialAssignment,
    out: &mut Vec<Config>,
) {
    match inv.eval3(pa) {
        Tri::False => return,
        Tri::True if depth == scope.len() => {
            out.push(pa.as_config().clone());
            return;
        }
        _ => {}
    }
    if depth == scope.len() {
        // Tri::Unknown with nothing left to assign cannot happen (all vars
        // decided), but guard against invariants mentioning unknown
        // components outside the universe scope.
        if inv.eval3(pa) == Tri::True {
            out.push(pa.as_config().clone());
        }
        return;
    }
    let id = scope[depth];
    for present in [false, true] {
        pa.assign(id, present);
        search(inv, scope, depth + 1, pa, out);
    }
    pa.unassign(id);
}

/// Counts how many partial assignments the pruned search visits — exposed so
/// benches and tests can measure pruning effectiveness without timing noise.
pub fn pruned_search_nodes(u: &Universe, inv: &InvariantSet) -> u64 {
    fn walk(inv: &InvariantSet, scope: &[CompId], depth: usize, pa: &mut PartialAssignment) -> u64 {
        let mut nodes = 1;
        if inv.eval3(pa) == Tri::False || depth == scope.len() {
            return nodes;
        }
        let id = scope[depth];
        for present in [false, true] {
            pa.assign(id, present);
            nodes += walk(inv, scope, depth + 1, pa);
        }
        pa.unassign(id);
        nodes
    }
    let scope: Vec<CompId> = u.iter().collect();
    let mut pa = PartialAssignment::new(u.len());
    walk(inv, &scope, 0, &mut pa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn universe(names: &[&str]) -> Universe {
        let mut u = Universe::new();
        for n in names {
            u.intern(n);
        }
        u
    }

    #[test]
    fn unconstrained_universe_is_powerset() {
        let u = universe(&["A", "B", "C"]);
        let inv = InvariantSet::new();
        assert_eq!(safe_configs(&u, &inv).len(), 8);
        assert_eq!(safe_configs_exhaustive(&u, &inv).len(), 8);
    }

    #[test]
    fn contradiction_has_no_safe_configs() {
        let mut u = universe(&["A"]);
        let inv = InvariantSet::parse(&["A & !A"], &mut u).unwrap();
        assert!(safe_configs(&u, &inv).is_empty());
    }

    #[test]
    fn pruned_matches_exhaustive_on_paper_style_invariants() {
        let mut u = universe(&[]);
        let inv = InvariantSet::parse(
            &[
                "one_of(D1, D2, D3)",
                "one_of(E1, E2)",
                "E1 => (D1 | D2) & D4",
                "E2 => (D3 | D2) & D5",
            ],
            &mut u,
        )
        .unwrap();
        let a = safe_configs(&u, &inv);
        let b = safe_configs_exhaustive(&u, &inv);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for cfg in &a {
            assert!(inv.satisfied_by(cfg));
        }
    }

    #[test]
    fn scoped_enumeration_fixes_outside_components() {
        let u = universe(&["A", "B", "X"]);
        let mut u2 = u.clone();
        let inv = InvariantSet::parse(&["X => A | B"], &mut u2).unwrap();
        let a = u.id("A").unwrap();
        let b = u.id("B").unwrap();
        // X held present outside the scope {A, B}.
        let base = u.config_of(&["X"]);
        let safe = safe_configs_scoped(&u2, &inv, &[a, b], &base);
        // {X}, {X,A}, {X,B}, {X,A,B} minus the one violating X => A|B.
        assert_eq!(safe.len(), 3);
        for cfg in &safe {
            assert!(cfg.contains(u.id("X").unwrap()));
            assert!(inv.satisfied_by(cfg));
        }
    }

    #[test]
    fn scoped_with_base_absent_differs() {
        let u = universe(&["A", "X"]);
        let mut u2 = u.clone();
        let inv = InvariantSet::parse(&["X | A"], &mut u2).unwrap();
        let a = u.id("A").unwrap();
        let no_x = u.empty_config();
        let safe = safe_configs_scoped(&u2, &inv, &[a], &no_x);
        assert_eq!(safe.len(), 1, "only {{A}} satisfies X|A when X is absent");
        assert!(safe[0].contains(a));
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn duplicate_scope_panics() {
        let u = universe(&["A"]);
        let inv = InvariantSet::new();
        let a = u.id("A").unwrap();
        let _ = safe_configs_scoped(&u, &inv, &[a, a], &u.empty_config());
    }

    #[test]
    fn pruning_visits_fewer_nodes_than_full_tree() {
        let mut u = universe(&[]);
        // A false structural invariant on the first components prunes hard.
        let inv =
            InvariantSet::parse(&["one_of(C0, C1) & one_of(C2, C3) & one_of(C4, C5)"], &mut u)
                .unwrap();
        let full_tree: u64 = (1 << (u.len() + 1)) - 1; // complete binary tree
        let visited = pruned_search_nodes(&u, &inv);
        assert!(visited < full_tree, "visited {visited} of {full_tree}");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let u = universe(&["A", "B", "C", "D"]);
        let inv = InvariantSet::new();
        let safe = safe_configs(&u, &inv);
        let mut sorted = safe.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(safe, sorted);
    }

    #[test]
    fn invariant_over_subset_leaves_rest_free() {
        let mut u = universe(&["A", "B", "FREE1", "FREE2"]);
        let inv = InvariantSet::parse(&["one_of(A, B)"], &mut u).unwrap();
        let safe = safe_configs(&u, &inv);
        // exactly-one over {A,B} = 2 choices × 4 free combinations.
        assert_eq!(safe.len(), 8);
    }

    #[test]
    fn builder_constructed_invariants_work_too() {
        let u = universe(&["A", "B"]);
        let mut inv = InvariantSet::new();
        inv.push(Expr::var(u.id("A").unwrap()).implies(Expr::var(u.id("B").unwrap())));
        let safe = safe_configs(&u, &inv);
        assert_eq!(safe.len(), 3); // {}, {B}, {A,B}
    }
}
