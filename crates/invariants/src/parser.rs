//! Hand-written lexer and recursive-descent parser for the invariant
//! language.
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! expr    := iff
//! iff     := implies ( "<=>" implies )*
//! implies := or ( "=>" or )*          // right-associative
//! or      := xor ( "|" xor )*
//! xor     := and ( "^" and )*
//! and     := unary ( ("&" | ".") unary )*
//! unary   := "!" unary | atom
//! atom    := "true" | "false" | IDENT | "(" expr ")"
//!          | "one_of" "(" expr ("," expr)* ")"
//! ```
//!
//! `.` is accepted as a synonym for `&` because the paper writes conjunction
//! as `·`; `one_of` is the paper's ⨂ ("exclusively select one from a given
//! set"); `=>` is the dependency arrow `→`.

use std::error::Error;
use std::fmt;

use crate::config::Universe;
use crate::expr::Expr;

/// An error produced while parsing an invariant expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the problem was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Bang,
    Amp,
    Pipe,
    Caret,
    Arrow,  // =>
    DArrow, // <=>
    True,
    False,
    OneOf,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '!' => {
                toks.push((i, Tok::Bang));
                i += 1;
            }
            '&' | '.' => {
                toks.push((i, Tok::Amp));
                i += 1;
            }
            '|' => {
                toks.push((i, Tok::Pipe));
                i += 1;
            }
            '^' => {
                toks.push((i, Tok::Caret));
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((i, Tok::Arrow));
                    i += 2;
                } else {
                    return Err(ParseError { at: i, msg: "expected '=>'".into() });
                }
            }
            '<' => {
                if src[i..].starts_with("<=>") {
                    toks.push((i, Tok::DArrow));
                    i += 3;
                } else {
                    return Err(ParseError { at: i, msg: "expected '<=>'".into() });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "one_of" => Tok::OneOf,
                    _ => Tok::Ident(word.to_string()),
                };
                toks.push((start, tok));
            }
            other => {
                return Err(ParseError { at: i, msg: format!("unexpected character {other:?}") });
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    universe: &'a mut Universe,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|&(at, _)| at).unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        let at = self.here();
        match self.bump() {
            Some(t) if t == want => Ok(()),
            other => Err(ParseError { at, msg: format!("expected {what}, found {other:?}") }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.implies()?;
        while self.peek() == Some(&Tok::DArrow) {
            self.bump();
            let rhs = self.implies()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            // Right-associative: a => b => c ≡ a => (b => c).
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.xor()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            terms.push(self.xor()?);
        }
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { Expr::or(terms) })
    }

    fn xor(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.and()?];
        while self.peek() == Some(&Tok::Caret) {
            self.bump();
            terms.push(self.and()?);
        }
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { Expr::xor(terms) })
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.unary()?];
        while self.peek() == Some(&Tok::Amp) {
            self.bump();
            terms.push(self.unary()?);
        }
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { Expr::and(terms) })
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Bang) {
            self.bump();
            Ok(Expr::not(self.unary()?))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::True) => Ok(Expr::Const(true)),
            Some(Tok::False) => Ok(Expr::Const(false)),
            Some(Tok::Ident(name)) => Ok(Expr::var(self.universe.intern(&name))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::OneOf) => {
                self.expect(Tok::LParen, "'(' after one_of")?;
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    items.push(self.expr()?);
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        items.push(self.expr()?);
                    }
                }
                self.expect(Tok::RParen, "')' closing one_of")?;
                // `one_of()` is unsatisfiable (zero of zero operands can
                // never be exactly one) — accepted for round-tripping.
                Ok(Expr::exactly_one(items))
            }
            other => {
                Err(ParseError { at, msg: format!("expected an expression, found {other:?}") })
            }
        }
    }
}

/// Parses one invariant expression, interning any new component names into
/// `universe`.
///
/// # Errors
///
/// Returns a [`ParseError`] pinpointing the first offending byte on invalid
/// syntax or trailing input.
///
/// # Examples
///
/// ```
/// # use sada_expr::{parse_expr, Universe};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut u = Universe::new();
/// let e = parse_expr("E1 => (D1 | D2) & D4", &mut u)?;
/// assert!(e.eval(&u.config_of(&["D1", "D4"])), "false antecedent");
/// # Ok(())
/// # }
/// ```
pub fn parse_expr(src: &str, universe: &mut Universe) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, universe, src_len: src.len() };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError { at: p.here(), msg: "trailing input after expression".into() });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Universe;

    fn parses_to(src: &str, expect: &str) {
        let mut u = Universe::new();
        let e = parse_expr(src, &mut u).unwrap_or_else(|err| panic!("{src}: {err}"));
        assert_eq!(e.display(&u).to_string(), expect, "source: {src}");
    }

    #[test]
    fn precedence_and_over_or() {
        parses_to("A | B & C", "(A | (B & C))");
        parses_to("A & B | C", "((A & B) | C)");
    }

    #[test]
    fn precedence_xor_between_and_and_or() {
        parses_to("A ^ B & C", "(A ^ (B & C))");
        parses_to("A | B ^ C", "(A | (B ^ C))");
    }

    #[test]
    fn implication_is_loosest_and_right_associative() {
        parses_to("A => B | C", "(A => (B | C))");
        parses_to("A => B => C", "(A => (B => C))");
    }

    #[test]
    fn iff_chains() {
        parses_to("A <=> B <=> C", "((A <=> B) <=> C)");
    }

    #[test]
    fn paper_dependency_invariant() {
        // E1 → (D1 ∨ D2) ∧ D4
        parses_to("E1 => (D1 | D2) & D4", "(E1 => ((D1 | D2) & D4))");
    }

    #[test]
    fn paper_structural_invariant() {
        parses_to("one_of(D1, D2, D3)", "one_of(D1, D2, D3)");
    }

    #[test]
    fn dot_is_conjunction() {
        parses_to("A . B", "(A & B)");
    }

    #[test]
    fn negation_binds_tightest() {
        parses_to("!A & B", "(!A & B)");
        parses_to("!(A & B)", "!(A & B)");
        parses_to("!!A", "!!A");
    }

    #[test]
    fn constants_parse() {
        parses_to("true & A", "(true & A)");
        parses_to("false | A", "(false | A)");
    }

    #[test]
    fn interning_reuses_ids() {
        let mut u = Universe::new();
        let _ = parse_expr("A & A & B", &mut u).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn error_on_garbage() {
        let mut u = Universe::new();
        let err = parse_expr("A @ B", &mut u).unwrap_err();
        assert_eq!(err.at, 2);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn error_on_trailing_input() {
        let mut u = Universe::new();
        let err = parse_expr("A B", &mut u).unwrap_err();
        assert!(err.msg.contains("trailing"));
    }

    #[test]
    fn error_on_unbalanced_paren() {
        let mut u = Universe::new();
        assert!(parse_expr("(A & B", &mut u).is_err());
        assert!(parse_expr("one_of(A, B", &mut u).is_err());
    }

    #[test]
    fn error_on_lone_equals() {
        let mut u = Universe::new();
        assert!(parse_expr("A = B", &mut u).is_err());
        assert!(parse_expr("A <= B", &mut u).is_err());
    }

    #[test]
    fn parsed_semantics_match_manual_construction() {
        let mut u = Universe::new();
        let e = parse_expr("one_of(E1, E2) & (E1 => D1)", &mut u).unwrap();
        assert!(e.eval(&u.config_of(&["E1", "D1"])));
        assert!(!e.eval(&u.config_of(&["E1"])));
        assert!(e.eval(&u.config_of(&["E2"])));
        assert!(!e.eval(&u.config_of(&["E1", "E2", "D1"])));
    }
}
