//! Component universes and configuration bit vectors.

use std::collections::HashMap;
use std::fmt;

/// A component identity: a dense index into a [`Universe`].
///
/// The paper names components `E1`, `E2`, `D1`…`D5`; ids keep configurations
/// as cheap bitsets instead of string sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Dense index of the component within its universe.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index (for table-driven tests).
    pub const fn from_index(ix: usize) -> Self {
        CompId(ix as u32)
    }
}

/// Interns component names to [`CompId`]s.
///
/// Registration order defines bit positions in [`Config`] bit strings, so the
/// case-study module registers `E1, E2, D1, D2, D3, D4, D5` to reproduce the
/// paper's `(D5,D4,D3,D2,D1,E2,E1)` vectors exactly.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, CompId>,
}

impl Universe {
    /// An empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// An empty universe with room for `capacity` components, so bulk
    /// builders (the fleet world generator interns `2·groups` names up
    /// front) never rehash mid-construction.
    pub fn with_capacity(capacity: usize) -> Self {
        Universe { names: Vec::with_capacity(capacity), index: HashMap::with_capacity(capacity) }
    }

    /// Interns `name`, returning the existing id if already present.
    ///
    /// A single `entry`-based probe: the hash is computed once whether the
    /// name is fresh or repeated.
    pub fn intern(&mut self, name: &str) -> CompId {
        use std::collections::hash_map::Entry;
        match self.index.entry(name.to_string()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = CompId(self.names.len() as u32);
                self.names.push(e.key().clone());
                e.insert(id);
                id
            }
        }
    }

    /// Looks a name up without interning.
    pub fn id(&self, name: &str) -> Option<CompId> {
        self.index.get(name).copied()
    }

    /// The name registered for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this universe.
    pub fn name(&self, id: CompId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no components are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates ids in registration order.
    pub fn iter(&self) -> impl Iterator<Item = CompId> + '_ {
        (0..self.names.len()).map(|ix| CompId(ix as u32))
    }

    /// An empty configuration sized for this universe.
    pub fn empty_config(&self) -> Config {
        Config::empty(self.len())
    }

    /// Builds a configuration from component names.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown.
    pub fn config_of(&self, names: &[&str]) -> Config {
        let mut cfg = self.empty_config();
        for n in names {
            let id = self.id(n).unwrap_or_else(|| panic!("unknown component {n:?}"));
            cfg.insert(id);
        }
        cfg
    }

    /// Parses a paper-style bit string (most-significant component first,
    /// i.e. the *last* registered component is the leftmost bit).
    ///
    /// # Panics
    ///
    /// Panics if the string length differs from the universe size or
    /// contains characters other than `0`/`1`.
    pub fn config_from_bits(&self, bits: &str) -> Config {
        assert_eq!(bits.len(), self.len(), "bit string width mismatch");
        let mut cfg = self.empty_config();
        for (pos, ch) in bits.chars().enumerate() {
            let ix = self.len() - 1 - pos;
            match ch {
                '1' => cfg.insert(CompId(ix as u32)),
                '0' => {}
                other => panic!("invalid bit {other:?}"),
            }
        }
        cfg
    }
}

/// A system configuration: the set of components currently composed into the
/// running system (Section 3.1's bit vector).
///
/// Configurations are fixed-width bitsets; all set operations require both
/// operands to come from the same universe (same width).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Config {
    nbits: usize,
    words: Vec<u64>,
}

impl Config {
    /// The empty configuration over `nbits` components.
    pub fn empty(nbits: usize) -> Self {
        Config { nbits, words: vec![0; nbits.div_ceil(64)] }
    }

    /// Width (number of component slots, not set bits).
    pub fn width(&self) -> usize {
        self.nbits
    }

    /// Adds a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this configuration's width.
    pub fn insert(&mut self, id: CompId) {
        let ix = id.index();
        assert!(ix < self.nbits, "component {ix} out of range (width {})", self.nbits);
        self.words[ix / 64] |= 1 << (ix % 64);
    }

    /// Removes a component (no-op if absent).
    pub fn remove(&mut self, id: CompId) {
        let ix = id.index();
        assert!(ix < self.nbits, "component {ix} out of range (width {})", self.nbits);
        self.words[ix / 64] &= !(1 << (ix % 64));
    }

    /// Membership test.
    pub fn contains(&self, id: CompId) -> bool {
        let ix = id.index();
        ix < self.nbits && self.words[ix / 64] & (1 << (ix % 64)) != 0
    }

    /// Number of components present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no components are present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates present components in increasing id order. Walks the
    /// backing words with `trailing_zeros` — cost scales with the set bits
    /// (plus one probe per word), not with the width.
    pub fn iter(&self) -> impl Iterator<Item = CompId> + '_ {
        self.words.iter().enumerate().flat_map(|(wix, &w)| {
            std::iter::successors((w != 0).then_some(w), |rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |rest| CompId::from_index(wix * 64 + rest.trailing_zeros() as usize))
        })
    }

    /// The backing bit words, least-significant component first. Compiled
    /// invariant kernels evaluate word-wise against this slice instead of
    /// probing bits one [`Config::contains`] call at a time.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The components on which `self` and `other` disagree, ascending.
    /// Word-wise XOR walk: cost scales with the differing bits (plus one
    /// probe per word), not with the width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn diff_ids(&self, other: &Config) -> Vec<CompId> {
        self.check_width(other);
        let mut out = Vec::new();
        for (wix, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut rest = a ^ b;
            while rest != 0 {
                out.push(CompId::from_index(wix * 64 + rest.trailing_zeros() as usize));
                rest &= rest - 1;
            }
        }
        out
    }

    fn check_width(&self, other: &Config) {
        assert_eq!(self.nbits, other.nbits, "configuration width mismatch");
    }

    /// Set union.
    pub fn union(&self, other: &Config) -> Config {
        self.check_width(other);
        Config {
            nbits: self.nbits,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Config) -> Config {
        self.check_width(other);
        Config {
            nbits: self.nbits,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
        }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &Config) -> Config {
        self.check_width(other);
        Config {
            nbits: self.nbits,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect(),
        }
    }

    /// True when every component of `self` is in `other`.
    pub fn is_subset(&self, other: &Config) -> bool {
        self.check_width(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// True when `self` and `other` share no component.
    pub fn is_disjoint(&self, other: &Config) -> bool {
        self.check_width(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Renders the paper's bit-vector form: last-registered component first.
    ///
    /// With the case study's registration order `E1..D5`, this prints exactly
    /// Table 1's `(D5,D4,D3,D2,D1,E2,E1)` strings such as `0100101`.
    pub fn to_bit_string(&self) -> String {
        (0..self.nbits)
            .rev()
            .map(|ix| if self.contains(CompId::from_index(ix)) { '1' } else { '0' })
            .collect()
    }

    /// Renders the member names, e.g. `{D4,D1,E1}`, using descending-id order
    /// to match the paper's tables.
    pub fn to_names(&self, u: &Universe) -> String {
        let mut parts: Vec<&str> = self.iter().map(|id| u.name(id)).collect();
        parts.reverse();
        format!("{{{}}}", parts.join(","))
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u7() -> Universe {
        let mut u = Universe::new();
        for n in ["E1", "E2", "D1", "D2", "D3", "D4", "D5"] {
            u.intern(n);
        }
        u
    }

    #[test]
    fn intern_is_idempotent() {
        let mut u = Universe::new();
        let a = u.intern("A");
        let a2 = u.intern("A");
        assert_eq!(a, a2);
        assert_eq!(u.len(), 1);
        assert_eq!(u.name(a), "A");
        assert_eq!(u.id("A"), Some(a));
        assert_eq!(u.id("B"), None);
    }

    #[test]
    fn with_capacity_interns_like_new() {
        let mut a = Universe::new();
        let mut b = Universe::with_capacity(8);
        for n in ["A", "B", "A", "C"] {
            assert_eq!(a.intern(n), b.intern(n));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn words_expose_the_backing_bits() {
        let mut u = Universe::new();
        let ids: Vec<CompId> = (0..70).map(|i| u.intern(&format!("C{i}"))).collect();
        let mut c = u.empty_config();
        c.insert(ids[3]);
        c.insert(ids[65]);
        assert_eq!(c.words(), &[1u64 << 3, 1u64 << 1]);
    }

    #[test]
    fn paper_bit_vector_round_trips() {
        let u = u7();
        // Table 1 row 1: 0100101 = {D4, D1, E1}
        let cfg = u.config_from_bits("0100101");
        assert_eq!(cfg, u.config_of(&["D4", "D1", "E1"]));
        assert_eq!(cfg.to_bit_string(), "0100101");
        assert_eq!(cfg.to_names(&u), "{D4,D1,E1}");
        assert_eq!(cfg.len(), 3);
    }

    #[test]
    fn paper_target_vector() {
        let u = u7();
        let cfg = u.config_from_bits("1010010");
        assert_eq!(cfg, u.config_of(&["D5", "D3", "E2"]));
    }

    #[test]
    fn set_algebra() {
        let u = u7();
        let a = u.config_of(&["E1", "D1"]);
        let b = u.config_of(&["E1", "D2"]);
        assert_eq!(a.union(&b), u.config_of(&["E1", "D1", "D2"]));
        assert_eq!(a.intersection(&b), u.config_of(&["E1"]));
        assert_eq!(a.difference(&b), u.config_of(&["D1"]));
        assert!(u.config_of(&["E1"]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_disjoint(&u.config_of(&["D5"])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn insert_remove_contains() {
        let u = u7();
        let mut c = u.empty_config();
        let d5 = u.id("D5").unwrap();
        assert!(!c.contains(d5));
        c.insert(d5);
        assert!(c.contains(d5));
        c.remove(d5);
        assert!(!c.contains(d5) && c.is_empty());
    }

    #[test]
    fn wide_universe_crosses_word_boundary() {
        let mut u = Universe::new();
        let ids: Vec<CompId> = (0..130).map(|i| u.intern(&format!("C{i}"))).collect();
        let mut c = u.empty_config();
        c.insert(ids[0]);
        c.insert(ids[64]);
        c.insert(ids[129]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(ids[64]));
        let members: Vec<CompId> = c.iter().collect();
        assert_eq!(members, vec![ids[0], ids[64], ids[129]]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = Config::empty(3);
        let b = Config::empty(4);
        let _ = a.union(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut c = Config::empty(3);
        c.insert(CompId::from_index(3));
    }

    #[test]
    fn display_matches_bit_string() {
        let u = u7();
        let c = u.config_of(&["E2"]);
        assert_eq!(format!("{c}"), "0000010");
    }
}
