//! The dependency-relationship expression language.

use std::collections::BTreeSet;
use std::fmt;

use crate::config::{CompId, Config, Universe};
use crate::parser::{parse_expr, ParseError};

/// Three-valued truth used for pruning partial configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely true regardless of unassigned components.
    True,
    /// Definitely false regardless of unassigned components.
    False,
    /// Depends on at least one unassigned component.
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// A partial truth assignment over components: some decided, the rest open.
///
/// Used by the pruned enumerator — components are decided one at a time and
/// the invariant conjunction is re-evaluated in three-valued logic after each
/// decision.
#[derive(Debug, Clone)]
pub struct PartialAssignment {
    decided: Config,
    value: Config,
}

impl PartialAssignment {
    /// No component decided yet.
    pub fn new(width: usize) -> Self {
        PartialAssignment { decided: Config::empty(width), value: Config::empty(width) }
    }

    /// Starts from a fully- or partially-known base: every component in
    /// `decided` is fixed to its membership in `value`.
    pub fn with_fixed(decided: Config, value: Config) -> Self {
        assert_eq!(decided.width(), value.width(), "width mismatch");
        PartialAssignment { value: value.intersection(&decided), decided }
    }

    /// Fixes `id` to `present`.
    pub fn assign(&mut self, id: CompId, present: bool) {
        self.decided.insert(id);
        if present {
            self.value.insert(id);
        } else {
            self.value.remove(id);
        }
    }

    /// Reverts `id` to undecided.
    pub fn unassign(&mut self, id: CompId) {
        self.decided.remove(id);
        self.value.remove(id);
    }

    /// Three-valued lookup.
    pub fn get(&self, id: CompId) -> Tri {
        if !self.decided.contains(id) {
            Tri::Unknown
        } else {
            Tri::from_bool(self.value.contains(id))
        }
    }

    /// The decided-and-present components (only meaningful when complete).
    pub fn as_config(&self) -> &Config {
        &self.value
    }
}

/// A dependency-relationship predicate over components (Section 3.1).
///
/// `A -> Cond` from the paper is [`Expr::implies`]; the structural
/// "exclusively select one of {…}" invariant is [`Expr::exactly_one`]; `·` is
/// [`Expr::and`], `∨` is [`Expr::or`] and `⊕` is [`Expr::xor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant truth value.
    Const(bool),
    /// "Component is present and functioning correctly."
    Var(CompId),
    /// Logical negation.
    Not(Box<Expr>),
    /// N-ary conjunction (true when empty).
    And(Vec<Expr>),
    /// N-ary disjunction (false when empty).
    Or(Vec<Expr>),
    /// N-ary parity (odd number of true operands).
    Xor(Vec<Expr>),
    /// Exactly one operand true — the paper's ⨂ structural invariant.
    ExactlyOne(Vec<Expr>),
    /// Material implication — the paper's dependency arrow `→`.
    Implies(Box<Expr>, Box<Expr>),
    /// Biconditional.
    Iff(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variable reference.
    pub fn var(id: CompId) -> Expr {
        Expr::Var(id)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// N-ary conjunction.
    pub fn and(es: Vec<Expr>) -> Expr {
        Expr::And(es)
    }

    /// N-ary disjunction.
    pub fn or(es: Vec<Expr>) -> Expr {
        Expr::Or(es)
    }

    /// N-ary parity.
    pub fn xor(es: Vec<Expr>) -> Expr {
        Expr::Xor(es)
    }

    /// Exactly-one-of constraint.
    pub fn exactly_one(es: Vec<Expr>) -> Expr {
        Expr::ExactlyOne(es)
    }

    /// `self → rhs`.
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::Implies(Box::new(self), Box::new(rhs))
    }

    /// `self ↔ rhs`.
    pub fn iff(self, rhs: Expr) -> Expr {
        Expr::Iff(Box::new(self), Box::new(rhs))
    }

    /// Two-valued evaluation against a complete configuration: a component
    /// variable is true iff the component is in the configuration.
    pub fn eval(&self, cfg: &Config) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(id) => cfg.contains(*id),
            Expr::Not(e) => !e.eval(cfg),
            Expr::And(es) => es.iter().all(|e| e.eval(cfg)),
            Expr::Or(es) => es.iter().any(|e| e.eval(cfg)),
            Expr::Xor(es) => es.iter().filter(|e| e.eval(cfg)).count() % 2 == 1,
            Expr::ExactlyOne(es) => es.iter().filter(|e| e.eval(cfg)).count() == 1,
            Expr::Implies(a, b) => !a.eval(cfg) || b.eval(cfg),
            Expr::Iff(a, b) => a.eval(cfg) == b.eval(cfg),
        }
    }

    /// Three-valued evaluation against a partial assignment; returns
    /// [`Tri::Unknown`] only when undecided components can still change the
    /// outcome. This powers the pruned safe-configuration search.
    pub fn eval3(&self, pa: &PartialAssignment) -> Tri {
        match self {
            Expr::Const(b) => Tri::from_bool(*b),
            Expr::Var(id) => pa.get(*id),
            Expr::Not(e) => e.eval3(pa).not(),
            Expr::And(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval3(pa) {
                        Tri::False => return Tri::False,
                        Tri::Unknown => unknown = true,
                        Tri::True => {}
                    }
                }
                if unknown {
                    Tri::Unknown
                } else {
                    Tri::True
                }
            }
            Expr::Or(es) => {
                let mut unknown = false;
                for e in es {
                    match e.eval3(pa) {
                        Tri::True => return Tri::True,
                        Tri::Unknown => unknown = true,
                        Tri::False => {}
                    }
                }
                if unknown {
                    Tri::Unknown
                } else {
                    Tri::False
                }
            }
            Expr::Xor(es) => {
                let mut parity = false;
                for e in es {
                    match e.eval3(pa) {
                        Tri::Unknown => return Tri::Unknown,
                        Tri::True => parity = !parity,
                        Tri::False => {}
                    }
                }
                Tri::from_bool(parity)
            }
            Expr::ExactlyOne(es) => {
                let mut trues = 0usize;
                let mut unknowns = 0usize;
                for e in es {
                    match e.eval3(pa) {
                        Tri::True => trues += 1,
                        Tri::Unknown => unknowns += 1,
                        Tri::False => {}
                    }
                }
                if trues > 1 {
                    Tri::False
                } else if unknowns == 0 {
                    Tri::from_bool(trues == 1)
                } else {
                    Tri::Unknown
                }
            }
            Expr::Implies(a, b) => match (a.eval3(pa), b.eval3(pa)) {
                (Tri::False, _) | (_, Tri::True) => Tri::True,
                (Tri::True, Tri::False) => Tri::False,
                _ => Tri::Unknown,
            },
            Expr::Iff(a, b) => match (a.eval3(pa), b.eval3(pa)) {
                (Tri::Unknown, _) | (_, Tri::Unknown) => Tri::Unknown,
                (x, y) => Tri::from_bool(x == y),
            },
        }
    }

    /// Collects every component mentioned by the expression.
    pub fn collect_vars(&self, out: &mut BTreeSet<CompId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(id) => {
                out.insert(*id);
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) | Expr::ExactlyOne(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            Expr::Implies(a, b) | Expr::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    fn fmt_with(&self, u: Option<&Universe>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(
            es: &[Expr],
            sep: &str,
            empty: &str,
            u: Option<&Universe>,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            if es.is_empty() {
                return f.write_str(empty);
            }
            f.write_str("(")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                e.fmt_with(u, f)?;
            }
            f.write_str(")")
        }
        match self {
            Expr::Const(b) => write!(f, "{b}"),
            Expr::Var(id) => match u {
                Some(u) => f.write_str(u.name(*id)),
                None => write!(f, "c{}", id.index()),
            },
            Expr::Not(e) => {
                f.write_str("!")?;
                e.fmt_with(u, f)
            }
            Expr::And(es) => list(es, " & ", "true", u, f),
            Expr::Or(es) => list(es, " | ", "false", u, f),
            Expr::Xor(es) => list(es, " ^ ", "false", u, f),
            Expr::ExactlyOne(es) => {
                f.write_str("one_of(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    e.fmt_with(u, f)?;
                }
                f.write_str(")")
            }
            Expr::Implies(a, b) => {
                f.write_str("(")?;
                a.fmt_with(u, f)?;
                f.write_str(" => ")?;
                b.fmt_with(u, f)?;
                f.write_str(")")
            }
            Expr::Iff(a, b) => {
                f.write_str("(")?;
                a.fmt_with(u, f)?;
                f.write_str(" <=> ")?;
                b.fmt_with(u, f)?;
                f.write_str(")")
            }
        }
    }

    /// Renders the expression with component names resolved through `u`.
    pub fn display<'a>(&'a self, u: &'a Universe) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Expr, &'a Universe);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt_with(Some(self.1), f)
            }
        }
        D(self, u)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(None, f)
    }
}

/// The conjunction *I* of all dependency-relationship predicates: structural
/// invariants plus per-component dependency invariants (Section 3.1).
#[derive(Debug, Clone, Default)]
pub struct InvariantSet {
    exprs: Vec<Expr>,
}

impl InvariantSet {
    /// An empty (always-satisfied) invariant set.
    pub fn new() -> Self {
        InvariantSet::default()
    }

    /// Adds one predicate.
    pub fn push(&mut self, e: Expr) {
        self.exprs.push(e);
    }

    /// Parses each source string with [`parse_expr`], interning component
    /// names into `u`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`] encountered.
    pub fn parse(sources: &[&str], u: &mut Universe) -> Result<Self, ParseError> {
        let mut set = InvariantSet::new();
        for src in sources {
            set.push(parse_expr(src, u)?);
        }
        Ok(set)
    }

    /// The individual predicates.
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Section 3.1: a configuration *satisfies* the dependency relationships
    /// when the conjunction evaluates true with in-configuration components
    /// true and all others false.
    pub fn satisfied_by(&self, cfg: &Config) -> bool {
        self.exprs.iter().all(|e| e.eval(cfg))
    }

    /// Three-valued satisfaction for partial assignments.
    pub fn eval3(&self, pa: &PartialAssignment) -> Tri {
        let mut unknown = false;
        for e in &self.exprs {
            match e.eval3(pa) {
                Tri::False => return Tri::False,
                Tri::Unknown => unknown = true,
                Tri::True => {}
            }
        }
        if unknown {
            Tri::Unknown
        } else {
            Tri::True
        }
    }

    /// Every component mentioned by any predicate.
    pub fn vars(&self) -> BTreeSet<CompId> {
        let mut out = BTreeSet::new();
        for e in &self.exprs {
            e.collect_vars(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Universe, CompId, CompId, CompId) {
        let mut u = Universe::new();
        let a = u.intern("A");
        let b = u.intern("B");
        let c = u.intern("C");
        (u, a, b, c)
    }

    #[test]
    fn eval_basic_connectives() {
        let (u, a, b, _c) = setup();
        let cfg = u.config_of(&["A"]);
        assert!(Expr::var(a).eval(&cfg));
        assert!(!Expr::var(b).eval(&cfg));
        assert!(Expr::not(Expr::var(b)).eval(&cfg));
        assert!(Expr::or(vec![Expr::var(a), Expr::var(b)]).eval(&cfg));
        assert!(!Expr::and(vec![Expr::var(a), Expr::var(b)]).eval(&cfg));
        assert!(Expr::var(b).implies(Expr::var(a)).eval(&cfg), "false antecedent");
        assert!(Expr::var(a).implies(Expr::var(a)).eval(&cfg));
        assert!(!Expr::var(a).implies(Expr::var(b)).eval(&cfg));
        assert!(Expr::var(a).iff(Expr::var(a)).eval(&cfg));
        assert!(!Expr::var(a).iff(Expr::var(b)).eval(&cfg));
    }

    #[test]
    fn empty_connectives_have_identity_semantics() {
        let cfg = Config::empty(0);
        assert!(Expr::and(vec![]).eval(&cfg));
        assert!(!Expr::or(vec![]).eval(&cfg));
        assert!(!Expr::xor(vec![]).eval(&cfg));
        assert!(!Expr::exactly_one(vec![]).eval(&cfg));
    }

    #[test]
    fn xor_is_parity_exactly_one_is_cardinality() {
        let (u, a, b, c) = setup();
        let all = u.config_of(&["A", "B", "C"]);
        let xor = Expr::xor(vec![Expr::var(a), Expr::var(b), Expr::var(c)]);
        let one = Expr::exactly_one(vec![Expr::var(a), Expr::var(b), Expr::var(c)]);
        assert!(xor.eval(&all), "three trues have odd parity");
        assert!(!one.eval(&all), "three trues is not exactly one");
        let single = u.config_of(&["B"]);
        assert!(xor.eval(&single));
        assert!(one.eval(&single));
    }

    #[test]
    fn eval3_prunes_and_decides() {
        let (u, a, b, _c) = setup();
        let e = Expr::and(vec![Expr::var(a), Expr::var(b)]);
        let mut pa = PartialAssignment::new(u.len());
        assert_eq!(e.eval3(&pa), Tri::Unknown);
        pa.assign(a, false);
        assert_eq!(e.eval3(&pa), Tri::False, "one false conjunct decides");
        pa.assign(a, true);
        assert_eq!(e.eval3(&pa), Tri::Unknown);
        pa.assign(b, true);
        assert_eq!(e.eval3(&pa), Tri::True);
        pa.unassign(b);
        assert_eq!(e.eval3(&pa), Tri::Unknown);
    }

    #[test]
    fn eval3_exactly_one_early_false() {
        let (u, a, b, c) = setup();
        let e = Expr::exactly_one(vec![Expr::var(a), Expr::var(b), Expr::var(c)]);
        let mut pa = PartialAssignment::new(u.len());
        pa.assign(a, true);
        pa.assign(b, true);
        // c still unknown, but two trues already violate exactly-one.
        assert_eq!(e.eval3(&pa), Tri::False);
    }

    #[test]
    fn eval3_implication_shortcuts() {
        let (u, a, b, _c) = setup();
        let e = Expr::var(a).implies(Expr::var(b));
        let mut pa = PartialAssignment::new(u.len());
        pa.assign(a, false);
        assert_eq!(e.eval3(&pa), Tri::True, "false antecedent decides without b");
    }

    #[test]
    fn eval3_agrees_with_eval_on_complete_assignments() {
        let (u, a, b, c) = setup();
        let exprs = vec![
            Expr::exactly_one(vec![Expr::var(a), Expr::var(b)]),
            Expr::var(a).implies(Expr::or(vec![Expr::var(b), Expr::var(c)])),
            Expr::xor(vec![Expr::var(a), Expr::var(b), Expr::var(c)]),
            Expr::not(Expr::var(c)).iff(Expr::var(a)),
        ];
        for bits in 0u32..8 {
            let mut cfg = u.empty_config();
            let mut pa = PartialAssignment::new(u.len());
            for (i, id) in [a, b, c].into_iter().enumerate() {
                let present = bits & (1 << i) != 0;
                if present {
                    cfg.insert(id);
                }
                pa.assign(id, present);
            }
            for e in &exprs {
                assert_eq!(e.eval3(&pa), Tri::from_bool(e.eval(&cfg)), "{e} on {cfg}");
            }
        }
    }

    #[test]
    fn collect_vars_finds_all() {
        let (_u, a, b, c) = setup();
        let e = Expr::exactly_one(vec![Expr::var(a), Expr::var(b)]).implies(Expr::var(c));
        let mut vars = BTreeSet::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec![a, b, c]);
    }

    #[test]
    fn invariant_set_conjunction() {
        let (u, a, b, _c) = setup();
        let mut inv = InvariantSet::new();
        inv.push(Expr::var(a));
        inv.push(Expr::var(a).implies(Expr::var(b)));
        assert!(inv.satisfied_by(&u.config_of(&["A", "B"])));
        assert!(!inv.satisfied_by(&u.config_of(&["A"])));
        assert!(!inv.satisfied_by(&u.config_of(&["B"])));
        assert_eq!(inv.vars().len(), 2);
    }

    #[test]
    fn display_names_components() {
        let (u, a, b, _c) = setup();
        let e = Expr::var(a).implies(Expr::exactly_one(vec![Expr::var(b)]));
        assert_eq!(e.display(&u).to_string(), "(A => one_of(B))");
        assert_eq!(e.to_string(), "(c0 => one_of(c1))");
    }

    #[test]
    fn partial_assignment_with_fixed_masks_value() {
        let (u, a, b, _c) = setup();
        let mut decided = u.empty_config();
        decided.insert(a);
        let value = u.config_of(&["A", "B"]); // B not decided, must be masked out
        let pa = PartialAssignment::with_fixed(decided, value);
        assert_eq!(pa.get(a), Tri::True);
        assert_eq!(pa.get(b), Tri::Unknown);
        assert!(!pa.as_config().contains(b));
    }
}
