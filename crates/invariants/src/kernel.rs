//! Compiled invariant kernels: the planner's safety-check hot path.
//!
//! Tree-walking [`Expr::eval`] is fine for a one-shot satisfiability query,
//! but a lazy planner asks "is this candidate configuration safe?" once per
//! generated successor — millions of times across a fleet of concurrent
//! sessions. Two observations make that cheap:
//!
//! 1. **Word-wise evaluation.** Each predicate lowers once to a flat postfix
//!    program over the [`Config`] bit words. Variable-only operand lists —
//!    the overwhelmingly common shape (`one_of(Old3, New3)`, conjunctions
//!    of presence bits) — fuse into single mask ops: `one_of` becomes a
//!    popcount over masked words, conjunction becomes `word & mask == mask`.
//!    No recursion, no `Box` chasing, no per-bit `contains` calls.
//!
//! 2. **Support masks.** Every predicate records its *support* — the set of
//!    components it mentions. An adaptive action only flips its touched
//!    components, so a successor of a known-safe configuration can only
//!    violate predicates whose support intersects the touched set.
//!    [`CompiledInvariants::still_satisfied_after`] re-evaluates exactly
//!    those, which for the paper's collaborative-set-structured invariants
//!    is typically one predicate instead of all of them.

use crate::config::{CompId, Config};
use crate::expr::{Expr, InvariantSet};

/// One postfix instruction. Fused ops (`AllSet`…`CountIsOne`) reference a
/// `start..start+len` range in the side table of `(word, mask)` pairs and
/// push one boolean; the general ops pop operands off the evaluation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Push a constant.
    Const(bool),
    /// Push one component's presence bit.
    Bit { word: u32, mask: u64 },
    /// Push `true` iff every masked bit is set (fused variable conjunction;
    /// vacuously true on an empty range, matching `And([])`).
    AllSet { start: u32, len: u32 },
    /// Push `true` iff any masked bit is set (fused variable disjunction).
    AnySet { start: u32, len: u32 },
    /// Push the parity of the masked popcount (fused variable xor).
    ParityOdd { start: u32, len: u32 },
    /// Push `true` iff the masked popcount is exactly one (fused `one_of`).
    CountIsOne { start: u32, len: u32 },
    /// Negate the top of stack.
    Not,
    /// Pop `n`, push their conjunction.
    And(u32),
    /// Pop `n`, push their disjunction.
    Or(u32),
    /// Pop `n`, push their parity.
    Xor(u32),
    /// Pop `n`, push `true` iff exactly one was true.
    ExactlyOne(u32),
    /// Pop `b` then `a`, push `!a || b`.
    Implies,
    /// Pop `b` then `a`, push `a == b`.
    Iff,
}

/// Evaluation stacks rarely exceed a handful of slots; programs up to this
/// depth evaluate on a fixed stack with no allocation.
const INLINE_STACK: usize = 32;

/// One predicate, lowered to a flat postfix program plus its support list.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    /// Side table of `(word index, bit mask)` operands for the fused ops,
    /// grouped so each word appears at most once per operand range.
    masks: Vec<(u32, u64)>,
    /// Components the predicate mentions, sorted ascending. A sparse list
    /// rather than a width-wide bitset: a predicate mentions a handful of
    /// components however wide the world is, so compiling 100k predicates
    /// stays linear in the invariant text, not quadratic in the width.
    support: Vec<CompId>,
    /// Deepest evaluation stack the program can reach.
    max_stack: usize,
}

impl CompiledExpr {
    /// Lowers `expr` for configurations of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a component index `>= width`.
    pub fn compile(expr: &Expr, width: usize) -> Self {
        let mut c =
            CompiledExpr { ops: Vec::new(), masks: Vec::new(), support: Vec::new(), max_stack: 0 };
        let mut depth = 0usize;
        c.lower(expr, width, &mut depth);
        debug_assert_eq!(depth, 1, "a program must leave exactly one result");
        c.support.sort_unstable();
        c.support.dedup();
        c
    }

    /// The components this predicate mentions, ascending.
    pub fn support(&self) -> &[CompId] {
        &self.support
    }

    /// True when the predicate mentions no component of `touched`.
    fn disjoint_from(&self, touched: &Config) -> bool {
        self.support.iter().all(|&c| !touched.contains(c))
    }

    fn push_op(&mut self, op: Op, pops: usize, depth: &mut usize) {
        debug_assert!(*depth >= pops, "postfix underflow");
        *depth = *depth - pops + 1;
        self.max_stack = self.max_stack.max(*depth);
        self.ops.push(op);
    }

    /// Emits the `(word, mask)` range for a list of variable ids, one table
    /// entry per distinct word, and returns `(start, len)`.
    fn mask_range(&mut self, ids: &[CompId]) -> (u32, u32) {
        let start = self.masks.len() as u32;
        let mut per_word: Vec<(u32, u64)> = Vec::new();
        for id in ids {
            let (w, m) = (id.index() / 64, 1u64 << (id.index() % 64));
            match per_word.iter_mut().find(|(pw, _)| *pw == w as u32) {
                Some((_, pm)) => *pm |= m,
                None => per_word.push((w as u32, m)),
            }
        }
        let len = per_word.len() as u32;
        self.masks.extend(per_word);
        (start, len)
    }

    fn record_var(&mut self, id: CompId, width: usize) {
        assert!(id.index() < width, "component {} out of range (width {width})", id.index());
        self.support.push(id);
    }

    /// If every element of `es` is a plain variable, returns their ids.
    fn all_vars(es: &[Expr]) -> Option<Vec<CompId>> {
        es.iter()
            .map(|e| match e {
                Expr::Var(id) => Some(*id),
                _ => None,
            })
            .collect()
    }

    fn lower(&mut self, expr: &Expr, width: usize, depth: &mut usize) {
        match expr {
            Expr::Const(b) => self.push_op(Op::Const(*b), 0, depth),
            Expr::Var(id) => {
                self.record_var(*id, width);
                let op =
                    Op::Bit { word: (id.index() / 64) as u32, mask: 1u64 << (id.index() % 64) };
                self.push_op(op, 0, depth);
            }
            Expr::Not(e) => {
                self.lower(e, width, depth);
                self.push_op(Op::Not, 1, depth);
            }
            Expr::And(es) | Expr::Or(es) | Expr::Xor(es) | Expr::ExactlyOne(es) => {
                if let Some(ids) = Self::all_vars(es) {
                    for &id in &ids {
                        self.record_var(id, width);
                    }
                    let (start, len) = self.mask_range(&ids);
                    let op = match expr {
                        Expr::And(_) => Op::AllSet { start, len },
                        Expr::Or(_) => Op::AnySet { start, len },
                        Expr::Xor(_) => Op::ParityOdd { start, len },
                        _ => Op::CountIsOne { start, len },
                    };
                    self.push_op(op, 0, depth);
                } else {
                    for e in es {
                        self.lower(e, width, depth);
                    }
                    let n = es.len() as u32;
                    let op = match expr {
                        Expr::And(_) => Op::And(n),
                        Expr::Or(_) => Op::Or(n),
                        Expr::Xor(_) => Op::Xor(n),
                        _ => Op::ExactlyOne(n),
                    };
                    self.push_op(op, es.len(), depth);
                }
            }
            Expr::Implies(a, b) => {
                self.lower(a, width, depth);
                self.lower(b, width, depth);
                self.push_op(Op::Implies, 2, depth);
            }
            Expr::Iff(a, b) => {
                self.lower(a, width, depth);
                self.lower(b, width, depth);
                self.push_op(Op::Iff, 2, depth);
            }
        }
    }

    /// Evaluates the program against `cfg` (same semantics as
    /// [`Expr::eval`] on the source expression).
    pub fn eval(&self, cfg: &Config) -> bool {
        if self.max_stack <= INLINE_STACK {
            self.eval_on(&mut [false; INLINE_STACK], cfg)
        } else {
            self.eval_on(&mut vec![false; self.max_stack], cfg)
        }
    }

    fn eval_on(&self, stack: &mut [bool], cfg: &Config) -> bool {
        let words = cfg.words();
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::Const(b) => {
                    stack[sp] = b;
                    sp += 1;
                }
                Op::Bit { word, mask } => {
                    stack[sp] = words[word as usize] & mask != 0;
                    sp += 1;
                }
                Op::AllSet { start, len } => {
                    let range = &self.masks[start as usize..(start + len) as usize];
                    stack[sp] = range.iter().all(|&(w, m)| words[w as usize] & m == m);
                    sp += 1;
                }
                Op::AnySet { start, len } => {
                    let range = &self.masks[start as usize..(start + len) as usize];
                    stack[sp] = range.iter().any(|&(w, m)| words[w as usize] & m != 0);
                    sp += 1;
                }
                Op::ParityOdd { start, len } => {
                    let range = &self.masks[start as usize..(start + len) as usize];
                    let count: u32 =
                        range.iter().map(|&(w, m)| (words[w as usize] & m).count_ones()).sum();
                    stack[sp] = count % 2 == 1;
                    sp += 1;
                }
                Op::CountIsOne { start, len } => {
                    let range = &self.masks[start as usize..(start + len) as usize];
                    let count: u32 =
                        range.iter().map(|&(w, m)| (words[w as usize] & m).count_ones()).sum();
                    stack[sp] = count == 1;
                    sp += 1;
                }
                Op::Not => stack[sp - 1] = !stack[sp - 1],
                Op::And(n) => {
                    let n = n as usize;
                    let v = stack[sp - n..sp].iter().all(|&b| b);
                    sp -= n;
                    stack[sp] = v;
                    sp += 1;
                }
                Op::Or(n) => {
                    let n = n as usize;
                    let v = stack[sp - n..sp].iter().any(|&b| b);
                    sp -= n;
                    stack[sp] = v;
                    sp += 1;
                }
                Op::Xor(n) => {
                    let n = n as usize;
                    let v = stack[sp - n..sp].iter().filter(|&&b| b).count() % 2 == 1;
                    sp -= n;
                    stack[sp] = v;
                    sp += 1;
                }
                Op::ExactlyOne(n) => {
                    let n = n as usize;
                    let v = stack[sp - n..sp].iter().filter(|&&b| b).count() == 1;
                    sp -= n;
                    stack[sp] = v;
                    sp += 1;
                }
                Op::Implies => {
                    let b = stack[sp - 1];
                    let a = stack[sp - 2];
                    sp -= 2;
                    stack[sp] = !a || b;
                    sp += 1;
                }
                Op::Iff => {
                    let b = stack[sp - 1];
                    let a = stack[sp - 2];
                    sp -= 2;
                    stack[sp] = a == b;
                    sp += 1;
                }
            }
        }
        debug_assert_eq!(sp, 1);
        stack[0]
    }
}

/// An [`InvariantSet`] compiled for one configuration width: the flat
/// programs plus the support-indexed incremental check.
#[derive(Debug, Clone)]
pub struct CompiledInvariants {
    preds: Vec<CompiledExpr>,
    /// Inverted support index: `by_comp[c]` lists (ascending) the predicate
    /// indices whose support mentions component `c`. Lets scope-sized
    /// queries find their predicates without scanning the whole set.
    by_comp: Vec<Vec<u32>>,
    width: usize,
}

impl CompiledInvariants {
    /// Compiles every predicate of `set` for width `width`.
    pub fn compile(set: &InvariantSet, width: usize) -> Self {
        let preds: Vec<CompiledExpr> =
            set.exprs().iter().map(|e| CompiledExpr::compile(e, width)).collect();
        let mut by_comp = vec![Vec::new(); width];
        for (ix, p) in preds.iter().enumerate() {
            for &c in &p.support {
                by_comp[c.index()].push(ix as u32);
            }
        }
        CompiledInvariants { preds, by_comp, width }
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the set is empty (always satisfied).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The configuration width the kernels were compiled for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The compiled predicates, in [`InvariantSet::exprs`] order.
    pub fn preds(&self) -> &[CompiledExpr] {
        &self.preds
    }

    /// Evaluates predicate `ix` alone.
    pub fn eval_pred(&self, ix: usize, cfg: &Config) -> bool {
        self.preds[ix].eval(cfg)
    }

    /// Full check: every predicate holds on `cfg` (kernel equivalent of
    /// [`InvariantSet::satisfied_by`]).
    pub fn satisfied_by(&self, cfg: &Config) -> bool {
        self.preds.iter().all(|p| p.eval(cfg))
    }

    /// Full check that also counts individual predicate evaluations into
    /// `evals` (short-circuiting counts only what actually ran).
    pub fn satisfied_by_counting(&self, cfg: &Config, evals: &mut u64) -> bool {
        for p in &self.preds {
            *evals += 1;
            if !p.eval(cfg) {
                return false;
            }
        }
        true
    }

    /// Incremental check: given that `cfg`'s predecessor (differing from
    /// `cfg` only in components of `touched`) satisfied every predicate,
    /// `cfg` satisfies every predicate iff the ones whose support intersects
    /// `touched` still hold — untouched predicates see unchanged inputs.
    pub fn still_satisfied_after(&self, cfg: &Config, touched: &Config) -> bool {
        self.preds.iter().all(|p| p.disjoint_from(touched) || p.eval(cfg))
    }

    /// Counting variant of [`CompiledInvariants::still_satisfied_after`].
    pub fn still_satisfied_after_counting(
        &self,
        cfg: &Config,
        touched: &Config,
        evals: &mut u64,
    ) -> bool {
        for p in &self.preds {
            if p.disjoint_from(touched) {
                continue;
            }
            *evals += 1;
            if !p.eval(cfg) {
                return false;
            }
        }
        true
    }

    /// Indices of predicates whose support intersects `touched` — the exact
    /// set an incremental check re-evaluates. Planners precompute this per
    /// action so the per-candidate loop touches no other predicate.
    pub fn affected_by(&self, touched: &Config) -> Vec<u32> {
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.disjoint_from(touched))
            .map(|(ix, _)| ix as u32)
            .collect()
    }

    /// [`CompiledInvariants::affected_by`] for a sparse touched list: the
    /// same indices in the same ascending order, found through the inverted
    /// support index in O(touched × preds-per-comp) instead of O(preds).
    pub fn affected_by_ids(&self, touched: &[CompId]) -> Vec<u32> {
        let mut out: Vec<u32> =
            touched.iter().flat_map(|&c| self.by_comp[c.index()].iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Predicate indices mentioning component `c`, ascending.
    pub fn preds_of_comp(&self, c: CompId) -> &[u32] {
        &self.by_comp[c.index()]
    }
}

impl InvariantSet {
    /// Compiles the set's predicates into word-wise kernels with support
    /// masks for configurations of width `width`.
    pub fn compile(&self, width: usize) -> CompiledInvariants {
        CompiledInvariants::compile(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Universe;

    fn u(names: usize) -> Universe {
        let mut u = Universe::new();
        for i in 0..names {
            u.intern(&format!("C{i}"));
        }
        u
    }

    /// Every width-`n` configuration, for exhaustive oracle comparison.
    fn all_configs(n: usize) -> Vec<Config> {
        (0u32..1 << n)
            .map(|bits| {
                let mut c = Config::empty(n);
                for i in 0..n {
                    if bits & (1 << i) != 0 {
                        c.insert(CompId::from_index(i));
                    }
                }
                c
            })
            .collect()
    }

    #[test]
    fn fused_ops_match_tree_walk_exhaustively() {
        let mut universe = u(4);
        let exprs = [
            "one_of(C0, C1, C2)",
            "(C0 & C1 & C2)",
            "(C0 | C3)",
            "(C0 ^ C1 ^ C3)",
            "(C0 => (C1 & C2))",
            "(!C0 <=> one_of(C1, C2, C3))",
            "(C0 => false)",
            "one_of(C0, (C1 & C2), C3)",
        ];
        let inv = InvariantSet::parse(&exprs, &mut universe).unwrap();
        for (e, c) in inv.exprs().iter().zip(inv.compile(4).preds()) {
            for cfg in all_configs(4) {
                assert_eq!(c.eval(&cfg), e.eval(&cfg), "{e} on {cfg}");
            }
        }
    }

    #[test]
    fn empty_operand_lists_keep_identity_semantics() {
        let cfg = Config::empty(1);
        for (expr, want) in [
            (Expr::and(vec![]), true),
            (Expr::or(vec![]), false),
            (Expr::xor(vec![]), false),
            (Expr::exactly_one(vec![]), false),
        ] {
            assert_eq!(CompiledExpr::compile(&expr, 1).eval(&cfg), want, "{expr}");
        }
    }

    #[test]
    fn support_is_the_mentioned_components() {
        let mut universe = u(5);
        let inv = InvariantSet::parse(&["(C1 => one_of(C3, C4))"], &mut universe).unwrap();
        let compiled = inv.compile(5);
        let support = compiled.preds()[0].support();
        let members: Vec<usize> = support.iter().map(|id| id.index()).collect();
        assert_eq!(members, vec![1, 3, 4]);
        assert_eq!(compiled.preds_of_comp(CompId::from_index(3)), &[0]);
        assert_eq!(compiled.preds_of_comp(CompId::from_index(0)), &[] as &[u32]);
        assert_eq!(
            compiled.affected_by_ids(&[CompId::from_index(1), CompId::from_index(0)]),
            vec![0]
        );
    }

    #[test]
    fn one_of_spans_word_boundaries() {
        let mut universe = u(130);
        let inv = InvariantSet::parse(&["one_of(C3, C70, C129)"], &mut universe).unwrap();
        let compiled = inv.compile(130);
        let mut cfg = Config::empty(130);
        cfg.insert(CompId::from_index(70));
        assert!(compiled.satisfied_by(&cfg));
        cfg.insert(CompId::from_index(129));
        assert!(!compiled.satisfied_by(&cfg), "two of three set");
        cfg.remove(CompId::from_index(70));
        cfg.remove(CompId::from_index(129));
        assert!(!compiled.satisfied_by(&cfg), "none set");
    }

    #[test]
    fn incremental_check_skips_disjoint_predicates() {
        let mut universe = u(6);
        let inv = InvariantSet::parse(
            &["one_of(C0, C1)", "one_of(C2, C3)", "one_of(C4, C5)"],
            &mut universe,
        )
        .unwrap();
        let compiled = inv.compile(6);
        let cfg = universe.config_of(&["C0", "C2", "C4"]);
        assert!(compiled.satisfied_by(&cfg));

        // Flip the first group: C0 -> C1. Touched = {C0, C1}.
        let mut next = cfg.clone();
        next.remove(CompId::from_index(0));
        next.insert(CompId::from_index(1));
        let touched = universe.config_of(&["C0", "C1"]);
        let mut evals = 0;
        assert!(compiled.still_satisfied_after_counting(&next, &touched, &mut evals));
        assert_eq!(evals, 1, "only the touched group's predicate re-evaluates");
        assert_eq!(compiled.affected_by(&touched), vec![0]);

        // A bad flip (adding C1 without removing C0) is caught.
        let mut bad = cfg.clone();
        bad.insert(CompId::from_index(1));
        assert!(!compiled.still_satisfied_after(&bad, &touched));
    }

    #[test]
    fn deep_programs_fall_back_to_heap_stack() {
        // Right-nested conjunctions hold one pending operand per level, so
        // the evaluation stack outgrows the inline bound.
        let mut e = Expr::var(CompId::from_index(0));
        for _ in 0..2 * INLINE_STACK {
            e = Expr::and(vec![Expr::Const(true), e]);
        }
        let c = CompiledExpr::compile(&e, 1);
        assert!(c.max_stack > INLINE_STACK, "nesting grows the stack");
        let mut cfg = Config::empty(1);
        assert!(!c.eval(&cfg));
        cfg.insert(CompId::from_index(0));
        assert!(c.eval(&cfg));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compiling_past_the_width_panics() {
        CompiledExpr::compile(&Expr::var(CompId::from_index(7)), 4);
    }
}
