//! # sada-expr — dependency invariants and configurations
//!
//! Implements Section 3.1 of *Enabling Safe Dynamic Component-Based Software
//! Adaptation* (DSN 2004): components, configurations, and the boolean
//! dependency-relationship language used to define **safe configurations**.
//!
//! * A [`Universe`] interns component names (`E1`, `D3`, …) to dense ids.
//! * A [`Config`] is a set of components — the paper's bit vector (Table 1
//!   prints the video case study's configurations as 7-bit vectors).
//! * An [`Expr`] is a dependency predicate over components: conjunction,
//!   disjunction, xor, negation, implication (`A -> Cond`, the paper's
//!   dependency arrow) and the paper's "exclusively select one from a given
//!   set" structural constraint ([`Expr::exactly_one`]).
//! * An [`InvariantSet`] is the conjunction *I* of all dependency predicates;
//!   a configuration satisfying *I* is a **safe configuration**.
//! * A [`CompiledInvariants`] lowers the set to flat word-wise kernels with
//!   per-predicate support masks, giving planners an incremental
//!   `still_satisfied_after(cfg, touched)` safety check.
//! * [`enumerate`] computes the safe-configuration set, either exhaustively
//!   or with three-valued pruning (the ablation benchmarked in
//!   `bench_enumeration`).
//!
//! ## Example: a miniature security constraint
//!
//! ```
//! use sada_expr::{Universe, InvariantSet, enumerate};
//!
//! let mut u = Universe::new();
//! let src = "one_of(E1, E2) & (E1 => D1) & (E2 => D2)";
//! let inv = InvariantSet::parse(&[src], &mut u).unwrap();
//! let safe = enumerate::safe_configs(&u, &inv);
//! // Every safe configuration has exactly one encoder with its decoder.
//! for cfg in &safe {
//!     assert!(inv.satisfied_by(cfg));
//! }
//! assert!(!safe.is_empty());
//! ```

mod config;
mod expr;
mod kernel;
mod parser;
mod simplify;

pub mod enumerate;

pub use config::{CompId, Config, Universe};
pub use expr::{Expr, InvariantSet, PartialAssignment, Tri};
pub use kernel::{CompiledExpr, CompiledInvariants};
pub use parser::{parse_expr, ParseError};
