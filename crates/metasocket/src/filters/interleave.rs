//! Block interleaving filters.
//!
//! XOR-parity FEC recovers at most one loss per group, so a *burst* of
//! consecutive losses defeats it. A block interleaver permutes transmission
//! order (write a `rows × cols` matrix row-major, send column-major) so a
//! burst on the wire lands as isolated single losses per FEC group after
//! de-interleaving — the classic pairing the paper's wireless-edge
//! motivation calls for.
//!
//! The interleaver reorders whole packets; payloads are untouched, so it
//! composes with any cipher/FEC placement. The de-interleaving side needs
//! no dedicated filter: packets carry sequence numbers and both the FEC
//! decoder and the frame reassembler are order-tolerant. A pass-through
//! [`Deinterleaver`] is provided purely as the removable component the
//! adaptation protocol manages (and to restore arrival order for
//! order-sensitive sinks).

use std::collections::BTreeMap;

use crate::filter::{Filter, FilterStats};
use crate::packet::Packet;

/// Buffers `rows × cols` packets and releases them column-major.
#[derive(Debug)]
pub struct Interleaver {
    rows: usize,
    cols: usize,
    buf: Vec<Packet>,
    stats: FilterStats,
}

impl Interleaver {
    /// A `rows × cols` block interleaver. A burst of up to `cols`
    /// consecutive wire losses touches at most one packet per row.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "interleaver dimensions must be positive");
        Interleaver {
            rows,
            cols,
            buf: Vec::with_capacity(rows * cols),
            stats: FilterStats::default(),
        }
    }

    fn emit_block(&mut self) -> Vec<Packet> {
        // Column-major read-out of the row-major buffer.
        let mut out = Vec::with_capacity(self.buf.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                let ix = r * self.cols + c;
                if ix < self.buf.len() {
                    out.push(self.buf[ix].clone());
                }
            }
        }
        self.buf.clear();
        self.stats.packets_out += out.len() as u64;
        out
    }
}

impl Filter for Interleaver {
    fn kind(&self) -> &'static str {
        "interleave"
    }

    fn process(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        self.buf.push(pkt);
        if self.buf.len() == self.rows * self.cols {
            self.emit_block()
        } else {
            Vec::new()
        }
    }

    fn flush(&mut self) -> Vec<Packet> {
        self.emit_block()
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

/// Restores sequence order on the receive side using a bounded reorder
/// window: packets are released as soon as they are next-in-sequence, or
/// flushed in order when the window fills.
#[derive(Debug)]
pub struct Deinterleaver {
    window: usize,
    next_seq: Option<u64>,
    held: BTreeMap<u64, Packet>,
    stats: FilterStats,
}

impl Deinterleaver {
    /// A reorder window of `window` packets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "reorder window must be positive");
        Deinterleaver {
            window,
            next_seq: None,
            held: BTreeMap::new(),
            stats: FilterStats::default(),
        }
    }

    fn release_ready(&mut self, out: &mut Vec<Packet>) {
        while let Some(next) = self.next_seq {
            match self.held.remove(&next) {
                Some(p) => {
                    out.push(p);
                    self.next_seq = Some(next + 1);
                }
                None => break,
            }
        }
        // Window overflow: give up on the gap, release in order.
        while self.held.len() > self.window {
            let (&seq, _) = self.held.iter().next().expect("non-empty");
            let p = self.held.remove(&seq).expect("present");
            out.push(p);
            self.next_seq = Some(seq + 1);
        }
    }
}

impl Filter for Deinterleaver {
    fn kind(&self) -> &'static str {
        "deinterleave"
    }

    fn process(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        if self.next_seq.is_none() {
            self.next_seq = Some(pkt.seq);
        }
        // Late packets (already skipped past) are released immediately.
        if pkt.seq < self.next_seq.expect("just set") {
            self.stats.packets_out += 1;
            return vec![pkt];
        }
        self.held.insert(pkt.seq, pkt);
        let mut out = Vec::new();
        self.release_ready(&mut out);
        self.stats.packets_out += out.len() as u64;
        out
    }

    fn flush(&mut self) -> Vec<Packet> {
        let mut out: Vec<Packet> = Vec::with_capacity(self.held.len());
        for (_, p) in std::mem::take(&mut self.held) {
            out.push(p);
        }
        self.stats.packets_out += out.len() as u64;
        out
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::fec::{FecDecoder, FecEncoder};

    fn pkt(seq: u64) -> Packet {
        Packet::new(0, seq, vec![seq as u8; 16])
    }

    #[test]
    fn block_permutes_column_major() {
        let mut il = Interleaver::new(2, 3);
        let mut out = Vec::new();
        for seq in 0..6 {
            out.extend(il.process(pkt(seq)));
        }
        let seqs: Vec<u64> = out.iter().map(|p| p.seq).collect();
        // rows=2, cols=3: [0 1 2 / 3 4 5] read column-major = 0,3,1,4,2,5.
        assert_eq!(seqs, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn flush_emits_partial_block_in_column_order() {
        let mut il = Interleaver::new(2, 2);
        assert!(il.process(pkt(0)).is_empty());
        assert!(il.process(pkt(1)).is_empty());
        assert!(il.process(pkt(2)).is_empty());
        let seqs: Vec<u64> = il.flush().iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 2, 1]);
        assert!(il.flush().is_empty());
    }

    #[test]
    fn deinterleaver_restores_order() {
        let mut il = Interleaver::new(3, 3);
        let mut di = Deinterleaver::new(16);
        let mut restored = Vec::new();
        for seq in 0..9 {
            for p in il.process(pkt(seq)) {
                restored.extend(di.process(p));
            }
        }
        let seqs: Vec<u64> = restored.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn deinterleaver_skips_real_losses() {
        let mut di = Deinterleaver::new(2);
        let mut out = Vec::new();
        // seq 1 is lost; window of 2 forces release after enough arrivals.
        for seq in [0u64, 2, 3, 4, 5] {
            out.extend(di.process(pkt(seq)));
        }
        out.extend(di.flush());
        let seqs: Vec<u64> = out.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3, 4, 5], "gap skipped, order kept");
    }

    #[test]
    fn late_packet_released_immediately() {
        let mut di = Deinterleaver::new(1);
        let _ = di.process(pkt(5));
        let mut out = Vec::new();
        for seq in [6u64, 7, 8] {
            out.extend(di.process(pkt(seq)));
        }
        // 5..8 released; now a stale 2 arrives.
        let stale = di.process(pkt(2));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].seq, 2);
    }

    /// The motivating composition: interleaving converts a wire burst into
    /// isolated per-group losses that XOR parity can repair.
    #[test]
    fn interleaving_lets_fec_survive_bursts() {
        const GROUP: usize = 4;
        let run = |interleave: bool| -> usize {
            let mut fec_e = FecEncoder::new(GROUP);
            let mut il = Interleaver::new(GROUP, 4);
            let mut fec_d = FecDecoder::new(256);
            // Sender pipeline: FEC then (optionally) interleave.
            let mut wire = Vec::new();
            for seq in 0..16u64 {
                for p in fec_e.process(pkt(seq)) {
                    if interleave {
                        wire.extend(il.process(p));
                    } else {
                        wire.push(p);
                    }
                }
            }
            if interleave {
                wire.extend(il.flush());
            }
            // Burst: drop 3 consecutive wire packets.
            let burst_at = 5;
            let survivors: Vec<Packet> = wire
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !(burst_at..burst_at + 3).contains(i))
                .map(|(_, p)| p)
                .collect();
            // Receiver: FEC decode (order-tolerant), count data packets out.
            let mut received = 0;
            for p in survivors {
                received += fec_d
                    .process(p)
                    .iter()
                    .filter(|q| q.top_tag() != Some(crate::packet::tags::FEC))
                    .count();
            }
            received
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with > without,
            "interleaving must improve burst recovery ({with} vs {without} of 16)"
        );
        assert_eq!(with, 16, "full recovery with interleaving");
    }
}
