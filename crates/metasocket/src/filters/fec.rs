//! XOR-parity forward error correction filters.
//!
//! The paper's motivating MetaSocket deployments insert FEC filters on lossy
//! wireless links. This implementation groups every `k` data packets and
//! emits one parity packet whose payload is the XOR of the group's payloads;
//! the receiving filter buffers recent packets and can reconstruct any
//! single missing packet of a group when its parity arrives.
//!
//! Parity payload layout (big-endian):
//!
//! ```text
//! [k: u8]
//! k × ( [seq: u64] [len: u32] )     covered packets
//! [tagc: u8] tagc × [tag: u16]      shared tag stack of the group
//! [xor bytes, max(len) of group]
//! ```

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::filter::{Filter, FilterStats};
use crate::packet::{tags, Packet};

/// Generates parity packets after every `k` data packets.
#[derive(Debug)]
pub struct FecEncoder {
    k: usize,
    group: Vec<Packet>,
    stats: FilterStats,
    /// Parity packets emitted.
    pub parity_sent: u64,
}

impl FecEncoder {
    /// Creates an encoder emitting one parity packet per `k` data packets.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "FEC group size must be positive");
        FecEncoder { k, group: Vec::new(), stats: FilterStats::default(), parity_sent: 0 }
    }

    fn parity_packet(group: &[Packet]) -> Packet {
        let maxlen = group.iter().map(|p| p.payload.len()).max().unwrap_or(0);
        let mut payload = Vec::with_capacity(1 + group.len() * 12 + 3 + maxlen);
        payload.push(group.len() as u8);
        for p in group {
            payload.extend_from_slice(&p.seq.to_be_bytes());
            payload.extend_from_slice(&(p.payload.len() as u32).to_be_bytes());
        }
        let shared_tags = &group[0].tags;
        payload.push(shared_tags.len() as u8);
        for t in shared_tags {
            payload.extend_from_slice(&t.to_be_bytes());
        }
        let mut xor = vec![0u8; maxlen];
        for p in group {
            for (ix, &b) in p.payload.iter().enumerate() {
                xor[ix] ^= b;
            }
        }
        payload.extend_from_slice(&xor);
        let mut parity = Packet::new(group[0].stream, group.last().unwrap().seq, payload);
        parity.tags.push(tags::FEC);
        parity
    }
}

impl Filter for FecEncoder {
    fn kind(&self) -> &'static str {
        "fec-enc"
    }

    fn process(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        let mut out = vec![pkt.clone()];
        self.group.push(pkt);
        if self.group.len() == self.k {
            out.push(Self::parity_packet(&self.group));
            self.parity_sent += 1;
            self.group.clear();
        }
        self.stats.packets_out += out.len() as u64;
        out
    }

    fn flush(&mut self) -> Vec<Packet> {
        if self.group.is_empty() {
            return Vec::new();
        }
        let parity = Self::parity_packet(&self.group);
        self.group.clear();
        self.parity_sent += 1;
        self.stats.packets_out += 1;
        vec![parity]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

/// Consumes parity packets and reconstructs single missing packets.
///
/// Parity that arrives *before* its group (e.g. after interleaving) is held
/// and retried as data packets come in, so recovery is order-tolerant.
#[derive(Debug)]
pub struct FecDecoder {
    /// Recently seen data packets by sequence number.
    seen: HashMap<u64, Packet>,
    /// Eviction order for `seen`.
    order: VecDeque<u64>,
    capacity: usize,
    /// Parity packets whose groups are still too incomplete to act on.
    pending_parity: VecDeque<Packet>,
    stats: FilterStats,
    /// Packets reconstructed from parity.
    pub recovered: u64,
}

impl FecDecoder {
    /// Creates a decoder remembering up to `capacity` recent packets.
    pub fn new(capacity: usize) -> Self {
        FecDecoder {
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            pending_parity: VecDeque::new(),
            stats: FilterStats::default(),
            recovered: 0,
        }
    }

    fn remember(&mut self, pkt: &Packet) {
        if self.seen.insert(pkt.seq, pkt.clone()).is_none() {
            self.order.push_back(pkt.seq);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    /// How many covered packets of `parity`'s group are still missing
    /// (`None` on a malformed parity payload).
    fn missing_count(&self, parity: &Packet) -> Option<usize> {
        let p = &parity.payload;
        let k = *p.first()? as usize;
        let mut off = 1;
        let mut missing = 0;
        for _ in 0..k {
            let seq = u64::from_be_bytes(p.get(off..off + 8)?.try_into().ok()?);
            if !self.seen.contains_key(&seq) {
                missing += 1;
            }
            off += 12;
        }
        Some(missing)
    }

    fn try_recover(&mut self, parity: &Packet) -> Option<Packet> {
        let p = &parity.payload;
        let k = *p.first()? as usize;
        let mut off = 1;
        let mut covered = Vec::with_capacity(k);
        for _ in 0..k {
            let seq = u64::from_be_bytes(p.get(off..off + 8)?.try_into().ok()?);
            let len = u32::from_be_bytes(p.get(off + 8..off + 12)?.try_into().ok()?) as usize;
            covered.push((seq, len));
            off += 12;
        }
        let tagc = *p.get(off)? as usize;
        off += 1;
        let mut shared_tags = Vec::with_capacity(tagc);
        for _ in 0..tagc {
            shared_tags.push(u16::from_be_bytes(p.get(off..off + 2)?.try_into().ok()?));
            off += 2;
        }
        let xor = p.get(off..)?;
        let missing: Vec<(u64, usize)> =
            covered.iter().copied().filter(|(seq, _)| !self.seen.contains_key(seq)).collect();
        let (miss_seq, miss_len) = match missing.as_slice() {
            [one] => *one,
            _ => return None, // zero missing (nothing to do) or >1 (unrecoverable)
        };
        let mut payload = xor.to_vec();
        for (seq, _) in covered.iter().filter(|(s, _)| *s != miss_seq) {
            let present = &self.seen[seq];
            for (ix, &b) in present.payload.iter().enumerate() {
                payload[ix] ^= b;
            }
        }
        payload.truncate(miss_len);
        let mut rec = Packet::new(parity.stream, miss_seq, payload);
        rec.tags = shared_tags;
        Some(rec)
    }
}

impl Filter for FecDecoder {
    fn kind(&self) -> &'static str {
        "fec-dec"
    }

    fn process(&mut self, pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        if pkt.top_tag() == Some(tags::FEC) {
            // Parity packets are consumed here, never forwarded.
            self.handle_parity(pkt)
        } else {
            self.remember(&pkt);
            let mut out = vec![pkt];
            // New data may make a held parity actionable.
            out.extend(self.retry_pending());
            self.stats.packets_out += out.len() as u64;
            out
        }
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

impl FecDecoder {
    fn handle_parity(&mut self, pkt: Packet) -> Vec<Packet> {
        match self.missing_count(&pkt) {
            Some(0) | None => Vec::new(), // nothing to do / malformed
            Some(1) => match self.try_recover(&pkt) {
                Some(rec) => {
                    self.recovered += 1;
                    self.remember(&rec);
                    self.stats.packets_out += 1;
                    let mut out = vec![rec];
                    out.extend(self.retry_pending());
                    out
                }
                None => Vec::new(),
            },
            Some(_) => {
                // Too early (or too late): keep it and retry as data lands.
                self.pending_parity.push_back(pkt);
                if self.pending_parity.len() > self.capacity {
                    self.pending_parity.pop_front();
                }
                Vec::new()
            }
        }
    }

    fn retry_pending(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut keep = VecDeque::new();
        while let Some(parity) = self.pending_parity.pop_front() {
            match self.missing_count(&parity) {
                Some(0) | None => {} // complete or malformed: discard
                Some(1) => {
                    if let Some(rec) = self.try_recover(&parity) {
                        self.recovered += 1;
                        self.remember(&rec);
                        out.push(rec);
                    }
                }
                Some(_) => keep.push_back(parity),
            }
        }
        self.pending_parity = keep;
        // Recoveries may unlock further pending parities.
        if !out.is_empty() {
            let more = self.retry_pending();
            out.extend(more);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, body: &[u8]) -> Packet {
        Packet::new(3, seq, body.to_vec())
    }

    #[test]
    fn parity_emitted_every_k() {
        let mut enc = FecEncoder::new(3);
        let mut total_parity = 0;
        for seq in 0..9 {
            let out = enc.process(data(seq, &[seq as u8; 10]));
            total_parity += out.iter().filter(|p| p.top_tag() == Some(tags::FEC)).count();
        }
        assert_eq!(total_parity, 3);
        assert_eq!(enc.parity_sent, 3);
    }

    #[test]
    fn lost_packet_recovered() {
        let mut enc = FecEncoder::new(3);
        let mut dec = FecDecoder::new(16);
        let mut sent = Vec::new();
        for seq in 0..3 {
            sent.extend(enc.process(data(seq, format!("payload-{seq}").as_bytes())));
        }
        assert_eq!(sent.len(), 4, "3 data + 1 parity");
        // Drop seq 1 in the "network".
        let lost = sent.remove(1);
        let mut received = Vec::new();
        for p in sent {
            received.extend(dec.process(p));
        }
        assert_eq!(dec.recovered, 1);
        let rec = received.iter().find(|p| p.seq == 1).expect("recovered packet");
        assert_eq!(rec.payload, lost.payload);
        assert_eq!(rec.tags, lost.tags);
    }

    #[test]
    fn different_lengths_recovered_exactly() {
        let mut enc = FecEncoder::new(2);
        let mut dec = FecDecoder::new(16);
        let a = data(0, b"short");
        let b = data(1, b"a much longer payload body");
        let mut stream = Vec::new();
        stream.extend(enc.process(a.clone()));
        stream.extend(enc.process(b.clone()));
        // Lose the long one.
        stream.retain(|p| !(p.seq == 1 && p.top_tag() != Some(tags::FEC)));
        let mut received = Vec::new();
        for p in stream {
            received.extend(dec.process(p));
        }
        let rec = received.iter().find(|p| p.seq == 1).unwrap();
        assert_eq!(rec.payload, b.payload);
    }

    #[test]
    fn two_losses_are_unrecoverable() {
        let mut enc = FecEncoder::new(3);
        let mut dec = FecDecoder::new(16);
        let mut stream = Vec::new();
        for seq in 0..3 {
            stream.extend(enc.process(data(seq, &[seq as u8; 8])));
        }
        // Lose two data packets; parity alone cannot help.
        stream.retain(|p| p.top_tag() == Some(tags::FEC) || p.seq == 2);
        let mut received = Vec::new();
        for p in stream {
            received.extend(dec.process(p));
        }
        assert_eq!(dec.recovered, 0);
        assert_eq!(received.len(), 1);
    }

    #[test]
    fn no_loss_means_parity_is_silent() {
        let mut enc = FecEncoder::new(2);
        let mut dec = FecDecoder::new(16);
        let mut received = Vec::new();
        for seq in 0..4 {
            for p in enc.process(data(seq, &[0xAB; 4])) {
                received.extend(dec.process(p));
            }
        }
        assert_eq!(received.len(), 4, "parity consumed, data forwarded");
        assert_eq!(dec.recovered, 0);
    }

    #[test]
    fn flush_emits_partial_group_parity() {
        let mut enc = FecEncoder::new(5);
        let _ = enc.process(data(0, b"x"));
        let _ = enc.process(data(1, b"y"));
        let flushed = enc.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].top_tag(), Some(tags::FEC));
        assert!(enc.flush().is_empty(), "second flush is empty");
    }

    #[test]
    fn tagged_group_restores_tag_stack() {
        // Simulate FEC placed after a DES encoder: packets carry a tag.
        let mut enc = FecEncoder::new(2);
        let mut dec = FecDecoder::new(16);
        let mut p0 = data(0, b"aaaa");
        p0.tags.push(tags::DES64);
        let mut p1 = data(1, b"bbbb");
        p1.tags.push(tags::DES64);
        let mut stream = Vec::new();
        stream.extend(enc.process(p0));
        stream.extend(enc.process(p1.clone()));
        stream.retain(|p| !(p.seq == 1 && p.top_tag() != Some(tags::FEC)));
        let mut received = Vec::new();
        for p in stream {
            received.extend(dec.process(p));
        }
        let rec = received.iter().find(|p| p.seq == 1).unwrap();
        assert_eq!(rec.tags, vec![tags::DES64]);
        assert_eq!(rec.payload, p1.payload);
    }

    #[test]
    fn capacity_eviction_limits_memory() {
        let mut dec = FecDecoder::new(2);
        for seq in 0..10 {
            let _ = dec.process(data(seq, b"z"));
        }
        assert!(dec.seen.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_size_panics() {
        let _ = FecEncoder::new(0);
    }
}
