//! DES encoder/decoder filters — the case study's adaptable components.

use sada_des::{decrypt_bytes, encrypt_bytes, BlockCipher, Des, Des128};

use crate::filter::{Filter, FilterStats};
use crate::packet::{tags, Packet};

/// Generic encryption filter over any [`BlockCipher`].
#[derive(Debug)]
pub struct CipherEncoder<C> {
    cipher: C,
    tag: u16,
    kind: &'static str,
    stats: FilterStats,
}

/// Generic decryption filter over any [`BlockCipher`], with the paper's
/// bypass semantics: packets whose top tag does not match are forwarded
/// untouched.
#[derive(Debug)]
pub struct CipherDecoder<C> {
    cipher: C,
    /// Tags this decoder accepts (D2 is "DES 128/64-bit compatible" and
    /// accepts both).
    accept: Vec<u16>,
    /// Secondary cipher for compatible decoders (D2 decodes DES-64 with it).
    fallback: Option<Des>,
    tag_primary: u16,
    kind: &'static str,
    stats: FilterStats,
}

impl CipherEncoder<Des> {
    /// DES 64-bit encoder — component `E1`.
    pub fn des64(key: u64) -> Self {
        CipherEncoder {
            cipher: Des::new(key),
            tag: tags::DES64,
            kind: "des64-enc",
            stats: FilterStats::default(),
        }
    }
}

impl CipherEncoder<Des128> {
    /// DES 128-bit encoder — component `E2`.
    pub fn des128(key1: u64, key2: u64) -> Self {
        CipherEncoder {
            cipher: Des128::new(key1, key2),
            tag: tags::DES128,
            kind: "des128-enc",
            stats: FilterStats::default(),
        }
    }
}

impl<C: BlockCipher + 'static> Filter for CipherEncoder<C> {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn process(&mut self, mut pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        pkt.payload = encrypt_bytes(&self.cipher, &pkt.payload);
        pkt.tags.push(self.tag);
        self.stats.packets_out += 1;
        vec![pkt]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

impl CipherDecoder<Des> {
    /// DES 64-bit decoder — components `D1` and `D4`.
    pub fn des64(key: u64) -> Self {
        CipherDecoder {
            cipher: Des::new(key),
            accept: vec![tags::DES64],
            fallback: None,
            tag_primary: tags::DES64,
            kind: "des64-dec",
            stats: FilterStats::default(),
        }
    }
}

impl CipherDecoder<Des128> {
    /// DES 128-bit decoder — components `D3` and `D5`.
    pub fn des128(key1: u64, key2: u64) -> Self {
        CipherDecoder {
            cipher: Des128::new(key1, key2),
            accept: vec![tags::DES128],
            fallback: None,
            tag_primary: tags::DES128,
            kind: "des128-dec",
            stats: FilterStats::default(),
        }
    }

    /// DES 128/64-bit *compatible* decoder — component `D2`: decodes both
    /// formats, which is what makes the paper's intermediate configurations
    /// (e.g. `(D5,D4,D2,E1)`) safe.
    pub fn des128_compat(key1: u64, key2: u64, des64_key: u64) -> Self {
        CipherDecoder {
            cipher: Des128::new(key1, key2),
            accept: vec![tags::DES128, tags::DES64],
            fallback: Some(Des::new(des64_key)),
            tag_primary: tags::DES128,
            kind: "des128c-dec",
            stats: FilterStats::default(),
        }
    }
}

impl<C: BlockCipher + 'static> Filter for CipherDecoder<C> {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn process(&mut self, mut pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        let top = match pkt.top_tag() {
            Some(t) if self.accept.contains(&t) => t,
            _ => {
                // Bypass: "when it receives a packet not encoded by the
                // corresponding encoder, it simply forwards the packet".
                self.stats.bypassed += 1;
                self.stats.packets_out += 1;
                return vec![pkt];
            }
        };
        let result = if top == self.tag_primary {
            decrypt_bytes(&self.cipher, &pkt.payload)
        } else {
            // Compatible mode: the secondary format uses the fallback cipher.
            let fb = self.fallback.as_ref().expect("accept list implies fallback");
            decrypt_bytes(fb, &pkt.payload)
        };
        match result {
            Ok(plain) => {
                pkt.tags.pop();
                pkt.payload = plain;
            }
            Err(_) => {
                pkt.tags.pop();
                pkt.corrupted = true;
                self.stats.errors += 1;
            }
        }
        self.stats.packets_out += 1;
        vec![pkt]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K64: u64 = 0x133457799BBCDFF1;
    const K1: u64 = 0x0123456789ABCDEF;
    const K2: u64 = 0xFEDCBA9876543210;

    fn plain() -> Packet {
        Packet::new(1, 7, b"a video frame fragment".to_vec())
    }

    #[test]
    fn des64_encode_decode_round_trip() {
        let mut enc = CipherEncoder::des64(K64);
        let mut dec = CipherDecoder::des64(K64);
        let encoded = enc.process(plain()).pop().unwrap();
        assert_eq!(encoded.top_tag(), Some(tags::DES64));
        assert_ne!(encoded.payload, plain().payload);
        let decoded = dec.process(encoded).pop().unwrap();
        assert!(decoded.is_clean_plaintext());
        assert_eq!(decoded.payload, plain().payload);
        assert_eq!(dec.stats().errors, 0);
    }

    #[test]
    fn des128_encode_decode_round_trip() {
        let mut enc = CipherEncoder::des128(K1, K2);
        let mut dec = CipherDecoder::des128(K1, K2);
        let decoded = dec.process(enc.process(plain()).pop().unwrap()).pop().unwrap();
        assert!(decoded.is_clean_plaintext());
        assert_eq!(decoded.payload, plain().payload);
    }

    #[test]
    fn decoder_bypasses_foreign_tag() {
        let mut enc = CipherEncoder::des128(K1, K2);
        let mut d64 = CipherDecoder::des64(K64);
        let encoded = enc.process(plain()).pop().unwrap();
        let passed = d64.process(encoded.clone()).pop().unwrap();
        assert_eq!(passed, encoded, "bypass must not modify the packet");
        assert_eq!(d64.stats().bypassed, 1);
        assert_eq!(d64.stats().errors, 0);
    }

    #[test]
    fn decoder_bypasses_plaintext() {
        let mut d64 = CipherDecoder::des64(K64);
        let p = plain();
        let out = d64.process(p.clone()).pop().unwrap();
        assert_eq!(out, p);
        assert_eq!(d64.stats().bypassed, 1);
    }

    #[test]
    fn wrong_key_marks_corrupted() {
        let mut enc = CipherEncoder::des64(K64);
        let mut dec = CipherDecoder::des64(K64 ^ 0xFF00FF00FF00FF00);
        let out = dec.process(enc.process(plain()).pop().unwrap()).pop().unwrap();
        assert!(out.corrupted);
        assert_eq!(dec.stats().errors, 1);
    }

    #[test]
    fn compat_decoder_handles_both_formats() {
        let mut d2 = CipherDecoder::des128_compat(K1, K2, K64);
        // DES-128 packet.
        let mut e128 = CipherEncoder::des128(K1, K2);
        let out = d2.process(e128.process(plain()).pop().unwrap()).pop().unwrap();
        assert!(out.is_clean_plaintext());
        assert_eq!(out.payload, plain().payload);
        // DES-64 packet through the same instance.
        let mut e64 = CipherEncoder::des64(K64);
        let out = d2.process(e64.process(plain()).pop().unwrap()).pop().unwrap();
        assert!(out.is_clean_plaintext());
        assert_eq!(out.payload, plain().payload);
        assert_eq!(d2.stats().bypassed, 0);
    }

    #[test]
    fn nested_encodings_unwind_in_order() {
        let mut e64 = CipherEncoder::des64(K64);
        let mut e128 = CipherEncoder::des128(K1, K2);
        let mut d64 = CipherDecoder::des64(K64);
        let mut d128 = CipherDecoder::des128(K1, K2);
        // encode 64 then 128; decode must pop 128 first.
        let pkt = e128.process(e64.process(plain()).pop().unwrap()).pop().unwrap();
        assert_eq!(pkt.tags, vec![tags::DES64, tags::DES128]);
        let pkt = d128.process(pkt).pop().unwrap();
        assert_eq!(pkt.tags, vec![tags::DES64]);
        let pkt = d64.process(pkt).pop().unwrap();
        assert!(pkt.is_clean_plaintext());
        assert_eq!(pkt.payload, plain().payload);
    }
}
