//! Run-length compression filters.
//!
//! The paper lists compression among the filter behaviours MetaSockets can
//! insert at runtime ("filters can perform encryption, decryption, forward
//! error correction, compression, and so forth"). Synthetic video frames are
//! run-heavy, so a simple byte-level RLE gives a measurable size reduction
//! in the bandwidth-adaptation example.
//!
//! Encoding: `(count, byte)` pairs, `count ∈ 1..=255`. Worst case doubles
//! the payload; the encoder keeps the *smaller* of raw and encoded forms,
//! flagging the choice in a one-byte header (`0` = raw, `1` = RLE).

use crate::filter::{Filter, FilterStats};
use crate::packet::{tags, Packet};

/// Compresses payload bytes with run-length encoding.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut iter = data.iter().copied().peekable();
    while let Some(b) = iter.next() {
        let mut count: u8 = 1;
        while count < u8::MAX && iter.peek() == Some(&b) {
            iter.next();
            count += 1;
        }
        out.push(count);
        out.push(b);
    }
    out
}

/// Inverts [`rle_compress`].
///
/// Returns `None` on malformed input (odd length or zero counts).
pub fn rle_decompress(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0], pair[1]);
        if count == 0 {
            return None;
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Some(out)
}

/// Compression filter: RLE-encodes payloads when that helps, tags packets.
#[derive(Debug, Default)]
pub struct RleEncoder {
    stats: FilterStats,
    /// Payload bytes in / out, for compression-ratio reporting.
    pub bytes_in: u64,
    /// See [`RleEncoder::bytes_in`].
    pub bytes_out: u64,
}

impl RleEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        RleEncoder::default()
    }
}

impl Filter for RleEncoder {
    fn kind(&self) -> &'static str {
        "rle-enc"
    }

    fn process(&mut self, mut pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        self.bytes_in += pkt.payload.len() as u64;
        let encoded = rle_compress(&pkt.payload);
        let mut framed = Vec::with_capacity(encoded.len().min(pkt.payload.len()) + 1);
        if encoded.len() < pkt.payload.len() {
            framed.push(1);
            framed.extend_from_slice(&encoded);
        } else {
            framed.push(0);
            framed.extend_from_slice(&pkt.payload);
        }
        pkt.payload = framed;
        pkt.tags.push(tags::RLE);
        self.bytes_out += pkt.payload.len() as u64;
        self.stats.packets_out += 1;
        vec![pkt]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

/// Decompression filter with bypass semantics.
#[derive(Debug, Default)]
pub struct RleDecoder {
    stats: FilterStats,
}

impl RleDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        RleDecoder::default()
    }
}

impl Filter for RleDecoder {
    fn kind(&self) -> &'static str {
        "rle-dec"
    }

    fn process(&mut self, mut pkt: Packet) -> Vec<Packet> {
        self.stats.packets_in += 1;
        if pkt.top_tag() != Some(tags::RLE) {
            self.stats.bypassed += 1;
            self.stats.packets_out += 1;
            return vec![pkt];
        }
        pkt.tags.pop();
        let ok = match pkt.payload.split_first() {
            Some((0, rest)) => {
                pkt.payload = rest.to_vec();
                true
            }
            Some((1, rest)) => match rle_decompress(rest) {
                Some(plain) => {
                    pkt.payload = plain;
                    true
                }
                None => false,
            },
            _ => false,
        };
        if !ok {
            pkt.corrupted = true;
            self.stats.errors += 1;
        }
        self.stats.packets_out += 1;
        vec![pkt]
    }

    fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_decompress_round_trip() {
        for data in [
            Vec::new(),
            vec![7u8],
            vec![0; 1000],
            (0..=255u8).collect::<Vec<u8>>(),
            b"aaabbbcccd".to_vec(),
        ] {
            assert_eq!(rle_decompress(&rle_compress(&data)), Some(data));
        }
    }

    #[test]
    fn long_runs_split_at_255() {
        let data = vec![9u8; 600];
        let enc = rle_compress(&data);
        assert_eq!(enc, vec![255, 9, 255, 9, 90, 9]);
        assert_eq!(rle_decompress(&enc), Some(data));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(rle_decompress(&[1]), None, "odd length");
        assert_eq!(rle_decompress(&[0, 5]), None, "zero count");
    }

    #[test]
    fn filter_round_trip_compressible() {
        let mut enc = RleEncoder::new();
        let mut dec = RleDecoder::new();
        let pkt = Packet::new(0, 1, vec![42u8; 500]);
        let encoded = enc.process(pkt.clone()).pop().unwrap();
        assert!(encoded.payload.len() < 500, "runs should shrink");
        assert_eq!(encoded.top_tag(), Some(tags::RLE));
        let decoded = dec.process(encoded).pop().unwrap();
        assert_eq!(decoded.payload, pkt.payload);
        assert!(decoded.is_clean_plaintext());
        assert!(enc.bytes_out < enc.bytes_in);
    }

    #[test]
    fn filter_round_trip_incompressible() {
        let mut enc = RleEncoder::new();
        let mut dec = RleDecoder::new();
        let payload: Vec<u8> = (0..=200u8).collect();
        let pkt = Packet::new(0, 1, payload.clone());
        let encoded = enc.process(pkt).pop().unwrap();
        assert_eq!(encoded.payload.len(), payload.len() + 1, "raw frame + header");
        let decoded = dec.process(encoded).pop().unwrap();
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn decoder_bypasses_untagged() {
        let mut dec = RleDecoder::new();
        let pkt = Packet::new(0, 1, vec![1, 2, 3]);
        let out = dec.process(pkt.clone()).pop().unwrap();
        assert_eq!(out, pkt);
        assert_eq!(dec.stats().bypassed, 1);
    }

    #[test]
    fn garbage_marks_corrupted() {
        let mut dec = RleDecoder::new();
        let mut pkt = Packet::new(0, 1, vec![1, 0, 9]); // RLE frame with zero count
        pkt.tags.push(tags::RLE);
        let out = dec.process(pkt).pop().unwrap();
        assert!(out.corrupted);
        assert_eq!(dec.stats().errors, 1);
    }

    #[test]
    fn empty_frame_marks_corrupted() {
        let mut dec = RleDecoder::new();
        let mut pkt = Packet::new(0, 1, vec![]);
        pkt.tags.push(tags::RLE);
        assert!(dec.process(pkt).pop().unwrap().corrupted);
    }
}
