//! Stock filters: ciphers, compression, FEC.

pub mod des;
pub mod fec;
pub mod interleave;
pub mod rle;
