//! Packets flowing through MetaSocket filter chains.

use std::fmt;

/// Well-known codec tags pushed onto [`Packet::tags`] by encoder filters and
/// popped by the matching decoders.
///
/// A decoder whose tag does not match the top of the stack *bypasses* the
/// packet — the paper's "bypass" functionality that lets incompatible
/// decoders coexist during an adaptation.
pub mod tags {
    /// DES 64-bit encryption (components E1 / D1 / D4).
    pub const DES64: u16 = 0x0064;
    /// DES 128-bit (two-key EDE) encryption (components E2 / D3 / D5).
    pub const DES128: u16 = 0x0128;
    /// Run-length compression.
    pub const RLE: u16 = 0x0011;
    /// XOR-parity forward error correction (marks parity packets).
    pub const FEC: u16 = 0x00FE;
}

/// One datagram of the application stream.
///
/// `tags` is a codec stack: every encoder pushes its tag after transforming
/// the payload, every decoder pops it after inverting the transform, so a
/// packet arriving with an empty stack is plaintext. `corrupted` is sticky:
/// once a decoder fails (wrong cipher after an unsafe adaptation), the
/// packet carries the evidence to the player's statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Monotone per-stream sequence number, assigned by the source.
    pub seq: u64,
    /// Stream identifier (one per sender in the case study).
    pub stream: u32,
    /// Codec stack, innermost transform first.
    pub tags: Vec<u16>,
    /// Payload bytes (possibly transformed).
    pub payload: Vec<u8>,
    /// Set when a decoder failed to invert a transform.
    pub corrupted: bool,
}

impl Packet {
    /// A fresh plaintext packet.
    pub fn new(stream: u32, seq: u64, payload: Vec<u8>) -> Self {
        Packet { seq, stream, tags: Vec::new(), payload, corrupted: false }
    }

    /// The tag a decoder would need to handle next, if any.
    pub fn top_tag(&self) -> Option<u16> {
        self.tags.last().copied()
    }

    /// True when every transform has been inverted and nothing failed.
    pub fn is_clean_plaintext(&self) -> bool {
        self.tags.is_empty() && !self.corrupted
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt(stream={}, seq={}, {}B, tags={:04x?}{})",
            self.stream,
            self.seq,
            self.payload.len(),
            self.tags,
            if self.corrupted { ", CORRUPT" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_is_clean() {
        let p = Packet::new(1, 42, vec![1, 2, 3]);
        assert!(p.is_clean_plaintext());
        assert_eq!(p.top_tag(), None);
        assert_eq!(p.seq, 42);
    }

    #[test]
    fn tag_stack_ordering() {
        let mut p = Packet::new(0, 0, vec![]);
        p.tags.push(tags::RLE);
        p.tags.push(tags::DES64);
        assert_eq!(p.top_tag(), Some(tags::DES64));
        assert!(!p.is_clean_plaintext());
    }

    #[test]
    fn corruption_blocks_cleanliness() {
        let mut p = Packet::new(0, 0, vec![]);
        p.corrupted = true;
        assert!(!p.is_clean_plaintext());
        assert!(p.to_string().contains("CORRUPT"));
    }
}
