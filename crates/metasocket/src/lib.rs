//! # sada-meta — the MetaSocket substrate
//!
//! MetaSockets (Sadjadi, McKinley & Kasten, FTDCS'03) are the adaptable
//! communication components the DSN 2004 case study recomposes at runtime:
//! sockets whose send/receive paths run packets through a chain of filters
//! that can be inserted, removed, and replaced while the application runs.
//!
//! * [`Packet`] — the datagram unit, carrying a codec tag stack so decoders
//!   can *bypass* packets they do not understand (the paper's compatibility
//!   mechanism during adaptation).
//! * [`Filter`] — the component abstraction; stock filters cover DES-64 and
//!   DES-128 encryption ([`filters::des`]), run-length compression
//!   ([`filters::rle`]), and XOR-parity FEC ([`filters::fec`]).
//! * [`FilterChain`] — the recomposable pipeline with packet-boundary
//!   atomicity and block/unblock buffering, the mechanics behind the agent's
//!   *local safe state*.
//!
//! ```
//! use sada_meta::{FilterChain, Packet};
//! use sada_meta::filters::des::{CipherEncoder, CipherDecoder};
//!
//! let mut send = FilterChain::new();
//! send.push_back("E1", Box::new(CipherEncoder::des64(0x133457799BBCDFF1)))?;
//! let mut recv = FilterChain::new();
//! recv.push_back("D1", Box::new(CipherDecoder::des64(0x133457799BBCDFF1)))?;
//!
//! let wire = send.push(Packet::new(0, 1, b"frame".to_vec())).pop().unwrap();
//! let out = recv.push(wire).pop().unwrap();
//! assert_eq!(out.payload, b"frame");
//! # Ok::<(), sada_meta::ChainError>(())
//! ```

mod chain;
mod filter;
pub mod filters;
mod packet;

pub use chain::{ChainError, ChainStats, FilterChain};
pub use filter::{AsAny, Filter, FilterStats, Telemetry};
pub use packet::{tags, Packet};
